#!/usr/bin/env bash
# Smoke test of the self-healing serving loop, end to end over real
# HTTP: script a site's template churn with `awrap evolve`, learn an
# epoch-0 wrapper, serve it with the shadow relearn worker enabled,
# inject the breaking epoch's drifted pages, and assert the full
# degrade → relearn → hot-swap → recover arc from the outside (health
# endpoints + extraction results only). Run from the workspace root;
# CI's churn-smoke job calls this after `cargo build --release --bin
# awrap`. Exits non-zero if any stage of the arc fails to happen.
set -euo pipefail

BIN=${AWRAP:-target/release/awrap}
[ -x "$BIN" ] || { echo "awrap binary not found at $BIN (cargo build --release --bin awrap)"; exit 1; }

TMP=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

# ── Script the churn: 3 epochs (base, benign, breaking) ─────────────
"$BIN" evolve --out "$TMP/evolution" --seed 7 --epochs 3
grep -q 'epoch-1: benign'   "$TMP/evolution/manifest.txt"
grep -q 'epoch-2: breaking' "$TMP/evolution/manifest.txt"
echo "churn-smoke: evolution scripted ($(grep -c . "$TMP/evolution/manifest.txt") manifest lines)"

# ── Learn the epoch-0 wrapper, serve it with relearning on ──────────
"$BIN" learn --pages "$TMP/evolution/epoch-0" --dict "$TMP/evolution/dict.txt" \
  --bundle "$TMP/bundle.json"
grep -q '"churn"' "$TMP/bundle.json"

"$BIN" serve --bundle "$TMP/bundle.json" --addr 127.0.0.1:0 --threads 2 \
  --window 8 --relearn --dict "$TMP/evolution/dict.txt" > "$TMP/serve.log" 2>&1 &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(grep -oE 'http://[0-9.]+:[0-9]+' "$TMP/serve.log" | head -1 || true)
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "server did not start:"; cat "$TMP/serve.log"; exit 1; }
echo "churn-smoke: serving at $ADDR (relearn worker on)"

# POSTs one raw page, prints the extracted value count of page 0.
extract_count() {
  jq -Rs '{site:"churn", html:.}' < "$1" > "$TMP/req.json"
  curl -sf -X POST "$ADDR/extract" --data @"$TMP/req.json" | jq '.pages[0] | length'
}

# ── Baseline + benign traffic: extraction works, health stays green ─
for page in "$TMP"/evolution/epoch-0/churn/*.html "$TMP"/evolution/epoch-1/churn/*.html; do
  count=$(extract_count "$page")
  [ "$count" -gt 0 ] || { echo "healthy epoch extracted nothing: $page"; exit 1; }
done
test "$(curl -sf "$ADDR/health/churn" | jq '.degraded')" = "false"
GEN0=$(curl -sf "$ADDR/healthz" | jq '.generation')
echo "churn-smoke: baseline + benign epochs extract, health green (generation $GEN0)"

# ── Inject the breaking epoch: the frozen wrapper must go empty ─────
first=$(extract_count "$TMP/evolution/epoch-2/churn/p0.html")
[ "$first" -eq 0 ] || { echo "breaking epoch still extracted $first values"; exit 1; }

# Keep the drifted traffic flowing until the loop closes: the health
# window degrades, the shadow worker relearns from retained pages and
# swaps, and the fresh window journals recovery. Each POST is both
# drift injection and (post-swap) recovery traffic.
DEGRADED=0 RECOVERED=0
for i in $(seq 1 120); do
  page="$TMP/evolution/epoch-2/churn/p$(( i % 4 )).html"
  count=$(extract_count "$page")
  JOURNAL=$(curl -sf "$ADDR/health" | jq -r '.journal[]' || true)
  if [ "$DEGRADED" = 0 ] && grep -q 'degraded' <<< "$JOURNAL"; then
    DEGRADED=1
    echo "churn-smoke: health degraded after $i drifted request(s)"
  fi
  if grep -q 'recovered' <<< "$JOURNAL"; then
    RECOVERED=1
    echo "churn-smoke: recovered after $i drifted request(s) ($count value(s) on last page)"
    break
  fi
  sleep 0.1
done
[ "$DEGRADED" = 1 ] || { echo "drift never degraded health:"; curl -s "$ADDR/health"; exit 1; }
[ "$RECOVERED" = 1 ] || { echo "relearn never recovered health:"; curl -s "$ADDR/health"; exit 1; }

JOURNAL=$(curl -sf "$ADDR/health" | jq -r '.journal[]')
grep -q 'relearn started'    <<< "$JOURNAL"
grep -q 'relearn swapped in' <<< "$JOURNAL"

# ── The swapped wrapper serves the drifted template ─────────────────
GEN1=$(curl -sf "$ADDR/healthz" | jq '.generation')
[ "$GEN1" -gt "$GEN0" ] || { echo "no generation bump: $GEN0 -> $GEN1"; exit 1; }
count=$(extract_count "$TMP/evolution/epoch-2/churn/p1.html")
[ "$count" -gt 0 ] || { echo "healed wrapper extracted nothing"; exit 1; }
test "$(curl -sf "$ADDR/health/churn" | jq '.degraded')" = "false"
echo "churn-smoke: healed wrapper extracts $count value(s), generation $GEN0 -> $GEN1"

kill "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
echo "churn-smoke: churn-smoke passed"
