#!/usr/bin/env bash
# Smoke test of the learn-offline → bundle → serve-online path, end to
# end over real HTTP: learn wrappers for a tiny two-site DEALERS-style
# corpus, emit a v2 bundle, start `awrap serve` on an ephemeral port,
# and drive every endpoint with curl. Run from the workspace root; CI's
# serve-smoke job calls this after `cargo build --release --bin awrap`.
set -euo pipefail

BIN=${AWRAP:-target/release/awrap}
[ -x "$BIN" ] || { echo "awrap binary not found at $BIN (cargo build --release --bin awrap)"; exit 1; }

TMP=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

# ── A tiny corpus: two sites, two pages each, same script per site ──
mkdir -p "$TMP/sites/dealer-a" "$TMP/sites/dealer-b"
cat > "$TMP/sites/dealer-a/p0.html" <<'HTML'
<table class='stores'><tr><td><b>PORTER FURNITURE</b></td><td>201 Hwy 30</td></tr><tr><td><b>ACME BEDS</b></td><td>9 Elm St</td></tr></table>
HTML
cat > "$TMP/sites/dealer-a/p1.html" <<'HTML'
<table class='stores'><tr><td><b>ZETA SOFAS</b></td><td>4 Oak Ave</td></tr><tr><td><b>DELTA HOME</b></td><td>77 Pine Rd</td></tr></table>
HTML
cat > "$TMP/sites/dealer-b/p0.html" <<'HTML'
<div class='list'><tr><td><u>WOODLAND DECOR</u><br>123 Main St</td></tr><tr><td><u>OXFORD RUGS</u><br>8 Fir Ct</td></tr></div>
HTML
cat > "$TMP/sites/dealer-b/p1.html" <<'HTML'
<div class='list'><tr><td><u>TUPELO DESKS</u><br>55 Low Rd</td></tr><tr><td><u>ALBANY LAMPS</u><br>2 High St</td></tr></div>
HTML
printf 'PORTER FURNITURE\nDELTA HOME\nWOODLAND DECOR\nALBANY LAMPS\n' > "$TMP/dict.txt"

# ── Learn offline, emit a v2 bundle ─────────────────────────────────
"$BIN" learn --pages "$TMP/sites" --dict "$TMP/dict.txt" --bundle "$TMP/bundle.json"
grep -q '"format": "aw-bundle"' "$TMP/bundle.json"
grep -q '"dealer-a"' "$TMP/bundle.json"
grep -q '"dealer-b"' "$TMP/bundle.json"
echo "smoke: bundle learned and written"

# ── Serve on an ephemeral port ──────────────────────────────────────
"$BIN" serve --bundle "$TMP/bundle.json" --addr 127.0.0.1:0 --threads 2 > "$TMP/serve.log" 2>&1 &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(grep -oE 'http://[0-9.]+:[0-9]+' "$TMP/serve.log" | head -1 || true)
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "server did not start:"; cat "$TMP/serve.log"; exit 1; }
echo "smoke: serving at $ADDR"

curl -sf "$ADDR/healthz" | grep -q '"status":"ok"'
curl -sf "$ADDR/wrappers" | grep -q '"site":"dealer-a"'

# ── Extract from a fresh page of dealer-a's script ──────────────────
cat > "$TMP/req.json" <<'JSON'
{"site":"dealer-a","html":"<table class='stores'><tr><td><b>OMEGA GROUP</b></td><td>9 Elm</td></tr><tr><td><b>SIGMA BROS</b></td><td>7 Oak</td></tr></table>"}
JSON
RESPONSE=$(curl -sf -X POST "$ADDR/extract" --data @"$TMP/req.json")
echo "smoke: extract response: $RESPONSE"
echo "$RESPONSE" | grep -q '"OMEGA GROUP"'
echo "$RESPONSE" | grep -q '"SIGMA BROS"'

# Error surfaces stay JSON with the right statuses.
test "$(curl -s -o /dev/null -w '%{http_code}' -X POST "$ADDR/extract" --data '{"site":"nope","html":""}')" = 404
test "$(curl -s -o /dev/null -w '%{http_code}' -X POST "$ADDR/extract" --data 'garbage')" = 400

# ── Hot-swap the bundle over the wire, then extract again ───────────
curl -sf -X POST "$ADDR/wrappers" --data @"$TMP/bundle.json" | grep -q '"loaded":2'
curl -sf -X POST "$ADDR/extract" --data @"$TMP/req.json" | grep -q '"OMEGA GROUP"'

# ── Keep-alive pipelining: two POSTs on ONE connection ──────────────
# The reactor must answer both, in order, and honor `Connection: close`
# on the second. Raw bytes through /dev/tcp — curl cannot pipeline.
HOSTPORT=${ADDR#http://}
B1='{"site":"dealer-a","html":"<table class=stores><tr><td><b>KEEPALIVE ONE</b></td><td>1 Elm</td></tr></table>"}'
B2='{"site":"dealer-a","html":"<table class=stores><tr><td><b>KEEPALIVE TWO</b></td><td>2 Oak</td></tr></table>"}'
exec 3<>"/dev/tcp/${HOSTPORT%%:*}/${HOSTPORT##*:}"
printf 'POST /extract HTTP/1.1\r\nContent-Length: %d\r\n\r\n%sPOST /extract HTTP/1.1\r\nConnection: close\r\nContent-Length: %d\r\n\r\n%s' \
  "${#B1}" "$B1" "${#B2}" "$B2" >&3
PIPELINED=$(cat <&3)
exec 3<&- 3>&-
# (Not line-anchored: the first body runs straight into the second
# status line — JSON bodies carry no trailing newline.)
test "$(printf '%s' "$PIPELINED" | grep -o 'HTTP/1.1 200' | wc -l)" = 2
printf '%s' "$PIPELINED" | grep -q 'Connection: keep-alive'
printf '%s' "$PIPELINED" | grep -q 'Connection: close'
printf '%s' "$PIPELINED" | grep -q 'KEEPALIVE ONE'
printf '%s' "$PIPELINED" | grep -q 'KEEPALIVE TWO'
# In-order: the first request's values precede the second's.
test "$(printf '%s' "$PIPELINED" | grep -oE 'KEEPALIVE (ONE|TWO)' | head -1)" = 'KEEPALIVE ONE'
echo "smoke: keep-alive pipelining answered both requests in order"

# ── The /wrappers latency object reports sane percentiles ───────────
LISTING=$(curl -sf "$ADDR/wrappers")
echo "$LISTING" | grep -q '"latency"'
echo "$LISTING" | grep -qE '"count":[1-9]'
echo "$LISTING" | grep -q '"p50_us"'
echo "$LISTING" | grep -q '"p99_us"'
echo "$LISTING" | grep -qE '"max_us":[1-9]'
echo "smoke: request-latency percentiles populated"

# ── The /wrappers parse object accounts the streaming request path ──
# Every page served so far went through the one-pass streaming
# parse→index (the default), so pages == stream, fallback stays 0, and
# the cumulative parse time has accrued.
echo "$LISTING" | grep -q '"parse"'
echo "$LISTING" | grep -qE '"pages":[1-9]'
echo "$LISTING" | grep -qE '"stream":[1-9]'
echo "$LISTING" | grep -q '"fallback":0'
echo "$LISTING" | grep -qE '"micros":[1-9]'
echo "smoke: streaming parse counters advanced"

kill "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# ── AW_STREAM_PARSE=0 serves through the classic two-pass oracle ────
AW_STREAM_PARSE=0 "$BIN" serve --bundle "$TMP/bundle.json" --addr 127.0.0.1:0 --threads 2 > "$TMP/serve-fallback.log" 2>&1 &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(grep -oE 'http://[0-9.]+:[0-9]+' "$TMP/serve-fallback.log" | head -1 || true)
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "fallback server did not start:"; cat "$TMP/serve-fallback.log"; exit 1; }
curl -sf -X POST "$ADDR/extract" --data @"$TMP/req.json" | grep -q '"OMEGA GROUP"'
LISTING=$(curl -sf "$ADDR/wrappers")
echo "$LISTING" | grep -q '"stream":0'
echo "$LISTING" | grep -qE '"fallback":[1-9]'
echo "smoke: AW_STREAM_PARSE=0 routed parsing through the fallback path"

kill "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# ── The legacy blocking loop still serves (differential oracle) ─────
"$BIN" serve --bundle "$TMP/bundle.json" --blocking --addr 127.0.0.1:0 --threads 2 > "$TMP/serve-blocking.log" 2>&1 &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(grep -oE 'http://[0-9.]+:[0-9]+' "$TMP/serve-blocking.log" | head -1 || true)
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "blocking server did not start:"; cat "$TMP/serve-blocking.log"; exit 1; }
grep -q 'blocking loop' "$TMP/serve-blocking.log"
curl -sf "$ADDR/healthz" | grep -q '"status":"ok"'
curl -sf -X POST "$ADDR/extract" --data @"$TMP/req.json" | grep -q '"OMEGA GROUP"'
echo "smoke: --blocking loop serves at $ADDR"

kill "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# ── Pack the v2 bundle into the v3 binary format and round-trip it ──
"$BIN" bundle pack --in "$TMP/bundle.json" --out "$TMP/bundle.awb"
"$BIN" bundle inspect --in "$TMP/bundle.awb" | tee "$TMP/inspect.log"
grep -q 'aw-bundle-bin v3' "$TMP/inspect.log"
grep -q 'dealer-a' "$TMP/inspect.log"
grep -q 'dealer-b' "$TMP/inspect.log"
"$BIN" bundle unpack --in "$TMP/bundle.awb" --out "$TMP/bundle.roundtrip.json"
cmp "$TMP/bundle.json" "$TMP/bundle.roundtrip.json"
echo "smoke: v3 pack/inspect/unpack round-trips byte-identically"

# ── Serve the binary bundle lazily with a one-site residency cap ────
"$BIN" serve --bundle "$TMP/bundle.awb" --lazy --max-resident 1 --addr 127.0.0.1:0 --threads 2 > "$TMP/serve-lazy.log" 2>&1 &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(grep -oE 'http://[0-9.]+:[0-9]+' "$TMP/serve-lazy.log" | head -1 || true)
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "lazy server did not start:"; cat "$TMP/serve-lazy.log"; exit 1; }
grep -q 'opened v3 bundle lazily' "$TMP/serve-lazy.log"
echo "smoke: lazy serving at $ADDR"

# Both sites answer (faulted in on demand), even though at most one
# wrapper is resident at a time.
curl -sf -X POST "$ADDR/extract" --data @"$TMP/req.json" | grep -q '"OMEGA GROUP"'
cat > "$TMP/req-b.json" <<'JSON'
{"site":"dealer-b","html":"<div class='list'><tr><td><u>OMEGA GROUP</u><br>9 Elm</td></tr><tr><td><u>SIGMA BROS</u><br>7 Oak</td></tr></div>"}
JSON
curl -sf -X POST "$ADDR/extract" --data @"$TMP/req-b.json" | grep -q '"SIGMA BROS"'
curl -sf -X POST "$ADDR/extract" --data @"$TMP/req.json" | grep -q '"OMEGA GROUP"'

# The listing reports residency: both sites indexed, cap 1, and the
# traffic accounted for — dealer-a and dealer-b each faulted once, and
# dealer-a's return trip was reinstated from the grace window rather
# than re-deserialized.
LISTING=$(curl -sf "$ADDR/wrappers")
echo "smoke: lazy listing: $LISTING"
echo "$LISTING" | grep -q '"residency"'
echo "$LISTING" | grep -q '"max_resident":1'
echo "$LISTING" | grep -q '"store_sites":2'
echo "$LISTING" | grep -q '"faults":2'
echo "$LISTING" | grep -q '"grace_hits":1'

kill "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
echo "smoke: serve-smoke passed"
