//! Property tests tying the XPATH inductor's feature semantics to the
//! xpath engine: the rendered rule of any learned wrapper must evaluate
//! to the wrapper's own extraction, and parsing must round-trip Display.

use aw_annotate::{DictionaryAnnotator, MatchMode};
use aw_dom::PageNode;
use aw_induct::{NodeSet, WrapperInductor, XPathInductor};
use aw_sitegen::{generate_dealers, generate_disc, DealersConfig, DiscConfig};
use aw_xpath::{evaluate, parse_xpath, Axis, NodeTest, Predicate, Step, XPath};
use proptest::prelude::*;

fn eval_on_site(xp: &XPath, site: &aw_induct::Site) -> NodeSet {
    (0..site.page_count() as u32)
        .flat_map(|p| {
            evaluate(xp, site.page(p))
                .into_iter()
                .map(move |id| PageNode::new(p, id))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On dealer sites, for any subset of annotator labels whose required
    /// feature set keeps a tag at every position (no wildcard steps), the
    /// rendered xpath evaluates to exactly the feature-based extraction.
    #[test]
    fn rendered_xpath_equals_extraction(seed in 0u64..300, mask in 1u32..255) {
        let ds = generate_dealers(&DealersConfig {
            sites: 1,
            pages_per_site: 2,
            seed,
            ..DealersConfig::default()
        });
        let site = &ds.sites[0].site;
        let annot = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
        let all: Vec<PageNode> = annot.annotate(site).into_iter().collect();
        let labels: NodeSet = all
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << (i % 8)) != 0)
            .map(|(_, &n)| n)
            .collect();
        prop_assume!(!labels.is_empty());

        let ind = XPathInductor::new(site);
        let xp = ind.xpath(&labels);
        // Wildcard steps arise when tags diverge but child numbers agree;
        // there the rendering is documented to be more general.
        let has_wildcard = xp.steps.iter().any(|s| s.test == NodeTest::AnyElement);
        prop_assume!(!has_wildcard);

        prop_assert_eq!(eval_on_site(&xp, site), ind.extract(&labels), "{}", xp);
    }

    /// Same property on DISC sites (different structures: ol/table lists,
    /// breadcrumbs, reviews).
    #[test]
    fn rendered_xpath_equals_extraction_disc(seed in 0u64..200) {
        let ds = generate_disc(&DiscConfig { sites: 1, albums_per_site: (2, 3), seed, ..DiscConfig::default() });
        let site = &ds.sites[0].site;
        let annot = DictionaryAnnotator::new(ds.track_dictionary.iter(), MatchMode::Exact);
        let labels = annot.annotate(site);
        prop_assume!(!labels.is_empty());

        let ind = XPathInductor::new(site);
        let xp = ind.xpath(&labels);
        prop_assume!(!xp.steps.iter().any(|s| s.test == NodeTest::AnyElement));
        prop_assert_eq!(eval_on_site(&xp, site), ind.extract(&labels), "{}", xp);
    }

    /// Random ASTs of the fragment round-trip through Display + parse.
    #[test]
    fn display_parse_round_trip(
        axes in prop::collection::vec(prop::bool::ANY, 1..5),
        tags in prop::collection::vec("[a-z][a-z0-9]{0,6}", 1..5),
        positions in prop::collection::vec(prop::option::of(1usize..9), 1..5),
        classes in prop::collection::vec(prop::option::of("[a-z]{1,8}"), 1..5),
        text_tail in prop::bool::ANY,
        text_pos in prop::option::of(1usize..5),
    ) {
        let n = axes.len().min(tags.len()).min(positions.len()).min(classes.len());
        let mut steps: Vec<Step> = (0..n)
            .map(|i| {
                let mut predicates = Vec::new();
                if let Some(k) = positions[i] {
                    predicates.push(Predicate::Position(k));
                }
                if let Some(c) = &classes[i] {
                    predicates.push(Predicate::Attr { name: "class".into(), value: c.clone() });
                }
                Step {
                    axis: if axes[i] { Axis::Descendant } else { Axis::Child },
                    test: NodeTest::Tag(tags[i].clone()),
                    predicates,
                }
            })
            .collect();
        if text_tail {
            let mut predicates = Vec::new();
            if let Some(k) = text_pos {
                predicates.push(Predicate::Position(k));
            }
            steps.push(Step { axis: Axis::Child, test: NodeTest::Text, predicates });
        }
        let xp = XPath::new(steps);
        let rendered = xp.to_string();
        let parsed = parse_xpath(&rendered).unwrap_or_else(|e| panic!("{rendered}: {e}"));
        prop_assert_eq!(parsed, xp, "{}", rendered);
    }

    /// Evaluation results are always deduplicated, in document order, and
    /// consist of nodes matching the final step's test.
    #[test]
    fn evaluation_invariants(seed in 0u64..200) {
        let ds = generate_dealers(&DealersConfig { sites: 1, pages_per_site: 1, seed, ..DealersConfig::default() });
        let doc = ds.sites[0].site.page(0);
        for rule in ["//td/text()", "//tr/td[1]", "//*", "//div//text()", "//li/text()[1]"] {
            let xp = parse_xpath(rule).unwrap();
            let out = evaluate(&xp, doc);
            let mut sorted = out.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(&out, &sorted, "order/dedup for {}", rule);
            let text_rule = rule.contains("text()");
            for id in out {
                prop_assert_eq!(doc.is_text(id), text_rule, "node kind for {}", rule);
            }
        }
    }
}
