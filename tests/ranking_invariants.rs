//! Property tests on the ranking model (§6).

use aw_induct::{NodeSet, Site};
use aw_rank::{
    list_features, segment_site, AnnotatorModel, ListFeatures, PublicationModel, RankingModel,
};
use aw_sitegen::{generate_dealers, DealersConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// §6: for any useful annotator (1 − p < r), Eq. (4) is maximized at
    /// X = L among X ⊆ L ⊆ X' chains: adding unlabeled nodes or removing
    /// labeled ones can only lower the annotation term.
    #[test]
    fn eq4_maximized_at_labels(
        p in 0.55f64..0.99,
        r in 0.1f64..0.95,
        hits in 0usize..50,
        extra in 1usize..50,
    ) {
        prop_assume!(1.0 - p < r);
        let m = AnnotatorModel::new(p, r);
        let exact = m.log_likelihood(hits, 0);
        prop_assert!(exact >= m.log_likelihood(hits.saturating_sub(1), 0));
        prop_assert!(exact > m.log_likelihood(hits, extra), "p={p} r={r}");
    }

    /// Adversarial annotators (1 − p > r) invert the preference, as §6
    /// observes ("equivalently, we can flip the output").
    #[test]
    fn eq4_adversarial_prefers_complement(
        p in 0.01f64..0.45,
        r in 0.01f64..0.4,
    ) {
        prop_assume!(1.0 - p > r + 0.05);
        let m = AnnotatorModel::new(p, r);
        prop_assert!(m.is_adversarial());
        // Extracting an unlabeled node *raises* the score.
        prop_assert!(m.log_likelihood(0, 1) > 0.0);
    }

    /// Segmentation invariants on generated sites: segments never cross
    /// pages, always start at a boundary text token, and their count is
    /// (boundary count − 1) summed per page.
    #[test]
    fn segmentation_counts(seed in 0u64..300) {
        let ds = generate_dealers(&DealersConfig { sites: 1, pages_per_site: 3, seed, ..DealersConfig::default() });
        let gs = &ds.sites[0];
        let segments = segment_site(&gs.site, gs.gold());
        let expected: usize = (0..gs.site.page_count() as u32)
            .map(|p| gs.gold().iter().filter(|n| n.page == p).count().saturating_sub(1))
            .sum();
        prop_assert_eq!(segments.len(), expected);
        for seg in &segments {
            prop_assert!(!seg.is_empty());
            prop_assert_eq!(seg.tokens[0].as_str(), aw_rank::TEXT_TOKEN);
            prop_assert_eq!(seg.pins[0], Some(0));
        }
    }

    /// The gold list's features score at least as well as a corrupted
    /// list's under a model trained on gold features (the core ranking
    /// property the framework relies on).
    #[test]
    fn gold_list_outranks_corrupted(seed in 0u64..200) {
        let ds = generate_dealers(&DealersConfig { sites: 8, pages_per_site: 3, seed, ..DealersConfig::default() });
        // Train on the first 4 sites.
        let feats: Vec<ListFeatures> = ds.sites[..4]
            .iter()
            .filter_map(|s| list_features(&segment_site(&s.site, s.gold())))
            .collect();
        prop_assume!(feats.len() >= 2);
        let model = RankingModel::new(AnnotatorModel::new(0.95, 0.3), PublicationModel::learn(&feats));

        for gs in &ds.sites[4..] {
            let gold = gs.gold();
            prop_assume!(gold.len() >= 4);
            // Corrupted list: gold plus every text node of page 0 (an
            // over-generalized wrapper's output).
            let mut corrupted: NodeSet = gold.clone();
            corrupted.extend(
                gs.site.text_nodes().iter().copied().filter(|n| n.page == 0),
            );
            let labels = gold.clone(); // perfect labels for this check
            let g = model.score(&gs.site, &labels, gold);
            let c = model.score(&gs.site, &labels, &corrupted);
            prop_assert!(
                g.total > c.total,
                "site {}: gold {:?} vs corrupted {:?}",
                gs.id, g.total, c.total
            );
        }
    }

    /// Publication model densities are finite and positive for any
    /// feature value (log-space ranking must never see NaN/−∞).
    #[test]
    fn publication_log_probs_finite(
        schema in 0.0f64..60.0,
        align in 0.0f64..200.0,
    ) {
        let model = PublicationModel::learn(&[
            ListFeatures { schema_size: 4.0, alignment: 0.0 },
            ListFeatures { schema_size: 3.0, alignment: 2.0 },
        ]);
        let lp = model.log_prob(Some(ListFeatures { schema_size: schema, alignment: align }));
        prop_assert!(lp.is_finite());
        prop_assert!(model.log_prob(None).is_finite());
    }
}

#[test]
fn empty_site_segmentation() {
    let site = Site::from_html(&["<div></div>"]);
    assert!(segment_site(&site, &NodeSet::new()).is_empty());
}
