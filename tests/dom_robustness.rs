//! Fuzz-style property tests for the DOM substrate: the paper's pipeline
//! runs on arbitrary crawled markup, so the tokenizer and parser must
//! never panic, and their output must be structurally sound.

use aw_dom::{parse, parse_indexed, serialize, tokenizer::tokenize, NodeId, NodeKind};
use proptest::prelude::*;

/// Strategy producing markup-looking garbage: tags, attributes, entities,
/// comments, raw text sections and random byte salad.
fn html_soup() -> impl Strategy<Value = String> {
    let fragment = prop_oneof![
        "[a-zA-Z0-9 .,!]{0,12}",
        Just("<".to_string()),
        Just(">".to_string()),
        Just("</".to_string()),
        Just("<div>".to_string()),
        Just("</div>".to_string()),
        Just("<td class='x'>".to_string()),
        Just("<br/>".to_string()),
        Just("<!-- c".to_string()),
        Just("-->".to_string()),
        Just("<script>".to_string()),
        Just("</script>".to_string()),
        Just("&amp;".to_string()),
        Just("&#x41;".to_string()),
        Just("&bogus;".to_string()),
        Just("<a href=".to_string()),
        Just("'".to_string()),
        Just("\"".to_string()),
        Just("<ul><li>".to_string()),
        Just("<table><tr>".to_string()),
        Just("é漢字".to_string()),
        // Whitespace the streaming fast path must classify exactly like
        // `collapse_whitespace`: VT (not ASCII-whitespace per `u8`), FF,
        // NBSP, and a Unicode line separator.
        Just("\u{0B}".to_string()),
        Just("\u{0C}".to_string()),
        Just("\u{a0}".to_string()),
        Just("\u{2028}".to_string()),
    ];
    prop::collection::vec(fragment, 0..40).prop_map(|v| v.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Tokenizer and parser accept anything without panicking, and the
    /// resulting tree has consistent parent/child links.
    #[test]
    fn parser_never_panics_and_links_are_sound(input in html_soup()) {
        let _tokens = tokenize(&input);
        let doc = parse(&input);
        for id in doc.ids() {
            let node = doc.node(id);
            if let Some(parent) = node.parent {
                prop_assert!(doc.children(parent).contains(&id));
            } else {
                prop_assert_eq!(id, NodeId::ROOT);
            }
            for &c in doc.children(id) {
                prop_assert_eq!(doc.parent(c), Some(id));
            }
            // Text nodes are non-empty and whitespace-collapsed.
            if let NodeKind::Text(t) = &node.kind {
                prop_assert!(!t.is_empty());
                prop_assert!(!t.contains('\n'));
                prop_assert!(!t.starts_with(' ') && !t.ends_with(' '));
            }
        }
    }

    /// serialize ∘ parse is a fixpoint: parsing the serialization and
    /// serializing again yields the same string (idempotent cleanup, the
    /// property tidy provides the paper's pipeline).
    #[test]
    fn serialize_parse_fixpoint(input in html_soup()) {
        let once = serialize(&parse(&input));
        let twice = serialize(&parse(&once));
        prop_assert_eq!(once, twice);
    }

    /// Pre-order traversal visits every node exactly once.
    #[test]
    fn preorder_is_a_permutation(input in html_soup()) {
        let doc = parse(&input);
        let visited: Vec<_> = doc.preorder_all().collect();
        prop_assert_eq!(visited.len(), doc.len());
        let mut sorted = visited.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), doc.len());
    }

    /// Text spans recorded during serialization always slice to the text
    /// node's exact content.
    #[test]
    fn text_spans_consistent(input in html_soup()) {
        let doc = parse(&input);
        let page = aw_dom::serialize_with_spans(&doc);
        for span in &page.spans {
            let slice = &page.html[span.start..span.end];
            let text = doc.text(span.node).unwrap();
            let raw_parent = matches!(
                doc.parent(span.node).and_then(|p| doc.tag(p)),
                Some("script" | "style")
            );
            let expected = if raw_parent {
                text.to_string()
            } else {
                aw_dom::entities::escape(text)
            };
            prop_assert_eq!(slice, expected.as_str());
        }
        // Spans are in document order and non-overlapping.
        for w in page.spans.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
    }

    /// Entity decoding is idempotent on decoded output when the output
    /// contains no '&', and escape ∘ decode round-trips escaped text.
    #[test]
    fn entity_escape_round_trip(text in "[a-zA-Z<>&\"' é]{0,40}") {
        let escaped = aw_dom::entities::escape(&text);
        prop_assert_eq!(aw_dom::entities::decode(&escaped), text);
    }

    /// The one-pass streaming parse→index (`parse_indexed`, the serving
    /// request path) is byte-identical to its differential oracle —
    /// classic `parse` followed by the lazy index build — on arbitrary
    /// markup: same tree, same serialization, and the same value in
    /// every index table the public API exposes.
    #[test]
    fn streaming_parse_matches_two_pass_oracle(input in html_soup()) {
        let streamed = parse_indexed(&input);
        let oracle = parse(&input);
        prop_assert_eq!(serialize(&streamed), serialize(&oracle));
        prop_assert_eq!(streamed.len(), oracle.len());
        let (si, oi) = (streamed.index(), oracle.index());
        prop_assert_eq!(si.ranks_monotone(), oi.ranks_monotone());
        prop_assert_eq!(si.element_postings(), oi.element_postings());
        prop_assert_eq!(si.text_postings(), oi.text_postings());
        for id in streamed.ids() {
            prop_assert_eq!(si.rank_of(id), oi.rank_of(id));
            prop_assert_eq!(si.subtree(si.rank_of(id)), oi.subtree(oi.rank_of(id)));
            prop_assert_eq!(si.tag_sym(id), oi.tag_sym(id));
            prop_assert_eq!(si.same_tag_pos(id), oi.same_tag_pos(id));
            prop_assert_eq!(si.elem_pos(id), oi.elem_pos(id));
            prop_assert_eq!(si.text_pos(id), oi.text_pos(id));
            prop_assert_eq!(si.attrs(id), oi.attrs(id));
            if let Some(sym) = si.tag_sym(id) {
                prop_assert_eq!(si.tag_postings(sym), oi.tag_postings(sym));
            }
            if let Some(el) = streamed.element(id) {
                for (_, value) in &el.attrs {
                    prop_assert_eq!(si.attr_value_id(value), oi.attr_value_id(value));
                }
            }
        }
        prop_assert_eq!(si.template_fingerprint(), oi.template_fingerprint());
        prop_assert_eq!(si.record_layout(), oi.record_layout());
    }
}
