//! Differential testing of the xpath engines.
//!
//! The compiled engines (`aw_xpath::indexed`, `aw_xpath::BatchEvaluator`)
//! must return **byte-identical node sets** to the reference interpreter
//! (`aw_xpath::reference`) on every (page, xpath) pair. This suite drives
//! all three over:
//!
//! * ≥ 1000 random pairs — sitegen pages (DEALERS and DISC shapes) ×
//!   random xpaths drawn from the fragment grammar;
//! * fuzz-shaped documents (markup soup) × the same grammar;
//! * learned rules: every wrapper enumerated from noisy labels on a
//!   dealer site, replayed through single and batch evaluation;
//! * whole random candidate sets through one predicate-aware batch trie,
//!   and site-sharded page-parallel evaluation across thread counts.

use aw_dom::Document;
use aw_eval::Executor;
use aw_sitegen::{generate_dealers, generate_disc, DealersConfig, DiscConfig};
use aw_xpath::{
    reference, Axis, BatchEvaluator, CompiledXPath, NodeTest, Predicate, ShardedBatch, Step, XPath,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Tags that occur in generated sites, plus misses and junk.
const TAGS: &[&str] = &[
    "div",
    "table",
    "tr",
    "td",
    "u",
    "b",
    "ul",
    "ol",
    "li",
    "span",
    "h1",
    "h2",
    "p",
    "a",
    "br",
    "em",
    "nonexistent",
    "q7z",
];
const ATTR_NAMES: &[&str] = &["class", "id", "href", "colspan"];
const ATTR_VALUES: &[&str] = &[
    "dealerlinks",
    "list",
    "content",
    "footer",
    "sidebar",
    "stores",
    "row",
    "x",
    "missing",
];

/// A random xpath of the fragment: 1–5 steps, each with optional
/// position/attribute predicates, optionally ending in `text()`.
fn random_xpath(rng: &mut StdRng) -> XPath {
    let n_steps = rng.gen_range(1..=5usize);
    let mut steps = Vec::with_capacity(n_steps);
    for i in 0..n_steps {
        let last = i + 1 == n_steps;
        let test = if last && rng.gen_bool(0.4) {
            NodeTest::Text
        } else if rng.gen_bool(0.1) {
            NodeTest::AnyElement
        } else {
            NodeTest::Tag(TAGS.choose(rng).unwrap().to_string())
        };
        let mut predicates = Vec::new();
        if rng.gen_bool(0.3) {
            predicates.push(Predicate::Position(rng.gen_range(1..=3usize)));
        }
        if !matches!(test, NodeTest::Text) && rng.gen_bool(0.25) {
            predicates.push(Predicate::Attr {
                name: ATTR_NAMES.choose(rng).unwrap().to_string(),
                value: ATTR_VALUES.choose(rng).unwrap().to_string(),
            });
        }
        steps.push(Step {
            // Descendant-heavy: absolute child paths from the root rarely
            // reach into a real page, and misses exercise less code.
            axis: if i == 0 || rng.gen_bool(0.6) {
                Axis::Descendant
            } else {
                Axis::Child
            },
            test,
            predicates,
        });
    }
    XPath::new(steps)
}

/// Asserts all three engines agree on one (doc, path) pair.
#[track_caller]
fn assert_engines_agree(doc: &Document, path: &XPath) {
    let expected = reference::evaluate(path, doc);
    let compiled = CompiledXPath::compile(path);
    let indexed = aw_xpath::evaluate_compiled(&compiled, doc);
    assert_eq!(indexed, expected, "indexed engine differs for {path}");
    let batch = BatchEvaluator::new(&[compiled]);
    let batched = batch.evaluate(doc).remove(0);
    assert_eq!(batched, expected, "batch engine differs for {path}");
}

#[test]
fn engines_agree_on_1000_random_site_page_pairs() {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    let mut pages: Vec<Document> = Vec::new();
    for seed in 0..6 {
        let ds = generate_dealers(&DealersConfig {
            sites: 2,
            pages_per_site: 2,
            seed: 100 + seed,
            ..DealersConfig::default()
        });
        for gs in &ds.sites {
            for p in 0..gs.site.page_count() as u32 {
                pages.push(gs.site.page(p).clone());
            }
        }
        let disc = generate_disc(&DiscConfig {
            sites: 1,
            albums_per_site: (2, 3),
            seed: 300 + seed,
            ..DiscConfig::default()
        });
        for p in 0..disc.sites[0].site.page_count() as u32 {
            pages.push(disc.sites[0].site.page(p).clone());
        }
    }
    assert!(pages.len() >= 20, "corpus too small: {}", pages.len());

    let mut checked = 0usize;
    let mut nonempty = 0usize;
    while checked < 1200 {
        let doc = pages.choose(&mut rng).unwrap();
        let path = random_xpath(&mut rng);
        if !reference::evaluate(&path, doc).is_empty() {
            nonempty += 1;
        }
        assert_engines_agree(doc, &path);
        checked += 1;
    }
    // The grammar must actually exercise matching paths, not just misses.
    assert!(
        nonempty > 100,
        "only {nonempty} of {checked} pairs matched anything"
    );
}

#[test]
fn engines_agree_on_markup_soup() {
    let mut rng = StdRng::seed_from_u64(0x50FA);
    let fragments = [
        "<div>",
        "</div>",
        "<td class='x'>",
        "text",
        "<u>",
        "</u>",
        "<br>",
        "<tr>",
        "</tr>",
        "more words",
        "<table>",
        "</table>",
        "<li>",
        "&amp;",
        "<p",
        "'",
        ">",
    ];
    for _ in 0..300 {
        let n = rng.gen_range(0..30usize);
        let soup: String = (0..n)
            .map(|_| *fragments.choose(&mut rng).unwrap())
            .collect::<Vec<_>>()
            .concat();
        let doc = aw_dom::parse(&soup);
        for _ in 0..4 {
            assert_engines_agree(&doc, &random_xpath(&mut rng));
        }
    }
}

#[test]
fn engines_agree_on_every_enumerated_wrapper() {
    use aw_annotate::{DictionaryAnnotator, MatchMode};
    use aw_enum::top_down;
    use aw_induct::{NodeSet, XPathInductor};

    let ds = generate_dealers(&DealersConfig {
        sites: 2,
        pages_per_site: 3,
        seed: 0xBA7C,
        ..DealersConfig::default()
    });
    let annot = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
    for gs in &ds.sites {
        let labels: NodeSet = annot.annotate(&gs.site);
        if labels.is_empty() {
            continue;
        }
        let ind = XPathInductor::new(&gs.site);
        let space = top_down(&ind, &labels);
        let candidates = space.xpath_candidates();
        assert!(!candidates.is_empty());

        // Batch evaluation of the whole space, page by page, must equal
        // per-wrapper reference evaluation.
        let paths: Vec<XPath> = candidates.iter().map(|(_, xp)| xp.clone()).collect();
        let batch = BatchEvaluator::from_xpaths(paths.iter());
        for p in 0..gs.site.page_count() as u32 {
            let doc = gs.site.page(p);
            let results = batch.evaluate(doc);
            for (path, got) in paths.iter().zip(&results) {
                assert_eq!(
                    got,
                    &reference::evaluate(path, doc),
                    "wrapper {path} on page {p}"
                );
            }
        }
    }
}

#[test]
fn whole_random_sets_agree_through_one_batch_trie() {
    // `assert_engines_agree` exercises single-path tries only; this
    // drives whole random candidate sets through ONE evaluator, so
    // predicate-aware merging (steps differing only in `[k]`/attribute
    // predicates sharing a bare traversal) is hit hard.
    let mut rng = StdRng::seed_from_u64(0x3AEE);
    let ds = generate_dealers(&DealersConfig {
        sites: 2,
        pages_per_site: 2,
        seed: 0x9e1,
        ..DealersConfig::default()
    });
    let mut pages: Vec<Document> = Vec::new();
    for gs in &ds.sites {
        for p in 0..gs.site.page_count() as u32 {
            pages.push(gs.site.page(p).clone());
        }
    }
    for round in 0..8 {
        let paths: Vec<XPath> = (0..150).map(|_| random_xpath(&mut rng)).collect();
        let batch = BatchEvaluator::from_xpaths(paths.iter());
        assert!(
            batch.distinct_steps() <= batch.distinct_variants(),
            "round {round}: merging can only reduce traversals"
        );
        for doc in &pages {
            for (path, got) in paths.iter().zip(batch.evaluate(doc)) {
                assert_eq!(got, reference::evaluate(path, doc), "round {round}: {path}");
            }
        }
    }
}

#[test]
fn sharded_parallel_evaluation_is_byte_identical_across_thread_counts() {
    use aw_annotate::{DictionaryAnnotator, MatchMode};
    use aw_enum::{sharded_xpath_space, top_down};
    use aw_induct::{NodeSet, XPathInductor};

    let ds = generate_dealers(&DealersConfig {
        sites: 4,
        pages_per_site: 3,
        seed: 0x51AD,
        ..DealersConfig::default()
    });
    let annot = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);

    // Per-site enumerated spaces, tagged by site for sharding; keep the
    // parsed paths for the reference oracle.
    let mut spaces: Vec<aw_enum::EnumerationResult<aw_dom::PageNode>> = Vec::new();
    let mut site_paths: Vec<Vec<XPath>> = Vec::new();
    let mut pages: Vec<(usize, &Document)> = Vec::new();
    for gs in &ds.sites {
        let labels: NodeSet = annot.annotate(&gs.site);
        assert!(!labels.is_empty(), "annotator found nothing");
        let ind = XPathInductor::new(&gs.site);
        let space = top_down(&ind, &labels);
        site_paths.push(
            space
                .xpath_candidates()
                .into_iter()
                .map(|(_, xp)| xp)
                .collect(),
        );
        spaces.push(space);
    }
    for (s, gs) in ds.sites.iter().enumerate() {
        for page in gs.site.pages() {
            pages.push((s, page));
        }
    }
    let sharded = ShardedBatch::new(sharded_xpath_space(spaces.iter()));
    assert_eq!(sharded.shard_count(), ds.sites.len());
    assert_eq!(
        sharded.len(),
        site_paths.iter().map(Vec::len).sum::<usize>()
    );

    // Global slots are site-major (sharded_xpath_space documents this).
    let mut slot_to_path: Vec<&XPath> = Vec::new();
    for paths in &site_paths {
        slot_to_path.extend(paths.iter());
    }

    type PageResults = Vec<Vec<(u32, Vec<aw_dom::NodeId>)>>;
    let mut first: Option<PageResults> = None;
    for threads in [1, 2, 3, 8] {
        let exec = Executor::new(threads);
        let results = sharded.evaluate_pages(&pages, &exec);
        // Byte-identical to the reference interpreter per (rule, page)...
        for (&(_, page), page_results) in pages.iter().zip(&results) {
            for (slot, nodes) in page_results {
                assert_eq!(
                    nodes,
                    &reference::evaluate(slot_to_path[*slot as usize], page),
                    "threads {threads}, slot {slot}"
                );
            }
        }
        // ...and across thread counts.
        match &first {
            None => first = Some(results),
            Some(expected) => assert_eq!(&results, expected, "threads {threads}"),
        }
    }
}

#[test]
fn template_cache_is_byte_identical_across_engines_and_thread_counts() {
    use aw_annotate::{DictionaryAnnotator, MatchMode};
    use aw_enum::{sharded_xpath_space, top_down};
    use aw_induct::{NodeSet, XPathInductor};

    // A repeated-template corpus: fixed records per page, all optional
    // fields present — every page of a site shares one structural
    // fingerprint, so sharded evaluation replays recorded traces.
    let ds = generate_dealers(&DealersConfig {
        sites: 4,
        pages_per_site: 4,
        records_per_page: (5, 5),
        promo_prob: 0.0,
        uniform_records: true,
        seed: 0x7E41,
        ..DealersConfig::default()
    });
    let annot = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);

    let mut spaces: Vec<aw_enum::EnumerationResult<aw_dom::PageNode>> = Vec::new();
    let mut slot_to_path: Vec<XPath> = Vec::new();
    for gs in &ds.sites {
        let labels: NodeSet = annot.annotate(&gs.site);
        assert!(!labels.is_empty(), "annotator found nothing");
        let space = top_down(&XPathInductor::new(&gs.site), &labels);
        slot_to_path.extend(space.xpath_candidates().into_iter().map(|(_, xp)| xp));
        spaces.push(space);
    }
    let mut pages: Vec<(usize, &Document)> = Vec::new();
    for (s, gs) in ds.sites.iter().enumerate() {
        for page in gs.site.pages() {
            pages.push((s, page));
        }
    }

    let tagged: Vec<(usize, aw_xpath::CompiledXPath)> = sharded_xpath_space(spaces.iter());
    let cached = ShardedBatch::new(tagged.clone());
    let uncached = ShardedBatch::new(tagged).with_cache(false);

    type PageResults = Vec<Vec<(u32, Vec<aw_dom::NodeId>)>>;
    let mut first: Option<PageResults> = None;
    for threads in [1, 2, 8] {
        let exec = Executor::new(threads);
        let on = cached.evaluate_pages(&pages, &exec);
        let off = uncached.evaluate_pages(&pages, &exec);
        assert_eq!(on, off, "cache-on != cache-off at {threads} threads");
        // Byte-identical to the reference interpreter per (rule, page).
        for (&(_, page), page_results) in pages.iter().zip(&on) {
            for (slot, nodes) in page_results {
                assert_eq!(
                    nodes,
                    &reference::evaluate(&slot_to_path[*slot as usize], page),
                    "threads {threads}, slot {slot}"
                );
            }
        }
        // ...and across thread counts.
        match &first {
            None => first = Some(on),
            Some(expected) => assert_eq!(&on, expected, "threads {threads}"),
        }
    }
    let (hits, _) = cached.template_cache_stats().expect("cache enabled");
    assert!(hits > 0, "the template corpus must actually replay");
}

#[test]
fn template_replay_agrees_on_random_spaces_over_skeleton_siblings() {
    // Random candidate sets over pairs of same-skeleton documents whose
    // text AND attribute values differ: the replay page re-validates
    // every attribute selection (values diverge, so the trusted path
    // must fall back mid-trie) while sharing bare traversals.
    let mut rng = StdRng::seed_from_u64(0x7E9A);
    let render = |salt: u64| -> String {
        // One fixed skeleton, two fillings.
        let v = |i: u64| format!("v{}", (salt.wrapping_mul(31).wrapping_add(i)) % 3);
        format!(
            "<div class='{}'><table class='{}'>\
               <tr><td><u>name {salt} a</u><br>street {salt}</td><td>z{salt}</td></tr>\
               <tr><td><u>name {salt} b</u><br>road {salt}</td><td>y{salt}</td></tr>\
             </table></div><div class='{}'><p>tail {salt}</p></div>",
            v(0),
            v(1),
            v(2),
        )
    };
    for round in 0..30 {
        let a = aw_dom::parse(&render(round));
        let b = aw_dom::parse(&render(round + 1000));
        assert_eq!(
            a.index().template_fingerprint(),
            b.index().template_fingerprint(),
            "skeleton siblings must share a fingerprint"
        );
        let mut paths: Vec<XPath> = (0..40).map(|_| random_xpath(&mut rng)).collect();
        // Attribute predicates over the varying values, to force both
        // agreeing and diverging re-validations.
        for val in ["v0", "v1", "v2"] {
            paths.push(aw_xpath::parse_xpath(&format!("//div[@class='{val}']//text()")).unwrap());
            paths.push(
                aw_xpath::parse_xpath(&format!("//div[@class='{val}']/table/tr/td/u/text()"))
                    .unwrap(),
            );
        }
        let batch = BatchEvaluator::from_xpaths(paths.iter());
        // a bypasses, a again records, then b (and a) replay.
        for doc in [&a, &a, &b, &a, &b] {
            for (path, got) in paths.iter().zip(batch.evaluate(doc)) {
                assert_eq!(got, reference::evaluate(path, doc), "round {round}: {path}");
            }
        }
        let (hits, _) = batch.template_cache().unwrap().stats();
        assert_eq!(hits, 3, "round {round}: replays expected");
    }
}

#[test]
fn engines_agree_on_builder_docs_where_arena_order_is_not_rank_order() {
    // The engines skip the materialization sort when arena order equals
    // pre-order rank order (`DocIndex::ranks_monotone`); builder-built
    // documents with interleaved appends are exactly the case where it
    // must NOT be skipped. Build listing-shaped trees breadth-first
    // (all containers first, then their children), which makes arena
    // order diverge from preorder everywhere below the first level.
    let mut rng = StdRng::seed_from_u64(0xB00C);
    for round in 0..40 {
        let mut doc = Document::new();
        let classes = ["list", "content", "footer"];
        let divs: Vec<_> = (0..3)
            .map(|i| {
                doc.append_element(
                    aw_dom::NodeId::ROOT,
                    "div",
                    vec![("class".to_string(), classes[i % 3].to_string())],
                )
            })
            .collect();
        let rows: Vec<_> = divs
            .iter()
            .flat_map(|&d| (0..2).map(move |_| d))
            .map(|d| doc.append_element(d, "tr", vec![]))
            .collect();
        for (i, &tr) in rows.iter().enumerate() {
            let td = doc.append_element(tr, "td", vec![]);
            let u = doc.append_element(td, "u", vec![]);
            doc.append_text(u, format!("NAME {round}-{i}"));
            doc.append_text(td, format!("{i} Elm St"));
        }
        assert!(
            !doc.index().ranks_monotone(),
            "breadth-first construction must break arena/rank agreement"
        );
        for _ in 0..30 {
            assert_engines_agree(&doc, &random_xpath(&mut rng));
        }
        // And through one batch trie three times, so the template-cache
        // record/replay paths also materialize via the sorting branch.
        let paths: Vec<XPath> = (0..20).map(|_| random_xpath(&mut rng)).collect();
        let batch = BatchEvaluator::from_xpaths(paths.iter());
        for _ in 0..3 {
            for (path, got) in paths.iter().zip(batch.evaluate(&doc)) {
                assert_eq!(
                    got,
                    reference::evaluate(path, &doc),
                    "round {round}: {path}"
                );
            }
        }
        let (hits, _) = batch.template_cache().unwrap().stats();
        assert_eq!(hits, 1, "round {round}: third pass must replay");
    }
}

#[test]
fn record_replay_is_byte_identical_on_variable_length_learned_corpora() {
    use aw_annotate::{DictionaryAnnotator, MatchMode};
    use aw_enum::{sharded_xpath_space, top_down};
    use aw_induct::{NodeSet, XPathInductor};

    // A variable-length corpus: record counts differ per page and each
    // record independently drops its optional phone field, so whole-page
    // fingerprints rarely repeat within a site. Replay can only come
    // from frame/record stitching — and dropout means replay pages carry
    // record variants unseen at record time, exercising the per-record
    // fresh-fallback path under every thread count.
    let ds = generate_dealers(&DealersConfig {
        sites: 3,
        pages_per_site: 5,
        records_per_page: (2, 8),
        promo_prob: 0.0,
        seed: 0xFA7B,
        ..DealersConfig::default()
    });
    let annot = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);

    let mut spaces: Vec<aw_enum::EnumerationResult<aw_dom::PageNode>> = Vec::new();
    let mut slot_to_path: Vec<XPath> = Vec::new();
    for gs in &ds.sites {
        let labels: NodeSet = annot.annotate(&gs.site);
        assert!(!labels.is_empty(), "annotator found nothing");
        let space = top_down(&XPathInductor::new(&gs.site), &labels);
        slot_to_path.extend(space.xpath_candidates().into_iter().map(|(_, xp)| xp));
        spaces.push(space);
    }
    let mut pages: Vec<(usize, &Document)> = Vec::new();
    for (s, gs) in ds.sites.iter().enumerate() {
        for page in gs.site.pages() {
            pages.push((s, page));
        }
    }
    // The corpus must actually be variable-length per site, or this test
    // degenerates into the fixed-roster one above.
    for gs in &ds.sites {
        let mut counts: Vec<u64> = gs
            .site
            .pages()
            .iter()
            .map(|p| {
                p.index()
                    .record_layout()
                    .expect("listing run")
                    .records
                    .len() as u64
            })
            .collect();
        counts.dedup();
        assert!(counts.len() > 1, "record counts must vary within a site");
    }

    let tagged: Vec<(usize, aw_xpath::CompiledXPath)> = sharded_xpath_space(spaces.iter());
    let cached = ShardedBatch::new(tagged.clone());
    let uncached = ShardedBatch::new(tagged).with_cache(false);

    type PageResults = Vec<Vec<(u32, Vec<aw_dom::NodeId>)>>;
    let mut first: Option<PageResults> = None;
    for threads in [1, 2, 8] {
        let exec = Executor::new(threads);
        let on = cached.evaluate_pages(&pages, &exec);
        let off = uncached.evaluate_pages(&pages, &exec);
        assert_eq!(on, off, "cache-on != cache-off at {threads} threads");
        for (&(_, page), page_results) in pages.iter().zip(&on) {
            for (slot, nodes) in page_results {
                assert_eq!(
                    nodes,
                    &reference::evaluate(&slot_to_path[*slot as usize], page),
                    "threads {threads}, slot {slot}"
                );
            }
        }
        match &first {
            None => first = Some(on),
            Some(expected) => assert_eq!(&on, expected, "threads {threads}"),
        }
    }
    let replay = cached.template_replay_stats().expect("cache enabled");
    assert!(replay.frame_replays > 0, "no frame stitched: {replay:?}");
    assert!(replay.record_replays > 0, "no record replayed: {replay:?}");
    assert!(
        replay.record_fallbacks > 0,
        "dropout corpus must hit the fresh-fallback path: {replay:?}"
    );
}

#[test]
fn record_replay_survives_dropout_and_markup_drift() {
    // Hand-built variable-length listings driven through ONE cached trie
    // in a fixed order, so every partial-replay transition is pinned:
    // per-record optional-field dropout (a phone cell that comes and
    // goes) and mid-page markup drift (one record swaps <u> for <em>)
    // must fall back to fresh evaluation for exactly those records while
    // the rest of the page stitches from recorded traces.
    let page = |records: &[(&str, bool, bool)]| -> Document {
        let rows: String = records
            .iter()
            .enumerate()
            .map(|(i, (name, phone, drift))| {
                let label = if *drift {
                    format!("<em>{name}</em>")
                } else {
                    format!("<u>{name}</u>")
                };
                let tel = if *phone {
                    format!("<td>555-01{i:02}</td>")
                } else {
                    String::new()
                };
                format!("<tr><td>{label}<br>{i} Elm St</td>{tel}</tr>")
            })
            .collect();
        aw_dom::parse(&format!(
            "<div class='nav'><h1>Dealers</h1></div>\
             <table class='dealerlinks'>{rows}</table>\
             <div class='footer'><p>contact</p></div>"
        ))
    };
    let mut rng = StdRng::seed_from_u64(0xD207);
    let mut paths: Vec<XPath> = (0..30).map(|_| random_xpath(&mut rng)).collect();
    for targeted in [
        "//table[@class='dealerlinks']/tr/td/u/text()",
        "//tr/td[1]/text()",
        "//tr/td[2]/text()",
        "//tr[2]/td/u/text()",
        "//td/em/text()",
        "//div[@class='footer']/p/text()",
    ] {
        paths.push(aw_xpath::parse_xpath(targeted).unwrap());
    }
    let cached = BatchEvaluator::from_xpaths(paths.iter());
    let uncached = BatchEvaluator::from_xpaths(paths.iter()).with_cache(false);

    let full = |n: &'static str| (n, true, false);
    let bare = |n: &'static str| (n, false, false);
    let pages = [
        // bypass, then record: both full-roster, different counts.
        page(&[full("A"), full("B"), full("C")]),
        page(&[full("D"), full("E"), full("F"), full("G")]),
        // dropout: two phone-less records, unseen at record time — both
        // fall back fresh (the first donates its trace for later pages).
        page(&[full("H"), bare("I"), full("J"), full("K"), bare("L")]),
        // the donated phone-less trace now replays alongside the full one.
        page(&[bare("M"), full("N"), full("O"), bare("P")]),
        // markup drift: one record swaps <u> for <em> mid-page; its
        // neighbours still replay, it alone re-evaluates.
        page(&[full("Q"), ("R", true, true), full("S")]),
    ];
    for doc in &pages {
        let on = cached.evaluate(doc);
        let off = uncached.evaluate(doc);
        for ((path, got), also) in paths.iter().zip(on).zip(off) {
            let expected = reference::evaluate(path, doc);
            assert_eq!(got, expected, "cache-on differs for {path}");
            assert_eq!(also, expected, "cache-off differs for {path}");
        }
    }
    let replay = cached.template_cache().unwrap().replay_stats();
    assert_eq!(replay.full_replays, 0, "{replay:?}");
    assert_eq!(replay.frame_replays, 3, "{replay:?}");
    assert_eq!(replay.record_replays, 9, "{replay:?}");
    assert_eq!(replay.record_fallbacks, 3, "{replay:?}");
    assert_eq!(replay.misses, 2, "{replay:?}");
}

#[test]
fn streaming_parse_is_byte_identical_through_sharded_extraction() {
    use aw_annotate::{DictionaryAnnotator, MatchMode};
    use aw_enum::{sharded_xpath_space, top_down};
    use aw_induct::{NodeSet, XPathInductor};

    // The serving request path re-parses raw HTML with the one-pass
    // streaming builder (`aw_dom::parse_indexed`) where everything else
    // in this suite uses classic `parse`. Serialize learned corpora —
    // the fixed-roster template corpus AND the variable-length dropout
    // corpus — re-parse every page through both paths, and require the
    // full extraction pipeline to be byte-identical between them:
    // fingerprints, record layouts, and sharded node sets with the
    // template cache on and off at every thread count. One cached
    // evaluator serves both parse paths interleaved, so traces recorded
    // from classic-parsed pages must replay correctly onto
    // stream-parsed ones (exactly what a long-lived service does).
    let corpora = [
        generate_dealers(&DealersConfig {
            sites: 3,
            pages_per_site: 4,
            records_per_page: (5, 5),
            promo_prob: 0.0,
            uniform_records: true,
            seed: 0x7E41,
            ..DealersConfig::default()
        }),
        generate_dealers(&DealersConfig {
            sites: 3,
            pages_per_site: 5,
            records_per_page: (2, 8),
            promo_prob: 0.0,
            seed: 0xFA7B,
            ..DealersConfig::default()
        }),
    ];
    for (corpus, ds) in corpora.iter().enumerate() {
        let annot = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
        let mut spaces: Vec<aw_enum::EnumerationResult<aw_dom::PageNode>> = Vec::new();
        let mut slot_to_path: Vec<XPath> = Vec::new();
        for gs in &ds.sites {
            let labels: NodeSet = annot.annotate(&gs.site);
            assert!(!labels.is_empty(), "annotator found nothing");
            let space = top_down(&XPathInductor::new(&gs.site), &labels);
            slot_to_path.extend(space.xpath_candidates().into_iter().map(|(_, xp)| xp));
            spaces.push(space);
        }

        // Serialize and re-parse each page through both paths. Both
        // parsers allocate nodes in document order, so agreement holds
        // at the NodeId level, not just structurally.
        let mut oracle_docs: Vec<(usize, Document)> = Vec::new();
        let mut stream_docs: Vec<(usize, Document)> = Vec::new();
        for (s, gs) in ds.sites.iter().enumerate() {
            for page in gs.site.pages() {
                let html = aw_dom::serialize(page);
                let oracle = aw_dom::parse(&html);
                let streamed = aw_dom::parse_indexed(&html).into_document();
                assert_eq!(
                    aw_dom::serialize(&streamed),
                    aw_dom::serialize(&oracle),
                    "corpus {corpus}: tree mismatch"
                );
                assert_eq!(
                    streamed.index().template_fingerprint(),
                    oracle.index().template_fingerprint(),
                    "corpus {corpus}: fingerprint mismatch"
                );
                assert_eq!(
                    streamed.index().record_layout(),
                    oracle.index().record_layout(),
                    "corpus {corpus}: record layout mismatch"
                );
                oracle_docs.push((s, oracle));
                stream_docs.push((s, streamed));
            }
        }
        let oracle_pages: Vec<(usize, &Document)> =
            oracle_docs.iter().map(|(s, d)| (*s, d)).collect();
        let stream_pages: Vec<(usize, &Document)> =
            stream_docs.iter().map(|(s, d)| (*s, d)).collect();

        let tagged: Vec<(usize, aw_xpath::CompiledXPath)> = sharded_xpath_space(spaces.iter());
        let cached = ShardedBatch::new(tagged.clone());
        let uncached = ShardedBatch::new(tagged).with_cache(false);
        type PageResults = Vec<Vec<(u32, Vec<aw_dom::NodeId>)>>;
        let mut first: Option<PageResults> = None;
        for threads in [1, 2, 8] {
            let exec = Executor::new(threads);
            // Oracle pages first: with the cache on, the traces they
            // record must replay byte-identically onto the
            // stream-parsed copies of the same templates.
            let on_oracle = cached.evaluate_pages(&oracle_pages, &exec);
            let on_stream = cached.evaluate_pages(&stream_pages, &exec);
            let off_stream = uncached.evaluate_pages(&stream_pages, &exec);
            assert_eq!(
                on_stream, on_oracle,
                "corpus {corpus}: stream != oracle (cache on, {threads} threads)"
            );
            assert_eq!(
                off_stream, on_oracle,
                "corpus {corpus}: cache-off stream != oracle ({threads} threads)"
            );
            // And byte-identical to the reference interpreter.
            for (&(_, page), page_results) in stream_pages.iter().zip(&on_stream) {
                for (slot, nodes) in page_results {
                    assert_eq!(
                        nodes,
                        &reference::evaluate(&slot_to_path[*slot as usize], page),
                        "corpus {corpus}: threads {threads}, slot {slot}"
                    );
                }
            }
            match &first {
                None => first = Some(on_stream),
                Some(expected) => {
                    assert_eq!(&on_stream, expected, "corpus {corpus}: threads {threads}")
                }
            }
        }
        let (hits, _) = cached.template_cache_stats().expect("cache enabled");
        assert!(hits > 0, "corpus {corpus}: the template corpus must replay");
    }
}

#[test]
fn display_roundtrip_preserves_engine_agreement() {
    // Parsing a rendered path and evaluating both forms through both
    // engines closes the loop between the parser, Display, and the
    // compiled representations.
    let mut rng = StdRng::seed_from_u64(0x0DD);
    let ds = generate_dealers(&DealersConfig {
        sites: 1,
        pages_per_site: 1,
        seed: 77,
        ..DealersConfig::default()
    });
    let doc = ds.sites[0].site.page(0);
    for _ in 0..200 {
        let path = random_xpath(&mut rng);
        let reparsed = aw_xpath::parse_xpath(&path.to_string()).expect("rendered path parses");
        assert_eq!(reparsed, path);
        assert_engines_agree(doc, &reparsed);
    }
}
