//! Cross-crate integration tests: the full §7 pipeline on every domain.

use autowrappers::prelude::*;
use aw_eval::{evaluate, learn_model, split_half, Method};
use aw_sitegen::{
    generate_dealers, generate_disc, generate_products, DealersConfig, DiscConfig, GeneratedSite,
    ProductsConfig,
};

fn run_domain(
    sites: &[GeneratedSite],
    labels_of: impl Fn(&GeneratedSite) -> NodeSet + Sync,
    language: WrapperLanguage,
) -> (f64, f64) {
    let (train, test) = split_half(sites);
    let model = learn_model(&train, &labels_of);
    let naive = evaluate(&test, &labels_of, language, Method::Naive, &model);
    let ntw = evaluate(&test, &labels_of, language, Method::Ntw, &model);
    (naive.mean.f1, ntw.mean.f1)
}

#[test]
fn dealers_xpath_pipeline() {
    let ds = generate_dealers(&DealersConfig::small(24, 1001));
    let annot = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
    let (naive_f1, ntw_f1) = run_domain(
        &ds.sites,
        |s| annot.annotate(&s.site),
        WrapperLanguage::XPath,
    );
    assert!(ntw_f1 > naive_f1, "NTW {ntw_f1} vs NAIVE {naive_f1}");
    assert!(ntw_f1 > 0.9, "NTW too weak: {ntw_f1}");
}

#[test]
fn dealers_lr_pipeline() {
    let ds = generate_dealers(&DealersConfig::small(24, 1002));
    let annot = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
    let (naive_f1, ntw_f1) =
        run_domain(&ds.sites, |s| annot.annotate(&s.site), WrapperLanguage::Lr);
    assert!(ntw_f1 > naive_f1, "NTW {ntw_f1} vs NAIVE {naive_f1}");
    assert!(ntw_f1 > 0.75, "LR NTW too weak: {ntw_f1}");
}

#[test]
fn dealers_hlrt_pipeline() {
    // HLRT is blackbox-only; exercises the BottomUp fallback path.
    let ds = generate_dealers(&DealersConfig::small(10, 1003));
    let annot = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
    let (naive_f1, ntw_f1) = run_domain(
        &ds.sites,
        |s| annot.annotate(&s.site),
        WrapperLanguage::Hlrt,
    );
    assert!(
        ntw_f1 >= naive_f1 - 0.05,
        "NTW {ntw_f1} vs NAIVE {naive_f1}"
    );
    assert!(ntw_f1 > 0.5, "HLRT NTW too weak: {ntw_f1}");
}

#[test]
fn disc_pipeline() {
    let ds = generate_disc(&DiscConfig::small(8, 1004));
    let annot = DictionaryAnnotator::new(ds.track_dictionary.iter(), MatchMode::Exact);
    let (naive_f1, ntw_f1) = run_domain(
        &ds.sites,
        |s| annot.annotate(&s.site),
        WrapperLanguage::XPath,
    );
    assert!(ntw_f1 >= naive_f1);
    assert!(ntw_f1 > 0.85, "DISC NTW too weak: {ntw_f1}");
}

#[test]
fn products_pipeline() {
    let ds = generate_products(&ProductsConfig::small(8, 1005));
    let annot = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
    let (_naive_f1, ntw_f1) = run_domain(
        &ds.sites,
        |s| annot.annotate(&s.site),
        WrapperLanguage::XPath,
    );
    assert!(ntw_f1 > 0.7, "PRODUCTS NTW too weak: {ntw_f1}");
}

#[test]
fn learned_rules_are_reparsable_xpaths() {
    // The display form of every learned XPATH wrapper must parse back and
    // evaluate to the same extraction.
    let ds = generate_dealers(&DealersConfig::small(6, 1006));
    let annot = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
    let (train, test) = split_half(&ds.sites);
    let model = learn_model(&train, |s| annot.annotate(&s.site));
    for gs in test {
        let labels = annot.annotate(&gs.site);
        if labels.is_empty() {
            continue;
        }
        let engine = Engine::builder(model.clone()).build();
        let out = engine.learn(&gs.site, &labels).unwrap();
        let best = out.best().unwrap();
        let xp = parse_xpath(&best.rule).unwrap_or_else(|e| panic!("{}: {e}", best.rule));
        let by_eval: NodeSet = (0..gs.site.page_count() as u32)
            .flat_map(|p| evaluate_xpath_on_page(&xp, &gs.site, p))
            .collect();
        assert_eq!(by_eval, best.extraction, "rule {}", best.rule);
    }
}

fn evaluate_xpath_on_page(xp: &XPath, site: &Site, page: u32) -> Vec<PageNode> {
    autowrappers::aw_xpath::evaluate(xp, site.page(page))
        .into_iter()
        .map(move |id| PageNode::new(page, id))
        .collect()
}

#[test]
fn multi_type_end_to_end() {
    let ds = generate_dealers(&DealersConfig::small(12, 1007));
    let name_annot = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
    let (train, test) = split_half(&ds.sites);
    let name_model = learn_model(&train, |s| name_annot.annotate(&s.site));
    let zip_annot = aw_eval::learn_annotator(&train, 1, |s| annotate_zipcodes(&s.site));
    let model = MultiTypeModel {
        annotators: vec![name_model.annotator, zip_annot],
        publication: name_model.publication.clone(),
        pin_indel_cost: 3,
    };
    let mut assembled_ok = 0;
    for gs in &test {
        let labels = [name_annot.annotate(&gs.site), annotate_zipcodes(&gs.site)];
        if labels[0].is_empty() || labels[1].is_empty() {
            continue;
        }
        let out = learn_multi_type(&gs.site, &labels, &model, &NtwConfig::default());
        if let Some(best) = out.best() {
            if !best.records.is_empty() {
                assembled_ok += 1;
            }
        }
    }
    assert!(
        assembled_ok >= test.len() / 2,
        "only {assembled_ok} sites assembled"
    );
}
