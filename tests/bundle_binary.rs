//! The v3 binary bundle + lazy registry invariants:
//!
//! * **Round trip** — v2 → pack → v3 → unpack → v2 is byte-identical
//!   for every rule language, on randomized bundles (seeded property
//!   test);
//! * **Corruption** — flipping *any single byte* of a v3 payload (or
//!   truncating it anywhere) yields a typed `AwError`, never a panic,
//!   and segment damage names the offending site key;
//! * **Residency** — the grace window reinstates an evicted wrapper's
//!   `Arc` (warmed template cache intact), and an eviction-under-load
//!   hammer sees no torn snapshot while the cap holds;
//! * **Equivalence** — a lazy service's responses are byte-identical
//!   to the fully-resident path for every language × thread count ×
//!   cache setting.

use autowrappers::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn training_site() -> Site {
    let page = |rows: &[(&str, &str)]| {
        let mut s = String::from("<table class='stores'>");
        for (n, a) in rows {
            s.push_str(&format!("<tr><td><b>{n}</b></td><td><u>{a}</u></td></tr>"));
        }
        s + "</table>"
    };
    Site::from_html(&[
        page(&[("ALPHA CO", "1 Elm"), ("BETA LLC", "2 Oak")]),
        page(&[("GAMMA INC", "3 Fir"), ("DELTA LTD", "4 Ash")]),
    ])
}

fn wrapper_for(language: WrapperLanguage) -> CompiledWrapper {
    let site = training_site();
    let mut seed = NodeSet::new();
    seed.extend(site.find_text("ALPHA CO"));
    seed.extend(site.find_text("DELTA LTD"));
    CompiledWrapper::from_rule(LearnedRule::learn(&site, language, &seed))
}

fn fresh_html(name: &str) -> String {
    format!("<table class='stores'><tr><td><b>{name}</b></td><td><u>9 Elm</u></td></tr></table>")
}

/// A bundle over the four languages under the given keys.
fn bundle_of(keys: &[&str]) -> WrapperBundle {
    let mut bundle = WrapperBundle::new();
    for (i, key) in keys.iter().enumerate() {
        bundle.insert(*key, wrapper_for(WrapperLanguage::ALL[i % 4]));
    }
    bundle
}

#[test]
fn pack_unpack_round_trip_is_byte_identical_on_random_bundles() {
    // Seeded property test: random key sets and language mixes, the
    // v2 → v3 → v2 round trip must reproduce the v2 JSON byte for byte
    // (and the v3 bytes must be deterministic).
    let mut rng = StdRng::seed_from_u64(0xB1D3);
    for round in 0..8 {
        let n_sites = rng.gen_range(0..=6usize);
        let mut bundle = WrapperBundle::new();
        for i in 0..n_sites {
            let language = WrapperLanguage::ALL[rng.gen_range(0..4usize)];
            let key = if rng.gen_bool(0.5) {
                format!("site-{i:03}")
            } else {
                format!("dealer {i} ünïcode/{language}")
            };
            bundle.insert(key, wrapper_for(language));
        }
        let v2 = bundle.to_json();
        let v3 = bundle.to_binary();
        let unpacked = WrapperBundle::from_binary(&v3).unwrap();
        assert_eq!(unpacked.to_json(), v2, "round {round}");
        assert_eq!(
            unpacked.to_binary(),
            v3,
            "round {round}: packing is deterministic"
        );
    }
}

#[test]
fn round_trip_preserves_extraction_for_all_four_languages() {
    let bundle = bundle_of(&["t", "u", "v", "w"]);
    let restored = WrapperBundle::from_binary(&bundle.to_binary()).unwrap();
    let page = parse(&fresh_html("OMEGA GROUP"));
    for language in WrapperLanguage::ALL {
        let key = bundle
            .iter()
            .find(|(_, w)| w.language() == language)
            .map(|(k, _)| k.to_string())
            .expect("all four languages present");
        assert_eq!(
            restored.get(&key).unwrap().extract(&page),
            bundle.get(&key).unwrap().extract(&page),
            "{language}"
        );
    }
}

#[test]
fn every_single_byte_flip_is_a_typed_error_never_a_panic() {
    // Full-coverage fuzz: the v3 layout checksums the index and every
    // segment and bounds-checks everything else, so a flip anywhere —
    // header, segments, index — must surface as Err from open or
    // load_all. A "successful" full load of damaged bytes would mean a
    // coverage hole.
    let bytes = bundle_of(&["alpha", "beta", "gamma"]).to_binary();
    for pos in 0..bytes.len() {
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= 0x01;
        let result = std::panic::catch_unwind(|| {
            BundleStore::from_bytes(corrupted).and_then(|store| store.load_all())
        });
        let outcome = result.unwrap_or_else(|_| panic!("byte {pos}: corruption panicked"));
        assert!(outcome.is_err(), "byte {pos}: flip went undetected");
    }
}

#[test]
fn truncation_anywhere_is_a_typed_error() {
    let bytes = bundle_of(&["alpha", "beta"]).to_binary();
    let total = bytes.len();
    for len in [0, 7, 8, 43, 44, total / 2, total - 1] {
        let result = std::panic::catch_unwind(|| {
            BundleStore::from_bytes(bytes[..len].to_vec()).and_then(|store| store.load_all())
        });
        let outcome = result.unwrap_or_else(|_| panic!("truncation to {len} panicked"));
        assert!(outcome.is_err(), "truncation to {len} went undetected");
    }
}

#[test]
fn segment_damage_names_the_offending_site_key() {
    let bundle = bundle_of(&["alpha", "beta", "gamma"]);
    let bytes = bundle.to_binary();
    // Find beta's segment by loading through a healthy store first.
    let healthy = BundleStore::from_bytes(bytes.clone()).unwrap();
    let beta_len = healthy
        .segments()
        .find(|(key, _)| *key == "beta")
        .map(|(_, len)| len)
        .unwrap();
    assert!(beta_len > 0);
    // Flip a byte inside beta's segment: alpha's segment starts at 44,
    // beta's right after it.
    let alpha_len = healthy.segments().next().unwrap().1 as usize;
    let mut corrupted = bytes;
    corrupted[44 + alpha_len + 2] ^= 0x40;
    // The index is intact, so the store still opens and the other
    // segments still load.
    let store = BundleStore::from_bytes(corrupted).unwrap();
    assert!(store.load("alpha").is_ok());
    assert!(store.load("gamma").is_ok());
    let err = store.load("beta").unwrap_err();
    assert_eq!(err.site(), Some("beta"), "{err}");
    assert!(err.to_string().contains("beta"), "{err}");
}

#[test]
fn grace_window_retains_warmed_template_caches_across_eviction() {
    let store = Arc::new(BundleStore::from_bytes(bundle_of(&["a", "b", "c"]).to_binary()).unwrap());
    let registry = Arc::new(WrapperRegistry::from_store(store, Some(2)));
    let service = ExtractionService::new(Arc::clone(&registry));
    // Warm site "a"'s template cache: first request bypasses, second
    // records a trace.
    for name in ["OMEGA", "SIGMA"] {
        service
            .handle(&ExtractRequest::single("a", fresh_html(name)))
            .unwrap();
    }
    let warmed = registry.get("a").unwrap();
    // Fault in "b" and "c": the cap (2) evicts "a" into the grace set.
    for site in ["b", "c"] {
        service
            .handle(&ExtractRequest::single(site, fresh_html("KAPPA")))
            .unwrap();
    }
    assert!(registry.get("a").is_none(), "a was evicted");
    // Re-request "a": the grace window must reinstate the same wrapper
    // (not re-deserialize a cold one) — proven by Arc identity and by
    // the template cache replaying on the very next request.
    let response = service
        .handle(&ExtractRequest::single("a", fresh_html("THETA")))
        .unwrap();
    assert_eq!(response.pages, vec![vec!["THETA".to_string()]]);
    let back = registry.get("a").unwrap();
    assert!(Arc::ptr_eq(&warmed, &back), "grace reinstated a cold copy");
    let (hits, _) = back.template_cache_stats().expect("cache on by default");
    assert!(hits >= 1, "the warmed cache must have replayed");
    let stats = registry.residency_stats();
    assert_eq!(stats.grace_hits, 1);
    assert_eq!(stats.faults, 3, "a,b,c faulted once each");
}

#[test]
fn eviction_under_load_never_serves_a_torn_snapshot() {
    // 6 sites behind a cap of 2: four hammer threads request all sites
    // round-robin, so every request races fault-ins and evictions.
    // Responses must equal the fully-resident oracle exactly, and the
    // cap must hold once the dust settles.
    let keys = ["s0", "s1", "s2", "s3", "s4", "s5"];
    let bundle = bundle_of(&keys);
    let page = fresh_html("OMEGA GROUP");
    // Oracle: each site's response from a fully-resident service.
    let resident = ExtractionService::new(Arc::new(WrapperRegistry::from_bundle(
        WrapperBundle::from_binary(&bundle.to_binary()).unwrap(),
    )));
    let expected: Vec<_> = keys
        .iter()
        .map(|site| {
            resident
                .handle(&ExtractRequest::single(*site, page.clone()))
                .unwrap()
        })
        .collect();

    let store = Arc::new(BundleStore::from_bytes(bundle.to_binary()).unwrap());
    let registry = Arc::new(WrapperRegistry::from_store(store, Some(2)));
    let service =
        Arc::new(ExtractionService::new(Arc::clone(&registry)).with_executor(Executor::new(4)));
    std::thread::scope(|scope| {
        for t in 0..4 {
            let service = Arc::clone(&service);
            let (page, expected) = (&page, &expected);
            scope.spawn(move || {
                for i in 0..50 {
                    let pick = (t * 17 + i * 5) % keys.len();
                    let got = service
                        .handle(&ExtractRequest::single(keys[pick], page.clone()))
                        .unwrap();
                    assert_eq!(got, expected[pick], "thread {t}, iter {i}");
                }
            });
        }
    });
    let stats = registry.residency_stats();
    assert!(stats.evictions > 0, "the cap must have been contended");
    assert!(
        stats.resident <= 2,
        "cap violated after the load: {stats:?}"
    );
    assert_eq!(registry.len(), stats.resident);
}

#[test]
fn lazy_responses_are_byte_identical_to_resident_for_every_configuration() {
    // The tentpole acceptance matrix: language × threads {1,2,8} ×
    // template-cache setting. The lazy service (cap 1, so every other
    // request crosses an eviction) must match the fully-resident
    // service response-for-response.
    let crawl = [
        fresh_html("OMEGA GROUP"),
        "<p>unrelated page</p>".to_string(),
        fresh_html("SIGMA BROS"),
        String::new(),
    ];
    for language in WrapperLanguage::ALL {
        let key = format!("site-{language}");
        let mut bundle = WrapperBundle::new();
        bundle.insert(key.clone(), wrapper_for(language));
        let bytes = bundle.to_binary();
        for cache in [true, false] {
            for threads in [1usize, 2, 8] {
                // Resident: load the same binary eagerly.
                let store = BundleStore::from_bytes(bytes.clone()).unwrap();
                let resident_registry = Arc::new(WrapperRegistry::new());
                resident_registry.insert(
                    key.clone(),
                    store
                        .load(&key)
                        .unwrap()
                        .unwrap()
                        .with_template_cache(cache),
                );
                let resident =
                    ExtractionService::new(resident_registry).with_executor(Executor::new(threads));
                // Lazy: fault in from the store on demand. The faulted
                // wrapper carries the artifact's default cache setting,
                // so align the resident one when cache is default-on;
                // with cache off, insert the off-cache wrapper into the
                // lazy registry up front (the store cannot know the
                // runtime setting — this pins that equivalence holds
                // whichever way the wrapper became resident).
                let lazy_registry = Arc::new(WrapperRegistry::from_store(
                    Arc::new(BundleStore::from_bytes(bytes.clone()).unwrap()),
                    Some(1),
                ));
                if !cache {
                    let store = BundleStore::from_bytes(bytes.clone()).unwrap();
                    lazy_registry.insert(
                        key.clone(),
                        store
                            .load(&key)
                            .unwrap()
                            .unwrap()
                            .with_template_cache(false),
                    );
                }
                let lazy =
                    ExtractionService::new(lazy_registry).with_executor(Executor::new(threads));
                // One multi-page request and the same crawl single-page.
                let multi = ExtractRequest {
                    site: key.clone(),
                    pages: crawl.to_vec(),
                };
                assert_eq!(
                    lazy.handle(&multi).unwrap(),
                    resident.handle(&multi).unwrap(),
                    "{language}, cache {cache}, threads {threads}"
                );
                for html in &crawl {
                    let single = ExtractRequest::single(key.clone(), html.clone());
                    assert_eq!(
                        lazy.handle(&single).unwrap(),
                        resident.handle(&single).unwrap(),
                        "{language}, cache {cache}, threads {threads}"
                    );
                }
            }
        }
    }
}

#[test]
fn artifact_reader_round_trips_every_generation_through_one_entry_point() {
    let bundle = bundle_of(&["a", "b"]);
    let dir = std::env::temp_dir().join(format!("aw-bundle-binary-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let v2_path = dir.join("bundle.json");
    let v3_path = dir.join("bundle.awb");
    std::fs::write(&v2_path, bundle.to_json()).unwrap();
    std::fs::write(&v3_path, bundle.to_binary()).unwrap();
    // v2 opens resident, v3 opens lazy; both converge to the same JSON.
    let v2 = ArtifactReader::open(&v2_path).unwrap();
    assert!(matches!(v2, LoadedArtifact::Resident(_)));
    let v3 = ArtifactReader::open(&v3_path).unwrap();
    assert!(matches!(v3, LoadedArtifact::Lazy(_)));
    assert_eq!(v3.site_keys(), v2.site_keys());
    assert_eq!(
        v3.into_bundle().unwrap().to_json(),
        v2.into_bundle().unwrap().to_json()
    );
    std::fs::remove_dir_all(&dir).ok();
}
