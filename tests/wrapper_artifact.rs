//! The portable-artifact deployment contract: a wrapper learned via the
//! [`Engine`], serialized with `CompiledWrapper::to_json` and
//! deserialized "in a fresh process" (nothing shared but the JSON bytes)
//! must produce **byte-identical extractions** to the in-process wrapper
//! — for all four rule languages.

use autowrappers::prelude::*;

/// A training site whose template exercises every language: a table grid
/// (TABLE), stable delimiters (LR/HLRT), and attribute-tagged structure
/// (XPATH).
fn training_site() -> Site {
    let page = |rows: &[(&str, &str)]| {
        let mut s =
            String::from("<div class='nav'>menu</div><h1>Stores</h1><table class='stores'>");
        for (n, a) in rows {
            s.push_str(&format!("<tr><td><b>{n}</b></td><td>{a}</td></tr>"));
        }
        s + "</table><div class='footer'>contact us</div>"
    };
    Site::from_html(&[
        page(&[("ALPHA CO", "1 Elm"), ("BETA LLC", "2 Oak")]),
        page(&[("GAMMA INC", "3 Fir"), ("DELTA LTD", "4 Ash")]),
        page(&[("EPSILON SA", "5 Ivy")]),
    ])
}

fn model() -> RankingModel {
    RankingModel::new(
        AnnotatorModel::new(0.95, 0.5),
        PublicationModel::learn(&[
            ListFeatures {
                schema_size: 2.0,
                alignment: 0.0,
            },
            ListFeatures {
                schema_size: 2.0,
                alignment: 1.0,
            },
        ]),
    )
}

fn labels(site: &Site) -> NodeSet {
    let mut l = NodeSet::new();
    l.extend(site.find_text("ALPHA CO"));
    l.extend(site.find_text("DELTA LTD"));
    l
}

/// Fresh pages of the same script, plus junk the wrapper must ignore.
fn crawl() -> Vec<Document> {
    [
        "<div class='nav'>menu</div><h1>Stores</h1><table class='stores'>\
         <tr><td><b>OMEGA GROUP</b></td><td>9 Elm</td></tr>\
         <tr><td><b>SIGMA BROS</b></td><td>7 Oak</td></tr></table>\
         <div class='footer'>contact us</div>",
        "<div class='nav'>menu</div><h1>Stores</h1><table class='stores'>\
         <tr><td><b>KAPPA SONS</b></td><td>4 Fir</td></tr></table>\
         <div class='footer'>contact us</div>",
        "<p>just a paragraph</p>",
    ]
    .iter()
    .map(|html| parse(html))
    .collect()
}

#[test]
fn engine_wrapper_survives_serialization_for_every_language() {
    let site = training_site();
    let seed = labels(&site);
    let pages = crawl();
    for language in WrapperLanguage::ALL {
        let engine = Engine::builder(model()).language(language).build();
        let ranked = engine.learn(&site, &seed).unwrap();
        let best = ranked
            .best()
            .unwrap_or_else(|| panic!("{language}: no wrapper"));
        let wrapper = best.compile();
        assert_eq!(wrapper.language(), language);

        // "Ship" the artifact: only the JSON string crosses the boundary.
        let payload = wrapper.to_json();
        let shipped =
            CompiledWrapper::from_json(&payload).unwrap_or_else(|e| panic!("{language}: {e}"));

        // Byte-identical extraction on every crawled page, single and
        // batched, plus on the training pages themselves.
        for doc in pages.iter().chain(site.pages()) {
            assert_eq!(
                shipped.extract(doc),
                wrapper.extract(doc),
                "{language}: extraction diverged after round trip"
            );
            assert_eq!(
                shipped.extract_values(doc),
                wrapper.extract_values(doc),
                "{language}"
            );
        }
        assert_eq!(
            shipped.extract_pages(&pages),
            pages.iter().map(|d| wrapper.extract(d)).collect::<Vec<_>>(),
            "{language}: batched extraction diverged"
        );
        // Re-serialization is stable (fixpoint after one round trip).
        assert_eq!(shipped.to_json(), payload, "{language}");
    }
}

#[test]
fn xpath_artifact_extracts_unseen_records() {
    let site = training_site();
    let engine = Engine::builder(model()).build();
    let ranked = engine.learn(&site, &labels(&site)).unwrap();
    let wrapper = ranked.best().unwrap().compile();
    let shipped = CompiledWrapper::from_json(&wrapper.to_json()).unwrap();
    let pages = crawl();
    assert_eq!(
        shipped.extract_values(&pages[0]),
        vec!["OMEGA GROUP", "SIGMA BROS"]
    );
    assert_eq!(shipped.extract_values(&pages[1]), vec!["KAPPA SONS"]);
    assert!(shipped.extract(&pages[2]).is_empty());
}

#[test]
fn artifact_rejects_wrong_version_and_garbage() {
    let site = training_site();
    let engine = Engine::builder(model()).build();
    let wrapper = engine
        .learn(&site, &labels(&site))
        .unwrap()
        .best()
        .unwrap()
        .compile();
    let payload = wrapper.to_json();

    let bumped = payload.replace("\"version\": 1.0", "\"version\": 99.0");
    assert!(matches!(
        CompiledWrapper::from_json(&bumped),
        Err(AwError::UnsupportedVersion {
            found: 99,
            supported: 1
        })
    ));
    for bad in ["", "{]", "{\"format\": \"aw-wrapper\"}", "[1, 2, 3]"] {
        assert!(
            matches!(
                CompiledWrapper::from_json(bad),
                Err(AwError::MalformedArtifact(_))
            ),
            "accepted {bad:?}"
        );
    }
    assert!(matches!(
        CompiledWrapper::from_json(&payload.replace("XPATH", "PROLOG")),
        Err(AwError::UnknownLanguage(_))
    ));
}

#[test]
fn deprecated_facade_agrees_with_engine_everywhere() {
    #![allow(deprecated)]
    let site = training_site();
    let seed = labels(&site);
    let m = model();
    for language in WrapperLanguage::ALL {
        let engine = Engine::builder(m.clone()).language(language).build();
        let via_engine = engine.learn(&site, &seed).unwrap();
        let via_facade = aw_core::learn(&site, language, &seed, &m, &NtwConfig::default());
        assert_eq!(via_facade.ranked.len(), via_engine.len(), "{language}");
        for (a, b) in via_facade.ranked.iter().zip(via_engine.iter()) {
            assert_eq!(a.extraction, b.extraction, "{language}");
            assert_eq!(a.rule, b.rule, "{language}");
        }
        let naive_facade = aw_core::naive_wrapper(&site, language, &seed);
        let naive_engine = engine.naive(&site, &seed).unwrap();
        assert_eq!(
            naive_facade.extraction, naive_engine.extraction,
            "{language}"
        );
    }
}

#[test]
fn staged_pipeline_with_annotator_end_to_end() {
    let site = training_site();
    let engine = Engine::builder(model())
        .annotator(DictionaryAnnotator::new(
            ["ALPHA CO", "DELTA LTD", "1 Elm"],
            MatchMode::Exact,
        ))
        .threads(2)
        .build();
    let found = engine.annotate(&site).unwrap();
    assert_eq!(found.len(), 3); // 2 names + 1 street false positive
    let space = engine.enumerate(&site, &found).unwrap();
    assert!(space.len() >= 2);
    let ranked = engine.rank(space).unwrap();
    let names: Vec<&str> = ranked
        .best()
        .unwrap()
        .extraction
        .iter()
        .map(|&n| site.text_of(n).unwrap())
        .collect();
    assert!(names.contains(&"BETA LLC"), "{names:?}");
    assert!(!names.contains(&"contact us"), "{names:?}");
}
