//! End-to-end self-healing: site churn → health degradation → shadow
//! relearn → atomic hot swap → recovery.
//!
//! The loop under test crosses three layers that the unit tests only
//! cover in isolation:
//!
//! * `aw_sitegen::TemplateEvolution` scripts the site's churn — a
//!   benign epoch the deployed wrapper must *survive* and a breaking
//!   epoch that must defeat it;
//! * `ExtractionService` health accounting must notice the break from
//!   response shape alone (no gold labels at serving time);
//! * `RelearnController` must relearn from the retained request pages,
//!   win the old-vs-new differential, and swap without ever serving a
//!   torn response.
//!
//! Everything is asserted deterministic across executor thread counts
//! {1, 2, 8}: same journal, same rules, same values.

use autowrappers::prelude::*;
use aw_sitegen::{epoch_html, EvolutionDataset, TemplateEvolution};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn publication_model() -> PublicationModel {
    PublicationModel::learn(&[
        ListFeatures {
            schema_size: 3.0,
            alignment: 0.0,
        },
        ListFeatures {
            schema_size: 4.0,
            alignment: 0.0,
        },
        ListFeatures {
            schema_size: 5.0,
            alignment: 1.0,
        },
    ])
}

fn engine_for(dataset: &EvolutionDataset, threads: usize) -> Engine {
    Engine::builder(RankingModel::new(
        AnnotatorModel::new(0.9, 0.3),
        publication_model(),
    ))
    .language(WrapperLanguage::XPath)
    .annotator(DictionaryAnnotator::new(
        dataset.dictionary.iter(),
        MatchMode::Contains,
    ))
    .threads(threads)
    .build()
}

/// Learns the epoch-0 wrapper the way a deployment would.
fn deploy_epoch0(engine: &Engine, dataset: &EvolutionDataset) -> CompiledWrapper {
    let site = &dataset.epochs[0].site.site;
    let labels = engine.annotate(site).expect("dictionary hits epoch 0");
    engine
        .learn(site, &labels)
        .expect("epoch 0 learns")
        .best()
        .expect("nonempty wrapper space")
        .compile()
}

/// Tight thresholds so a 4-page epoch is enough traffic to flip health.
fn thresholds() -> HealthThresholds {
    HealthThresholds {
        window: 8,
        min_window: 4,
        baseline_pages: 4,
        retain_pages: 16,
        ..HealthThresholds::default()
    }
}

/// What one full churn episode produced — compared across thread counts.
#[derive(Debug, PartialEq)]
struct EpisodeTranscript {
    deployed_rule: String,
    benign_values: Vec<Vec<String>>,
    degraded_after_benign: bool,
    degraded_after_breaking: bool,
    journal: Vec<String>,
    healed_rule: String,
    healed_values: Vec<Vec<String>>,
    generations: (u64, u64),
}

fn run_episode(threads: usize) -> EpisodeTranscript {
    let dataset = TemplateEvolution::small(7).run();
    assert!(dataset.epochs[1].survivable && !dataset.epochs[2].survivable);

    let engine = engine_for(&dataset, threads);
    let deployed = deploy_epoch0(&engine, &dataset);
    let deployed_rule = deployed.rule().to_string();

    let registry = Arc::new(WrapperRegistry::new());
    registry.insert("churn", deployed);
    let generation_before = registry.generation();
    let service = ExtractionService::new(Arc::clone(&registry))
        .with_executor(Executor::new(threads))
        .with_thresholds(thresholds());
    let controller = Arc::new(RelearnController::new(&service, engine));
    let service = service.with_relearn(Arc::clone(&controller));

    let drive = |pages: &[String]| -> Vec<Vec<String>> {
        pages
            .iter()
            .map(|html| {
                let response = service
                    .handle(&ExtractRequest::single("churn", html.clone()))
                    .expect("site stays registered");
                assert_eq!(response.errors, vec![None], "generated pages parse");
                response.pages.into_iter().next().unwrap()
            })
            .collect()
    };

    // Epoch 0: the wrapper serves its own training template — healthy,
    // and the shape baseline locks in.
    let epoch0 = epoch_html(&dataset.epochs[0]);
    let epoch0_values = drive(&epoch0);
    assert!(
        epoch0_values.iter().all(|v| !v.is_empty()),
        "epoch 0 must extract: {epoch0_values:?}"
    );
    assert!(!service.site_health("churn").unwrap().degraded);

    // Epoch 1 (benign churn): the wrapper must survive — extraction
    // stays non-empty and health stays green.
    let benign_values = drive(&epoch_html(&dataset.epochs[1]));
    assert!(
        benign_values.iter().all(|v| !v.is_empty()),
        "benign churn must not defeat the wrapper: {benign_values:?}"
    );
    let degraded_after_benign = service.site_health("churn").unwrap().degraded;
    assert!(!degraded_after_benign, "benign churn must not degrade");
    assert_eq!(controller.queue_len(), 0);

    // Epoch 2 (breaking churn): extraction goes empty, the window
    // crosses the empty-rate threshold, the site lands on the relearn
    // queue.
    let breaking = epoch_html(&dataset.epochs[2]);
    let mut breaking_values = drive(&breaking);
    breaking_values.extend(drive(&breaking));
    assert!(
        breaking_values.iter().all(|v| v.is_empty()),
        "the breaking epoch must defeat the epoch-0 wrapper: {breaking_values:?}"
    );
    let degraded_after_breaking = service.site_health("churn").unwrap().degraded;
    assert!(degraded_after_breaking, "breaking churn must degrade");
    assert_eq!(
        controller.queue_len(),
        1,
        "degradation enqueues one relearn"
    );

    // The shadow relearn: retained drifted pages → new wrapper →
    // differential win → swap.
    let outcome = controller.run_pending();
    assert_eq!((outcome.attempted, outcome.swapped), (1, 1), "{outcome:?}");
    let generation_after = registry.generation();
    assert!(
        generation_after > generation_before,
        "swap bumps generation"
    );

    // Post-swap: fresh breaking-epoch traffic extracts again, and the
    // values are exactly the epoch's (hidden) gold record names.
    let healed_values = drive(&breaking);
    let gold: Vec<Vec<String>> = {
        let generated = &dataset.epochs[2].site;
        (0..generated.site.page_count())
            .map(|p| {
                generated
                    .gold()
                    .iter()
                    .filter(|n| n.page as usize == p)
                    .filter_map(|n| {
                        let (doc, id) = generated.site.resolve(*n);
                        doc.text(id).map(str::to_string)
                    })
                    .collect()
            })
            .collect()
    };
    assert_eq!(healed_values, gold, "healed wrapper recovers the gold");
    let healed_rule = registry.get("churn").unwrap().rule().to_string();
    assert_ne!(healed_rule, deployed_rule, "the rule actually changed");

    // Health recovers once the fresh window refills green.
    assert!(!service.site_health("churn").unwrap().degraded);
    let journal: Vec<String> = service
        .health()
        .journal()
        .iter()
        .map(ToString::to_string)
        .collect();
    assert!(
        journal.iter().any(|e| e.contains("degraded")),
        "{journal:?}"
    );
    assert!(
        journal.iter().any(|e| e.contains("relearn started")),
        "{journal:?}"
    );
    assert!(
        journal.iter().any(|e| e.contains("relearn swapped in")),
        "{journal:?}"
    );
    assert!(
        journal.iter().any(|e| e.contains("recovered")),
        "{journal:?}"
    );

    EpisodeTranscript {
        deployed_rule,
        benign_values,
        degraded_after_benign,
        degraded_after_breaking,
        journal,
        healed_rule,
        healed_values,
        generations: (generation_before, generation_after),
    }
}

#[test]
fn churn_degrade_relearn_swap_recover_is_deterministic_across_thread_counts() {
    let baseline = run_episode(1);
    for threads in [2, 8] {
        assert_eq!(run_episode(threads), baseline, "threads {threads}");
    }
}

#[test]
fn rollback_restores_the_displaced_wrapper() {
    let dataset = TemplateEvolution::small(7).run();
    let engine = engine_for(&dataset, 1);
    let deployed = deploy_epoch0(&engine, &dataset);
    let deployed_rule = deployed.rule().to_string();
    let registry = Arc::new(WrapperRegistry::new());
    registry.insert("churn", deployed);
    let service = ExtractionService::new(Arc::clone(&registry)).with_thresholds(thresholds());
    let controller = Arc::new(RelearnController::new(&service, engine));
    let service = service.with_relearn(Arc::clone(&controller));

    for epoch in [0, 1] {
        for html in epoch_html(&dataset.epochs[epoch]) {
            service
                .handle(&ExtractRequest::single("churn", html))
                .unwrap();
        }
    }
    let breaking = epoch_html(&dataset.epochs[2]);
    for _ in 0..2 {
        for html in &breaking {
            service
                .handle(&ExtractRequest::single("churn", html.clone()))
                .unwrap();
        }
    }
    assert_eq!(controller.run_pending().swapped, 1);
    assert_ne!(
        registry.get("churn").unwrap().rule().to_string(),
        deployed_rule
    );

    // Operator veto: rollback re-installs the displaced wrapper through
    // its retained Arc (CompiledWrapper is not Clone), bumping the
    // generation again.
    let generation = controller.rollback("churn").expect("a swap to undo");
    assert_eq!(generation, registry.generation());
    assert_eq!(
        registry.get("churn").unwrap().rule().to_string(),
        deployed_rule
    );
    assert!(
        controller.rollback("churn").is_none(),
        "nothing left to undo"
    );
    let journal = service.health().journal();
    assert!(
        matches!(journal.last(), Some(HealthEvent::RolledBack { site, .. }) if site == "churn"),
        "{journal:?}"
    );
}

#[test]
fn responses_are_never_torn_while_the_relearn_swaps() {
    // Hammer the degraded site from four threads while run_pending()
    // swaps the wrapper underneath them: every response must pair one
    // wrapper's rule with that same wrapper's values — the old one
    // (empty on drifted pages) until the atomic swap, the new one
    // (extracting) after.
    let dataset = TemplateEvolution::small(7).run();
    let engine = engine_for(&dataset, 2);
    let deployed = deploy_epoch0(&engine, &dataset);
    let old_rule = deployed.rule().to_string();
    let registry = Arc::new(WrapperRegistry::new());
    registry.insert("churn", deployed);
    let service = Arc::new(
        ExtractionService::new(Arc::clone(&registry))
            .with_executor(Executor::new(2))
            .with_thresholds(thresholds()),
    );
    let controller = Arc::new(RelearnController::new(&service, engine));

    // Degrade by hand-feeding the breaking epoch, then enqueue.
    let breaking = epoch_html(&dataset.epochs[2]);
    for _ in 0..2 {
        for html in &breaking {
            service
                .handle(&ExtractRequest::single("churn", html.clone()))
                .unwrap();
        }
    }
    assert!(controller.enqueue("churn"));

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let mut checkers = Vec::new();
        for _ in 0..4 {
            let service = Arc::clone(&service);
            let (stop, old_rule, breaking) = (&stop, &old_rule, &breaking);
            checkers.push(scope.spawn(move || {
                let mut served = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let response = service
                        .handle(&ExtractRequest::single("churn", breaking[0].clone()))
                        .expect("site stays registered");
                    let empty = response.pages[0].is_empty();
                    if &response.rule == old_rule {
                        assert!(empty, "old rule must pair with old (empty) extraction");
                    } else {
                        assert!(!empty, "new rule must pair with new extraction");
                    }
                    served += 1;
                }
                served
            }));
        }
        assert_eq!(controller.run_pending().swapped, 1);
        // Let the hammers observe the post-swap world before stopping.
        for _ in 0..16 {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        let served: u64 = checkers.into_iter().map(|c| c.join().unwrap()).sum();
        assert!(served > 0);
    });
    assert_ne!(registry.get("churn").unwrap().rule().to_string(), old_rule);
}
