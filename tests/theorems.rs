//! Property-based verification of the paper's formal results:
//!
//! * Definition 1 (well-behavedness) holds for TABLE, XPATH and LR on
//!   randomly generated websites;
//! * Theorem 1: `BottomUp` is sound and complete (≡ `Naive`);
//! * Theorem 2: `BottomUp` makes ≤ `k·|L|` inductor calls;
//! * Theorem 3: `TopDown` enumerates the same space with ≥ `k` calls
//!   (exactly `k` when distinct closed sets induce distinct wrappers).

use aw_annotate::{DictionaryAnnotator, MatchMode};
use aw_enum::{bottom_up, naive, top_down};
use aw_induct::{
    check_well_behaved, Cell, ItemSet, LrInductor, NodeSet, TableInductor, XPathInductor,
};
use aw_sitegen::{generate_dealers, DealersConfig};
use proptest::prelude::*;

/// A small noisy label set from a generated site: annotator hits capped
/// to `cap`, deterministically subsampled.
fn noisy_labels(seed: u64, cap: usize) -> (aw_sitegen::DealersDataset, NodeSet) {
    let ds = generate_dealers(&DealersConfig {
        sites: 1,
        pages_per_site: 2,
        records_per_page: (2, 4),
        seed,
        ..DealersConfig::default()
    });
    let annot = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
    let all = annot.annotate(&ds.sites[0].site);
    let items: Vec<_> = all.into_iter().collect();
    let labels: NodeSet = if items.len() <= cap {
        items.into_iter().collect()
    } else {
        let stride = items.len() as f64 / cap as f64;
        (0..cap)
            .map(|i| items[(i as f64 * stride) as usize])
            .collect()
    };
    (ds, labels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn table_theorems(rows in 2u16..6, cols in 2u16..6, mask in 1u32..0x7f) {
        let inductor = TableInductor::new(rows, cols);
        // Up to 7 labels scattered over the grid.
        let labels: ItemSet<Cell> = (0..7)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| Cell::new(1 + (i * 3) % rows, 1 + (i * 5) % cols))
            .collect();
        prop_assume!(!labels.is_empty());

        let report = check_well_behaved(&inductor, &labels);
        prop_assert!(report.is_clean(), "{report:?}");

        let n = naive(&inductor, &labels);
        let b = bottom_up(&inductor, &labels);
        let t = top_down(&inductor, &labels);
        prop_assert_eq!(n.extraction_set(), b.extraction_set());
        prop_assert_eq!(n.extraction_set(), t.extraction_set());
        let k = n.len();
        prop_assert!(b.inductor_calls <= k * labels.len());
        prop_assert!(t.inductor_calls >= k);
    }

    #[test]
    fn xpath_theorems_on_generated_sites(seed in 0u64..500) {
        let (ds, labels) = noisy_labels(seed, 7);
        prop_assume!(labels.len() >= 2);
        let inductor = XPathInductor::new(&ds.sites[0].site);

        let report = check_well_behaved(&inductor, &labels);
        prop_assert!(report.is_clean(), "seed {seed}: {report:?}");

        let n = naive(&inductor, &labels);
        let b = bottom_up(&inductor, &labels);
        let t = top_down(&inductor, &labels);
        prop_assert_eq!(n.extraction_set(), b.extraction_set());
        prop_assert_eq!(n.extraction_set(), t.extraction_set());
        prop_assert!(b.inductor_calls <= n.len() * labels.len());
    }

    #[test]
    fn lr_theorems_on_generated_sites(seed in 1000u64..1500) {
        let (ds, labels) = noisy_labels(seed, 6);
        prop_assume!(labels.len() >= 2);
        let inductor = LrInductor::new(&ds.sites[0].site);

        // Theorem 4 proves LR well-behaved over *character spans*. Our LR
        // maps extracted spans to the text nodes they contain; adding a
        // label shortens the learned delimiters, which can shift span
        // boundaries enough that closure and even monotonicity fail at the
        // node level. Fidelity survives: every label is delimited by its
        // own (common-context) delimiters. This is a deliberate,
        // documented deviation; see DESIGN.md — BottomUp carries defensive
        // guards for exactly this case.
        let report = check_well_behaved(&inductor, &labels);
        prop_assert_eq!(report.fidelity_violations, 0, "seed {}: {:?}", seed, report);

        // BottomUp stays sound (every wrapper it returns is φ of some
        // subset) and in practice complete; the defensive guards in the
        // implementation make it robust to the closure caveat.
        let n = naive(&inductor, &labels);
        let b = bottom_up(&inductor, &labels);
        prop_assert!(
            b.extraction_set().is_subset(&n.extraction_set()),
            "seed {seed}: BottomUp produced a non-wrapper"
        );
        prop_assert!(b.inductor_calls <= (n.len() + 1) * labels.len());

        // TopDown must at least find the wrapper BottomUp ranks reachable
        // from label-context subdivisions.
        let t = top_down(&inductor, &labels);
        prop_assert!(
            t.extraction_set().is_subset(&n.extraction_set()),
            "seed {seed}: TopDown produced a non-wrapper"
        );
        prop_assert!(!t.is_empty());
    }
}
