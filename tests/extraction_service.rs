//! Differential + concurrency tests of the serving stack
//! (`WrapperBundle` → `WrapperRegistry` → `ExtractionService`).
//!
//! The serving invariants:
//!
//! * service responses are **byte-identical** to direct
//!   [`CompiledWrapper::extract_pages`] for every language, thread
//!   count, and template-cache setting;
//! * v1 single-wrapper artifacts load through the v2 bundle reader with
//!   byte-identical extraction;
//! * concurrent `handle` calls equal sequential evaluation;
//! * hot-swapping a bundle under load never serves a torn registry;
//! * structurally identical pages arriving in separate requests hit the
//!   per-site template cache (replay counter asserted).

use autowrappers::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn training_site() -> Site {
    let page = |rows: &[(&str, &str)]| {
        let mut s = String::from("<table class='stores'>");
        for (n, a) in rows {
            s.push_str(&format!("<tr><td><b>{n}</b></td><td><u>{a}</u></td></tr>"));
        }
        s + "</table>"
    };
    Site::from_html(&[
        page(&[("ALPHA CO", "1 Elm"), ("BETA LLC", "2 Oak")]),
        page(&[("GAMMA INC", "3 Fir"), ("DELTA LTD", "4 Ash")]),
    ])
}

fn name_seed(site: &Site) -> NodeSet {
    let mut l = NodeSet::new();
    l.extend(site.find_text("ALPHA CO"));
    l.extend(site.find_text("DELTA LTD"));
    l
}

fn addr_seed(site: &Site) -> NodeSet {
    let mut l = NodeSet::new();
    l.extend(site.find_text("1 Elm"));
    l.extend(site.find_text("4 Ash"));
    l
}

fn wrapper_for(language: WrapperLanguage) -> CompiledWrapper {
    let site = training_site();
    let seed = name_seed(&site);
    CompiledWrapper::from_rule(LearnedRule::learn(&site, language, &seed))
}

/// A small "crawl" of the training script: template-identical pages
/// (same record count) plus junk.
fn crawl_html() -> Vec<String> {
    let fresh = |a: &str, b: &str| {
        format!(
            "<table class='stores'><tr><td><b>{a}</b></td><td><u>9 Elm</u></td></tr>\
             <tr><td><b>{b}</b></td><td><u>7 Oak</u></td></tr></table>"
        )
    };
    vec![
        fresh("OMEGA GROUP", "SIGMA BROS"),
        fresh("KAPPA SONS", "THETA WORKS"),
        "<p>unrelated page</p>".to_string(),
        fresh("IOTA HOME", "ZETA DECOR"),
        String::new(),
    ]
}

/// What direct (service-free) evaluation of `wrapper` extracts from the
/// crawl — the oracle every service configuration must match.
fn direct_values(wrapper: &CompiledWrapper, html: &[String]) -> Vec<Vec<String>> {
    let docs: Vec<Document> = html.iter().map(|h| parse(h)).collect();
    wrapper
        .extract_pages(&docs)
        .into_iter()
        .zip(&docs)
        .map(|(ids, doc)| {
            ids.into_iter()
                .filter_map(|id| doc.text(id).map(str::to_string))
                .collect()
        })
        .collect()
}

#[test]
fn service_matches_direct_extraction_for_every_language_thread_count_and_cache_setting() {
    let crawl = crawl_html();
    for language in WrapperLanguage::ALL {
        let expected = direct_values(&wrapper_for(language), &crawl);
        for cache in [true, false] {
            for threads in [1, 2, 8] {
                let registry = Arc::new(WrapperRegistry::new());
                registry.insert("s", wrapper_for(language).with_template_cache(cache));
                let service = ExtractionService::new(Arc::clone(&registry))
                    .with_executor(Executor::new(threads));
                // One multi-page request…
                let multi = service
                    .handle(&ExtractRequest {
                        site: "s".into(),
                        pages: crawl.clone(),
                    })
                    .unwrap();
                assert_eq!(
                    multi.pages, expected,
                    "{language}, cache {cache}, threads {threads}"
                );
                // …and the same crawl as single-page requests.
                for (html, want) in crawl.iter().zip(&expected) {
                    let single = service
                        .handle(&ExtractRequest::single("s", html.clone()))
                        .unwrap();
                    assert_eq!(
                        &single.pages[0], want,
                        "{language}, cache {cache}, threads {threads}"
                    );
                }
            }
        }
    }
}

#[test]
fn v1_artifacts_load_through_the_bundle_reader_byte_identically() {
    let crawl = crawl_html();
    for language in WrapperLanguage::ALL {
        let wrapper = wrapper_for(language);
        let expected = direct_values(&wrapper, &crawl);
        // v1 payload → v2 reader → registry → service.
        let bundle = WrapperBundle::from_json(&wrapper.to_json()).unwrap();
        assert_eq!(
            bundle.site_keys().collect::<Vec<_>>(),
            [aw_core::V1_SITE_KEY]
        );
        let registry = Arc::new(WrapperRegistry::from_bundle(bundle));
        let service = ExtractionService::new(registry);
        let response = service
            .handle(&ExtractRequest {
                site: aw_core::V1_SITE_KEY.into(),
                pages: crawl.clone(),
            })
            .unwrap();
        assert_eq!(response.pages, expected, "{language}");
        assert_eq!(response.language, language);
    }
}

#[test]
fn bundle_round_trip_preserves_extraction_per_language() {
    let crawl = crawl_html();
    let mut bundle = WrapperBundle::new();
    for language in WrapperLanguage::ALL {
        bundle.insert(format!("site-{language}"), wrapper_for(language));
    }
    let restored = WrapperBundle::from_json(&bundle.to_json()).unwrap();
    for language in WrapperLanguage::ALL {
        let key = format!("site-{language}");
        assert_eq!(
            direct_values(restored.get(&key).unwrap(), &crawl),
            direct_values(bundle.get(&key).unwrap(), &crawl),
            "{language}"
        );
    }
}

#[test]
fn concurrent_handles_from_8_threads_match_sequential_evaluation() {
    let crawl = crawl_html();
    for cache in [true, false] {
        let registry = Arc::new(WrapperRegistry::new());
        registry.insert(
            "s",
            wrapper_for(WrapperLanguage::XPath).with_template_cache(cache),
        );
        let service =
            Arc::new(ExtractionService::new(Arc::clone(&registry)).with_executor(Executor::new(4)));
        let requests: Vec<ExtractRequest> = crawl
            .iter()
            .map(|html| ExtractRequest::single("s", html.clone()))
            .collect();
        let sequential: Vec<Vec<Vec<String>>> = requests
            .iter()
            .map(|r| service.handle(r).unwrap().pages)
            .collect();
        let all: Vec<Vec<Vec<Vec<String>>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let service = Arc::clone(&service);
                    let requests = &requests;
                    scope.spawn(move || {
                        // Several passes per thread, to interleave with
                        // the template cache in every state.
                        let mut last = Vec::new();
                        for _ in 0..5 {
                            last = requests
                                .iter()
                                .map(|r| service.handle(r).unwrap().pages)
                                .collect();
                        }
                        last
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (t, got) in all.iter().enumerate() {
            assert_eq!(got, &sequential, "thread {t}, cache {cache}");
        }
    }
}

#[test]
fn repeated_template_requests_hit_the_cache_across_requests() {
    let registry = Arc::new(WrapperRegistry::new());
    registry.insert("s", wrapper_for(WrapperLanguage::XPath));
    let service = ExtractionService::new(Arc::clone(&registry));
    // Structurally identical single-page requests (text differs only).
    let crawl = crawl_html();
    let template_pages: Vec<&String> = crawl.iter().filter(|h| h.contains("stores")).collect();
    assert!(template_pages.len() >= 3);
    for html in &template_pages {
        service
            .handle(&ExtractRequest::single("s", (*html).clone()))
            .unwrap();
    }
    let (hits, misses) = registry
        .get("s")
        .unwrap()
        .template_cache_stats()
        .expect("cache on by default");
    assert_eq!(
        (hits, misses),
        (template_pages.len() as u64 - 2, 2),
        "first request bypasses, second records, the rest replay"
    );
}

#[test]
fn concurrent_removes_under_load_leave_survivors_serving() {
    // Half the sites are removed while hammer threads request all of
    // them: a removed site must flip cleanly to UnknownSite (never a
    // torn snapshot or a poisoned lock), survivors must keep serving.
    let registry = Arc::new(WrapperRegistry::new());
    let sites: Vec<String> = (0..8).map(|i| format!("site-{i}")).collect();
    for site in &sites {
        registry.insert(site.clone(), wrapper_for(WrapperLanguage::XPath));
    }
    let service = Arc::new(ExtractionService::new(Arc::clone(&registry)));
    let page = "<table class='stores'><tr><td><b>OMEGA</b></td><td><u>9 Elm</u></td></tr></table>";
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let mut checkers = Vec::new();
        for _ in 0..4 {
            let service = Arc::clone(&service);
            let (sites, stop) = (&sites, &stop);
            checkers.push(scope.spawn(move || {
                let mut served = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for site in sites {
                        match service.handle(&ExtractRequest::single(site.clone(), page)) {
                            Ok(response) => {
                                assert_eq!(response.pages, vec![vec!["OMEGA".to_string()]]);
                                served += 1;
                            }
                            Err(AwError::UnknownSite(key)) => assert_eq!(&key, site),
                            Err(other) => panic!("unexpected error: {other}"),
                        }
                    }
                }
                served
            }));
        }
        for (i, site) in sites.iter().enumerate() {
            if i % 2 == 1 {
                assert!(registry.remove(site), "first remove wins");
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Relaxed);
        let served: u64 = checkers.into_iter().map(|c| c.join().unwrap()).sum();
        assert!(served > 0);
    });

    let survivors: Vec<String> = (0..8).step_by(2).map(|i| format!("site-{i}")).collect();
    assert_eq!(registry.site_keys(), survivors);
    for site in &survivors {
        assert!(service
            .handle(&ExtractRequest::single(site.clone(), page))
            .is_ok());
    }
}

#[test]
fn empty_bundle_loads_and_serves_unknown_site_for_everything() {
    // A zero-site bundle is a legitimate deployment (e.g. draining a
    // shard): it must round-trip, load, bump the generation, and turn
    // every request into a clean UnknownSite.
    let empty = WrapperBundle::from_json(&WrapperBundle::new().to_json()).unwrap();
    assert_eq!(empty.len(), 0);
    let registry = Arc::new(WrapperRegistry::new());
    registry.insert("s", wrapper_for(WrapperLanguage::XPath));
    let generation = registry.load_bundle(empty);
    assert_eq!(generation, 2, "empty loads still swap generations");
    assert!(registry.is_empty());
    let service = ExtractionService::new(Arc::clone(&registry));
    assert_eq!(
        service
            .handle(&ExtractRequest::single("s", "<p>x</p>".to_string()))
            .unwrap_err(),
        AwError::UnknownSite("s".into())
    );
    // From-bundle construction of an empty registry works too.
    let fresh = WrapperRegistry::from_bundle(WrapperBundle::new());
    assert!(fresh.is_empty());
    assert_eq!(fresh.generation(), 1);
}

#[test]
fn hot_swap_under_load_never_serves_a_torn_registry() {
    let site = training_site();
    // Two deployments for the same site key: A extracts names (<b>), B
    // extracts addresses (<u>). A torn state would pair A's rule with
    // B's values or vice versa.
    let wrapper_a = || {
        CompiledWrapper::from_rule(LearnedRule::learn(
            &site,
            WrapperLanguage::XPath,
            &name_seed(&site),
        ))
    };
    let wrapper_b = || {
        CompiledWrapper::from_rule(LearnedRule::learn(
            &site,
            WrapperLanguage::XPath,
            &addr_seed(&site),
        ))
    };
    let page = "<table class='stores'><tr><td><b>OMEGA GROUP</b></td><td><u>9 Elm</u></td></tr>\
                <tr><td><b>SIGMA BROS</b></td><td><u>7 Oak</u></td></tr></table>";
    let expected_a = (
        wrapper_a().rule().to_string(),
        vec!["OMEGA GROUP".to_string(), "SIGMA BROS".to_string()],
    );
    let expected_b = (
        wrapper_b().rule().to_string(),
        vec!["9 Elm".to_string(), "7 Oak".to_string()],
    );
    assert_ne!(
        expected_a, expected_b,
        "deployments must be distinguishable"
    );

    let registry = Arc::new(WrapperRegistry::new());
    registry.insert("s", wrapper_a());
    let service = Arc::new(ExtractionService::new(Arc::clone(&registry)));
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // Hammer threads: every response must be exactly one deployment.
        let mut checkers = Vec::new();
        for _ in 0..4 {
            let service = Arc::clone(&service);
            let (stop, expected_a, expected_b) = (&stop, &expected_a, &expected_b);
            checkers.push(scope.spawn(move || {
                let request = ExtractRequest::single("s", page.to_string());
                let mut served = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let response = service.handle(&request).expect("site stays registered");
                    let got = (response.rule, response.pages.into_iter().next().unwrap());
                    assert!(
                        &got == expected_a || &got == expected_b,
                        "torn response: {got:?}"
                    );
                    served += 1;
                }
                served
            }));
        }
        // Swapper: alternate full-bundle hot swaps under the load.
        let mut last_generation = registry.generation();
        for round in 0..60 {
            let mut bundle = WrapperBundle::new();
            bundle.insert(
                "s",
                if round % 2 == 0 {
                    wrapper_b()
                } else {
                    wrapper_a()
                },
            );
            let generation = registry.load_bundle(bundle);
            assert!(generation > last_generation, "generations are monotone");
            last_generation = generation;
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        let served: u64 = checkers.into_iter().map(|c| c.join().unwrap()).sum();
        assert!(served > 0, "the load threads must actually have served");
    });
}
