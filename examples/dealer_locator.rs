//! The DEALERS scenario at dataset scale: generate store-locator websites
//! from the web-publication model, annotate with a business-name
//! dictionary, learn the domain model from half the sites, and extract
//! from the rest — the §7 pipeline end to end.
//!
//! Run with: `cargo run --release --example dealer_locator`

use autowrappers::prelude::*;
use aw_eval::{evaluate, learn_model, split_half, Method};
use aw_sitegen::{generate_dealers, DealersConfig};

fn main() {
    // 40 synthetic dealer-locator websites (use DealersConfig::default()
    // for the paper's 330).
    let config = DealersConfig::small(40, 2026);
    let dataset = generate_dealers(&config);
    println!(
        "generated {} websites; dictionary of {} business names",
        dataset.sites.len(),
        dataset.dictionary.len()
    );

    // The automatic annotator: exact-mention dictionary matching.
    let annotator = DictionaryAnnotator::new(dataset.dictionary.iter(), MatchMode::Contains);
    let labels_of = |s: &aw_sitegen::GeneratedSite| annotator.annotate(&s.site);

    // Learn (p, r) and the feature distributions from half the websites.
    let (train, test) = split_half(&dataset.sites);
    let model = learn_model(&train, labels_of);
    println!(
        "learned annotator model: p = {:.3}, r = {:.3}",
        model.annotator.p, model.annotator.r
    );

    // One engine serves the whole dataset: model + language + annotator.
    let engine = Engine::builder(model.clone())
        .language(WrapperLanguage::XPath)
        .annotator(DictionaryAnnotator::new(
            dataset.dictionary.iter(),
            MatchMode::Contains,
        ))
        .build();

    // Show one site in detail, through the staged pipeline.
    let sample = test[0];
    let labels = engine.annotate(&sample.site).expect("dictionary fires");
    let outcome = engine.learn(&sample.site, &labels).expect("nonempty space");
    if let Some(best) = outcome.best() {
        println!(
            "\nsite {}: {} labels → wrapper {}",
            sample.id,
            labels.len(),
            best.rule
        );
        for &n in best.extraction.iter().take(6) {
            println!("   {}", sample.site.text_of(n).unwrap());
        }
        if best.extraction.len() > 6 {
            println!("   … {} more", best.extraction.len() - 6);
        }
    }

    // Batch learning: every test site's space ranked in one site-sharded,
    // page-parallel pass (`Engine::learn_sites_labeled`).
    let site_labels: Vec<NodeSet> = test.iter().map(|gs| labels_of(gs)).collect();
    let labeled: Vec<(&Site, &NodeSet)> =
        test.iter().map(|gs| &gs.site).zip(&site_labels).collect();
    let batch = engine.learn_sites_labeled(&labeled).expect("batch learn");
    let learned = batch.iter().filter(|r| !r.is_empty()).count();
    println!(
        "\nbatch-learned wrappers for {learned}/{} test sites in one sharded pass",
        test.len()
    );

    // Dataset-level evaluation: the Figure 2(d) comparison.
    println!("\ndataset accuracy (test half, XPATH wrappers):");
    for method in [Method::Naive, Method::Ntw] {
        let out = evaluate(&test, labels_of, WrapperLanguage::XPath, method, &model);
        println!(
            "  {:>5}: precision {:.3}  recall {:.3}  F1 {:.3}",
            method.name(),
            out.mean.precision,
            out.mean.recall,
            out.mean.f1
        );
    }
}
