//! Multi-type extraction (Appendix A): assemble (business-name, zipcode)
//! records from dealer-locator pages using two independent noisy
//! annotators — a name dictionary and the five-digit zipcode matcher.
//!
//! Run with: `cargo run --release --example multi_type_records`

use autowrappers::prelude::*;
use aw_eval::{learn_annotator, learn_model, split_half};
use aw_sitegen::{generate_dealers, DealersConfig};

fn main() {
    let dataset = generate_dealers(&DealersConfig::small(20, 4242));
    let name_annot = DictionaryAnnotator::new(dataset.dictionary.iter(), MatchMode::Contains);

    let (train, test) = split_half(&dataset.sites);
    let name_model = learn_model(&train, |s| name_annot.annotate(&s.site));
    let zip_annot_model = learn_annotator(&train, 1, |s| annotate_zipcodes(&s.site));
    let model = MultiTypeModel {
        annotators: vec![name_model.annotator, zip_annot_model],
        publication: name_model.publication.clone(),
        pin_indel_cost: 3,
    };

    let sample = test[0];
    let labels = [
        name_annot.annotate(&sample.site),
        annotate_zipcodes(&sample.site),
    ];
    println!(
        "site {}: {} name labels, {} zipcode labels",
        sample.id,
        labels[0].len(),
        labels[1].len()
    );

    let outcome = learn_multi_type(&sample.site, &labels, &model, &NtwConfig::default());
    let best = outcome.best().expect("nonempty label sets");
    println!("name rule: {}", best.rules[0]);
    println!("zip rule:  {}", best.rules[1]);
    println!("\nassembled records:");
    for record in best.records.iter().take(8) {
        let name = sample.site.text_of(record.primary).unwrap();
        let zip = record
            .secondary
            .map(|z| sample.site.text_of(z).unwrap())
            .unwrap_or("—");
        println!("  {name:<36} | {zip}");
    }
    if best.records.len() > 8 {
        println!("  … {} more", best.records.len() - 8);
    }

    // The NAIVE contrast of Figure 3(a): induce on raw labels per type,
    // then try to assemble. Interleaving fails and pages produce nothing.
    let inductor = XPathInductor::new(&sample.site);
    let x0 = inductor.extract(&labels[0]);
    let x1 = inductor.extract(&labels[1]);
    let naive_records = aw_core::assemble_records(&sample.site, &x0, &x1);
    println!(
        "\nNTW assembled {} records; NAIVE assembled {}",
        best.records.len(),
        naive_records.len()
    );
}
