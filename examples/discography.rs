//! The DISC scenario: extract track names from discography sites using a
//! seed database of a few popular albums (§7's second domain).
//!
//! Run with: `cargo run --release --example discography`

use autowrappers::prelude::*;
use aw_eval::{evaluate, learn_model, split_half, Method};
use aw_sitegen::{generate_disc, DiscConfig};

fn main() {
    let dataset = generate_disc(&DiscConfig::default());
    println!(
        "generated {} discography sites; seed database: {} albums, {} known tracks",
        dataset.sites.len(),
        dataset.title_dictionary.len(),
        dataset.track_dictionary.len()
    );

    // Exact track-name matching — noisy: title tracks equal album titles,
    // and reviews quote track names verbatim.
    let annotator = DictionaryAnnotator::new(dataset.track_dictionary.iter(), MatchMode::Exact);
    let labels_of = |s: &aw_sitegen::GeneratedSite| annotator.annotate(&s.site);

    let (train, test) = split_half(&dataset.sites);
    let model = learn_model(&train, labels_of);

    // One site in detail: show the learned rule and a few tracks,
    // including tracks of albums the dictionary has never seen.
    let engine = Engine::builder(model.clone())
        .language(WrapperLanguage::XPath)
        .annotator(DictionaryAnnotator::new(
            dataset.track_dictionary.iter(),
            MatchMode::Exact,
        ))
        .build();
    let sample = test[0];
    let labels = engine.annotate(&sample.site).expect("tracks matched");
    let outcome = engine.learn(&sample.site, &labels).expect("nonempty space");
    if let Some(best) = outcome.best() {
        println!("\nsite {}: {} noisy labels", sample.id, labels.len());
        println!("learned wrapper: {}", best.rule);
        let known: Vec<&str> = dataset
            .track_dictionary
            .iter()
            .map(|s| s.as_str())
            .collect();
        let mut unseen = 0;
        for &n in &best.extraction {
            let t = sample.site.text_of(n).unwrap();
            if !known.contains(&t) {
                unseen += 1;
            }
        }
        println!(
            "extracted {} tracks, {} of them from albums outside the seed database",
            best.extraction.len(),
            unseen
        );
    }

    // Dataset-level: Figures 2(f)/(g).
    for language in [WrapperLanguage::XPath, WrapperLanguage::Lr] {
        println!("\naccuracy with {} wrappers:", language.name());
        for method in [Method::Naive, Method::Ntw] {
            let out = evaluate(&test, labels_of, language, method, &model);
            println!(
                "  {:>5}: precision {:.3}  recall {:.3}  F1 {:.3}",
                method.name(),
                out.mean.precision,
                out.mean.recall,
                out.mean.f1
            );
        }
    }
}
