//! Single-entity extraction (Appendix B.2): learn a wrapper that pulls
//! the one album title from every page of a discography site, despite the
//! annotator firing on title tracks and review quotes too.
//!
//! Run with: `cargo run --release --example album_title`

use autowrappers::prelude::*;
use aw_sitegen::{generate_disc, DiscConfig};

fn main() {
    let dataset = generate_disc(&DiscConfig::default());
    // The seed database: the 11 popular album titles.
    let annotator = DictionaryAnnotator::new(dataset.title_dictionary.iter(), MatchMode::Exact);

    let mut sites_with_ties = 0;
    for gs in &dataset.sites {
        let labels = annotator.annotate(&gs.site);
        let outcome = learn_single_entity(&gs.site, &labels, &NtwConfig::default());
        let title_gold = &gs.gold_types[aw_sitegen::disc::TYPE_TITLE];
        let correct = !outcome.best.is_empty()
            && outcome
                .best
                .iter()
                .all(|w| w.extraction.iter().all(|n| title_gold.contains(n)));
        if outcome.best.len() > 1 {
            sites_with_ties += 1;
        }
        println!(
            "site {:>2}: {:>2} labels → {} tied top wrapper(s), correct: {}",
            gs.id,
            labels.len(),
            outcome.best.len(),
            correct
        );
        if gs.id == 0 {
            for w in &outcome.best {
                println!("          {}", w.rule);
            }
        }
    }
    println!(
        "\n{} site(s) returned multiple tied correct wrappers — the paper saw \
         the same: titles live in several consistent locations per page",
        sites_with_ties
    );
}
