//! The serving side in-process (no sockets): learn wrappers for a
//! dealer corpus offline, bundle them, load the bundle into a
//! hot-swappable [`WrapperRegistry`], and answer extraction requests
//! through an [`ExtractionService`] — the same objects `awrap serve`
//! fronts with HTTP.
//!
//! Demonstrates the serving properties the API was designed for:
//!
//! * one resident registry answers requests for *many* sites;
//! * structurally identical pages arriving in **separate requests** hit
//!   the per-site template cache (replay counters printed below);
//! * a bundle hot-swap under a running service is atomic.
//!
//! Run with: `cargo run --release --example serve_extract`

use autowrappers::prelude::*;
use aw_sitegen::{generate_dealers, DealersConfig};
use std::sync::Arc;

fn main() {
    // ── Learn offline ────────────────────────────────────────────────
    // A small dealer corpus with uniform pagination (every page of a
    // site renders the same number of records — the production shape of
    // paginated listings, and the best case for template replay).
    let dataset = generate_dealers(&DealersConfig {
        sites: 6,
        pages_per_site: 6,
        records_per_page: (5, 5),
        promo_prob: 0.0,
        uniform_records: true,
        seed: 0x5E11,
        ..DealersConfig::default()
    });
    let model = RankingModel::new(
        AnnotatorModel::new(0.95, 0.24),
        PublicationModel::learn(&[
            ListFeatures {
                schema_size: 3.0,
                alignment: 0.0,
            },
            ListFeatures {
                schema_size: 3.0,
                alignment: 1.0,
            },
        ]),
    );
    let engine = Engine::builder(model)
        .language(WrapperLanguage::XPath)
        .build();
    let annotator = DictionaryAnnotator::new(dataset.dictionary.iter(), MatchMode::Contains);
    let labels: Vec<NodeSet> = dataset
        .sites
        .iter()
        .map(|gs| annotator.annotate(&gs.site))
        .collect();
    let labeled: Vec<(&Site, &NodeSet)> = dataset
        .sites
        .iter()
        .map(|gs| &gs.site)
        .zip(&labels)
        .collect();
    let ranked = engine.learn_sites_labeled(&labeled).expect("corpus learns");

    // ── Bundle ───────────────────────────────────────────────────────
    let mut bundle = WrapperBundle::new();
    for (gs, site_ranked) in dataset.sites.iter().zip(&ranked) {
        if let Some(best) = site_ranked.best() {
            bundle.insert(format!("dealer-{}", gs.id), best.compile());
        }
    }
    let payload = bundle.to_json();
    println!(
        "learned + bundled {} site wrapper(s) ({} bytes of JSON)",
        bundle.len(),
        payload.len()
    );

    // The bundle is the deployable artifact: ship the JSON, load it in
    // the serving process (or POST it to a running `awrap serve`).
    // ArtifactReader sniffs the generation, so the same call accepts a
    // v1 wrapper, a v2 bundle, or a packed v3 binary bundle.
    let shipped = ArtifactReader::read_bytes(payload.as_bytes()).expect("bundle round-trips");
    let registry = Arc::new(WrapperRegistry::from_bundle(shipped));
    let service = ExtractionService::new(Arc::clone(&registry));

    // ── Serve ────────────────────────────────────────────────────────
    // Traffic: every page of every site arrives as its own request (the
    // crawler's perspective), serialized back to raw HTML.
    let requests: Vec<ExtractRequest> = dataset
        .sites
        .iter()
        .flat_map(|gs| {
            gs.site.pages().iter().map(move |page| {
                ExtractRequest::single(format!("dealer-{}", gs.id), aw_dom::serialize(page))
            })
        })
        .collect();
    let mut extracted = 0usize;
    for request in &requests {
        extracted += service
            .handle(request)
            .expect("registered site")
            .values()
            .count();
    }
    println!(
        "served {} single-page requests, {} values extracted",
        requests.len(),
        extracted
    );

    // Separate requests share the per-site template caches: after the
    // first pass recorded each site's trace, a second pass of the same
    // traffic replays nearly every page.
    for request in &requests {
        service.handle(request).expect("registered site");
    }
    let (replays, other): (u64, u64) = registry
        .entries()
        .iter()
        .filter_map(|(_, w)| w.template_cache_stats())
        .fold((0, 0), |(h, m), (sh, sm)| (h + sh, m + sm));
    println!(
        "template caches across requests: {replays} replayed / {other} other page evaluations"
    );
    assert!(replays > 0, "repeated traffic must hit template replay");

    // ── Hot swap ─────────────────────────────────────────────────────
    // Re-deploy a one-site bundle under live traffic: atomic, and the
    // dropped sites 404 (AwError::UnknownSite) instead of serving stale
    // wrappers.
    let mut next = WrapperBundle::new();
    let keep = registry.site_keys()[0].clone();
    if let Some(w) = registry.get(&keep) {
        next.insert(
            keep.clone(),
            CompiledWrapper::from_json(&w.to_json()).expect("artifact round-trips"),
        );
    }
    let generation = registry.load_bundle(next);
    println!(
        "hot-swapped to a {}-site bundle (generation {generation}); \
         dropped sites now answer UnknownSite",
        registry.len()
    );
    let gone = requests
        .iter()
        .find(|r| r.site != keep)
        .expect("a dropped site");
    assert!(matches!(service.handle(gone), Err(AwError::UnknownSite(_))));
    let kept = requests.iter().find(|r| r.site == keep).expect("kept site");
    assert!(service.handle(kept).is_ok());
}
