//! Tree traversal utilities.
//!
//! The ranking model's record segmentation (§6, Figure 7) is defined on the
//! *pre-order* traversal of the DOM, so pre-order is the central iterator
//! here; ancestor chains drive the XPATH inductor's feature extraction.

use crate::arena::{Document, NodeId};

/// Pre-order (document-order) iterator over a subtree.
pub struct Preorder<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl<'a> Iterator for Preorder<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        // Push children in reverse so the leftmost is visited first.
        for &c in self.doc.children(id).iter().rev() {
            self.stack.push(c);
        }
        Some(id)
    }
}

/// Iterator over the ancestors of a node, nearest (parent) first.
pub struct Ancestors<'a> {
    doc: &'a Document,
    cur: Option<NodeId>,
}

impl<'a> Iterator for Ancestors<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let next = self.doc.parent(self.cur?);
        self.cur = next;
        next
    }
}

impl Document {
    /// Pre-order traversal of the subtree rooted at `id`, including `id`.
    pub fn preorder(&self, id: NodeId) -> Preorder<'_> {
        Preorder {
            doc: self,
            stack: vec![id],
        }
    }

    /// All nodes of the document in document order (excluding nothing).
    pub fn preorder_all(&self) -> Preorder<'_> {
        self.preorder(NodeId::ROOT)
    }

    /// Ancestors of `id`, parent first, ending at the root.
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors {
            doc: self,
            cur: Some(id),
        }
    }

    /// All text-node ids in document order.
    pub fn text_nodes(&self) -> Vec<NodeId> {
        self.preorder_all().filter(|&id| self.is_text(id)).collect()
    }

    /// All element ids with the given tag, in document order.
    pub fn elements_by_tag(&self, tag: &str) -> Vec<NodeId> {
        self.preorder_all()
            .filter(|&id| self.tag(id) == Some(tag))
            .collect()
    }

    /// True if `anc` is a strict ancestor of `id`.
    pub fn is_ancestor(&self, anc: NodeId, id: NodeId) -> bool {
        self.ancestors(id).any(|a| a == anc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn preorder_is_document_order() {
        let doc = parse("<div><p>a</p><p>b<i>c</i></p></div><span>d</span>");
        let texts: Vec<_> = doc
            .preorder_all()
            .filter_map(|id| doc.text(id).map(str::to_string))
            .collect();
        assert_eq!(texts, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn preorder_subtree_only() {
        let doc = parse("<div><p>a</p></div><span>b</span>");
        let div = doc.children(NodeId::ROOT)[0];
        let texts: Vec<_> = doc
            .preorder(div)
            .filter_map(|id| doc.text(id).map(str::to_string))
            .collect();
        assert_eq!(texts, vec!["a"]);
    }

    #[test]
    fn ancestors_parent_first() {
        let doc = parse("<div><p><i>x</i></p></div>");
        let x = doc.text_nodes()[0];
        let tags: Vec<_> = doc
            .ancestors(x)
            .map(|a| doc.tag(a).unwrap_or("#doc").to_string())
            .collect();
        assert_eq!(tags, vec!["i", "p", "div", "#doc"]);
    }

    #[test]
    fn is_ancestor_checks() {
        let doc = parse("<div><p>x</p></div><span>y</span>");
        let div = doc.children(NodeId::ROOT)[0];
        let span = doc.children(NodeId::ROOT)[1];
        let x = doc.text_nodes()[0];
        assert!(doc.is_ancestor(div, x));
        assert!(!doc.is_ancestor(span, x));
        assert!(!doc.is_ancestor(x, x), "not a strict ancestor of itself");
        assert!(doc.is_ancestor(NodeId::ROOT, x));
    }

    #[test]
    fn elements_by_tag_in_order() {
        let doc = parse("<tr><td>1</td><td>2</td></tr><tr><td>3</td></tr>");
        assert_eq!(doc.elements_by_tag("td").len(), 3);
        assert_eq!(doc.elements_by_tag("tr").len(), 2);
        assert_eq!(doc.elements_by_tag("table").len(), 0);
    }

    #[test]
    fn preorder_on_arena_built_doc_matches_ids() {
        // Builder API appends in document order, so ids() == preorder.
        let doc = parse("<a><b><c>x</c></b><d>y</d></a>");
        let pre: Vec<_> = doc.preorder_all().collect();
        let ids: Vec<_> = doc.ids().collect();
        assert_eq!(pre, ids);
    }
}
