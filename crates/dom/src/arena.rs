//! Arena-backed DOM.
//!
//! All nodes of a document live in a single contiguous [`Vec`]; nodes refer
//! to each other with [`NodeId`] indices. Documents are built once (by the
//! parser or by hand through the builder methods) and then treated as
//! immutable by every consumer — inductors, annotators and the ranking
//! model — which makes node sets cheap to hash and compare.

use std::fmt;
use std::sync::OnceLock;

use crate::index::DocIndex;

/// Index of a node within its [`Document`] arena.
///
/// `NodeId(0)` is always the synthetic document root.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The synthetic root of every document.
    pub const ROOT: NodeId = NodeId(0);

    /// Arena index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An element's tag name and attributes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Element {
    /// Lower-cased tag name.
    pub tag: String,
    /// Attributes in document order; names lower-cased.
    pub attrs: Vec<(String, String)>,
}

impl Element {
    /// Creates an element with no attributes.
    pub fn new(tag: impl Into<String>) -> Self {
        Element {
            tag: tag.into(),
            attrs: Vec::new(),
        }
    }

    /// Looks up an attribute value by (lower-case) name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// The payload of a DOM node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// The synthetic document root; exactly one per document, at `NodeId::ROOT`.
    Document,
    /// An element such as `<td class="x">`.
    Element(Element),
    /// A text node. The parser trims and whitespace-collapses content.
    Text(String),
    /// A comment (`<!-- ... -->`). Kept for fidelity; ignored by extraction.
    Comment(String),
}

/// A single DOM node: payload plus tree links.
#[derive(Clone, Debug)]
pub struct Node {
    /// What the node is.
    pub kind: NodeKind,
    /// Parent link; `None` only for the root.
    pub parent: Option<NodeId>,
    /// Children in document order.
    pub children: Vec<NodeId>,
}

/// An HTML document: an arena of [`Node`]s rooted at [`NodeId::ROOT`].
#[derive(Clone, Debug, Default)]
pub struct Document {
    nodes: Vec<Node>,
    /// Lazily-built evaluation index ([`Document::index`]); reset by any
    /// mutation so readers never observe a stale index.
    index: OnceLock<DocIndex>,
}

impl Document {
    /// Creates an empty document containing only the root node.
    pub fn new() -> Self {
        Document {
            nodes: vec![Node {
                kind: NodeKind::Document,
                parent: None,
                children: Vec::new(),
            }],
            index: OnceLock::new(),
        }
    }

    /// The index cell (crate-internal; see [`Document::index`]).
    #[inline]
    pub(crate) fn index_cache(&self) -> &OnceLock<DocIndex> {
        &self.index
    }

    /// Wraps a fully-linked node arena built elsewhere (the streaming
    /// builder, `crate::stream`) without the per-append index
    /// invalidation of [`Document::append`]. The caller guarantees the
    /// tree links are consistent and `nodes[0]` is the root.
    pub(crate) fn from_nodes(nodes: Vec<Node>) -> Document {
        debug_assert!(matches!(nodes[0].kind, NodeKind::Document));
        debug_assert!(nodes[0].parent.is_none());
        Document {
            nodes,
            index: OnceLock::new(),
        }
    }

    /// Number of nodes, including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the document contains only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// The document root.
    pub fn root(&self) -> NodeId {
        NodeId::ROOT
    }

    /// Borrows a node.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this document.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Parent of `id`, or `None` for the root.
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// Children of `id` in document order.
    #[inline]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// The element payload of `id`, if it is an element.
    pub fn element(&self, id: NodeId) -> Option<&Element> {
        match &self.nodes[id.index()].kind {
            NodeKind::Element(e) => Some(e),
            _ => None,
        }
    }

    /// Lower-case tag name of `id`, if it is an element.
    pub fn tag(&self, id: NodeId) -> Option<&str> {
        self.element(id).map(|e| e.tag.as_str())
    }

    /// Attribute `name` of element `id`.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        self.element(id).and_then(|e| e.attr(name))
    }

    /// Text content of `id`, if it is a text node.
    pub fn text(&self, id: NodeId) -> Option<&str> {
        match &self.nodes[id.index()].kind {
            NodeKind::Text(t) => Some(t.as_str()),
            _ => None,
        }
    }

    /// True if `id` is a text node.
    pub fn is_text(&self, id: NodeId) -> bool {
        matches!(self.nodes[id.index()].kind, NodeKind::Text(_))
    }

    /// True if `id` is an element node.
    pub fn is_element(&self, id: NodeId) -> bool {
        matches!(self.nodes[id.index()].kind, NodeKind::Element(_))
    }

    /// Appends a new node under `parent` and returns its id.
    pub fn append(&mut self, parent: NodeId, kind: NodeKind) -> NodeId {
        self.index = OnceLock::new(); // structure changes: drop the index
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Appends an element with attributes; convenience over [`Document::append`].
    pub fn append_element(
        &mut self,
        parent: NodeId,
        tag: impl Into<String>,
        attrs: Vec<(String, String)>,
    ) -> NodeId {
        self.append(
            parent,
            NodeKind::Element(Element {
                tag: tag.into(),
                attrs,
            }),
        )
    }

    /// Appends a text node; convenience over [`Document::append`].
    pub fn append_text(&mut self, parent: NodeId, text: impl Into<String>) -> NodeId {
        self.append(parent, NodeKind::Text(text.into()))
    }

    /// 1-based position of `id` among siblings **with the same tag name**.
    ///
    /// This is the semantics of the xpath child-number filter `td[2]`:
    /// the second `td` child of the parent, not the second child overall.
    /// Returns `None` for non-elements and the root.
    pub fn same_tag_index(&self, id: NodeId) -> Option<usize> {
        let tag = self.tag(id)?;
        let parent = self.parent(id)?;
        let mut k = 0;
        for &c in self.children(parent) {
            if self.tag(c) == Some(tag) {
                k += 1;
                if c == id {
                    return Some(k);
                }
            }
        }
        None
    }

    /// 0-based position of `id` among all siblings.
    pub fn sibling_index(&self, id: NodeId) -> Option<usize> {
        let parent = self.parent(id)?;
        self.children(parent).iter().position(|&c| c == id)
    }

    /// Depth of `id` (root has depth 0).
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Iterator over every node id in arena (= pre-order creation) order.
    ///
    /// Note: for documents built by the parser or the builder API, arena
    /// order coincides with pre-order document order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Concatenated text of all text-node descendants of `id`.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.collect_text(id, &mut out);
        out
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        if let Some(t) = self.text(id) {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(t);
        }
        for &c in self.children(id) {
            self.collect_text(c, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId, NodeId) {
        let mut d = Document::new();
        let div = d.append_element(
            NodeId::ROOT,
            "div",
            vec![("class".into(), "dealerlinks".into())],
        );
        let td = d.append_element(div, "td", vec![]);
        let t = d.append_text(td, "PORTER FURNITURE");
        (d, div, td, t)
    }

    #[test]
    fn builds_tree_links() {
        let (d, div, td, t) = sample();
        assert_eq!(d.parent(t), Some(td));
        assert_eq!(d.parent(td), Some(div));
        assert_eq!(d.parent(div), Some(NodeId::ROOT));
        assert_eq!(d.children(div), &[td]);
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert!(Document::new().is_empty());
    }

    #[test]
    fn accessors() {
        let (d, div, td, t) = sample();
        assert_eq!(d.tag(div), Some("div"));
        assert_eq!(d.attr(div, "class"), Some("dealerlinks"));
        assert_eq!(d.attr(div, "id"), None);
        assert_eq!(d.text(t), Some("PORTER FURNITURE"));
        assert!(d.is_text(t));
        assert!(d.is_element(td));
        assert!(!d.is_element(t));
        assert_eq!(d.tag(t), None);
    }

    #[test]
    fn same_tag_index_counts_only_same_tag() {
        let mut d = Document::new();
        let tr = d.append_element(NodeId::ROOT, "tr", vec![]);
        let td1 = d.append_element(tr, "td", vec![]);
        let _span = d.append_element(tr, "span", vec![]);
        let td2 = d.append_element(tr, "td", vec![]);
        assert_eq!(d.same_tag_index(td1), Some(1));
        assert_eq!(d.same_tag_index(td2), Some(2)); // span does not count
        assert_eq!(d.sibling_index(td2), Some(2));
        assert_eq!(d.same_tag_index(NodeId::ROOT), None);
    }

    #[test]
    fn depth_and_text_content() {
        let (d, div, td, t) = sample();
        assert_eq!(d.depth(NodeId::ROOT), 0);
        assert_eq!(d.depth(div), 1);
        assert_eq!(d.depth(t), 3);
        assert_eq!(d.text_content(td), "PORTER FURNITURE");
        assert_eq!(d.text_content(NodeId::ROOT), "PORTER FURNITURE");
    }
}
