//! Process-global string interning for tag and attribute names.
//!
//! The wrapper pipeline compares the same few dozen strings — tag names,
//! attribute names, class values — millions of times: every xpath step
//! test, every attribute predicate, every feature extraction. Interning
//! maps each distinct string to a dense [`Sym`] (`u32`) once, after which
//! every comparison is an integer compare and every per-document tag
//! lookup can be a posting-list probe instead of a string scan.
//!
//! The table is process-global so that symbols are stable across
//! documents: a [`crate::index::DocIndex`] built for one page and a
//! compiled xpath built from another agree on what `td` means. It is
//! guarded by an `RwLock`: lookups of already-known strings (the
//! overwhelmingly common case once the first few pages are indexed)
//! take the shared read path, so parallel index builds do not contend.
//!
//! Scope discipline: only **bounded** vocabularies belong here — tag
//! names, attribute names, and the literal values of compiled xpath
//! queries. Per-document attribute *values* (hrefs, ids — unbounded in
//! a crawl) are interned per-`DocIndex` instead, precisely so this
//! leaked global table cannot grow without bound.

use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// An interned string: a dense process-global identifier.
///
/// Symbols compare equal iff the strings they intern are byte-equal.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

impl Sym {
    /// The interned string.
    pub fn as_str(self) -> &'static str {
        resolve(self)
    }
}

impl std::fmt::Debug for Sym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}({})", self.0, self.as_str())
    }
}

impl std::fmt::Display for Sym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

struct Interner {
    by_name: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn table() -> &'static RwLock<Interner> {
    static TABLE: OnceLock<RwLock<Interner>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(Interner {
            by_name: HashMap::with_capacity(256),
            names: Vec::with_capacity(256),
        })
    })
}

/// Interns `name`, returning its stable symbol.
///
/// The first sighting of each distinct string leaks one copy of it —
/// intern only bounded vocabularies (see the module docs). Known
/// strings resolve under the shared read lock.
pub fn intern(name: &str) -> Sym {
    if let Some(&id) = table().read().expect("interner lock").by_name.get(name) {
        return Sym(id);
    }
    let mut t = table().write().expect("interner lock");
    // Double-check: another thread may have interned it between locks.
    if let Some(&id) = t.by_name.get(name) {
        return Sym(id);
    }
    let id = t.names.len() as u32;
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    t.names.push(leaked);
    t.by_name.insert(leaked, id);
    Sym(id)
}

/// Interns `name`, returning the symbol *and* the interned `'static`
/// copy of the string — one lock acquisition where [`intern`] followed
/// by [`resolve`] would take two. Used by hot per-element paths (the
/// streaming parse→index builder keeps the returned `&'static str` on
/// its open-element stack instead of cloning the tag).
pub fn intern_resolved(name: &str) -> (Sym, &'static str) {
    if let Some((&leaked, &id)) = table()
        .read()
        .expect("interner lock")
        .by_name
        .get_key_value(name)
    {
        return (Sym(id), leaked);
    }
    let mut t = table().write().expect("interner lock");
    // Double-check: another thread may have interned it between locks.
    if let Some((&leaked, &id)) = t.by_name.get_key_value(name) {
        return (Sym(id), leaked);
    }
    let id = t.names.len() as u32;
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    t.names.push(leaked);
    t.by_name.insert(leaked, id);
    (Sym(id), leaked)
}

/// The symbol of `name` if it was ever interned; `None` otherwise.
///
/// Useful for lookups that must not grow the table (e.g. compiling an
/// xpath whose tag never occurs in any document: the step can only ever
/// select nothing).
pub fn lookup(name: &str) -> Option<Sym> {
    table()
        .read()
        .expect("interner lock")
        .by_name
        .get(name)
        .copied()
        .map(Sym)
}

/// The string a symbol interns.
pub fn resolve(sym: Sym) -> &'static str {
    table().read().expect("interner lock").names[sym.0 as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_distinct() {
        let a = intern("td");
        let b = intern("td");
        let c = intern("tr");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "td");
        assert_eq!(c.as_str(), "tr");
    }

    #[test]
    fn lookup_does_not_grow_the_table() {
        let before = intern("div"); // ensure present
        assert_eq!(lookup("div"), Some(before));
        let name = "никогда-not-a-tag-a9f3e2";
        if lookup(name).is_none() {
            // Still absent after lookup.
            assert_eq!(lookup(name), None);
        }
    }

    #[test]
    fn symbols_are_ordered_by_first_sighting() {
        let x = intern("zz-first-ab12");
        let y = intern("zz-second-ab12");
        assert!(x.0 < y.0);
    }
}
