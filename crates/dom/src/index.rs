//! Per-document evaluation index.
//!
//! Built once per [`Document`] (lazily, via [`Document::index`]) and
//! consumed by the compiled xpath engine in `aw-xpath` and by the XPATH
//! inductor's feature extraction. The index turns the three operations
//! that dominate wrapper-space evaluation into O(1)/O(log n) lookups:
//!
//! * **descendant scans** — every node knows its pre-order rank and the
//!   half-open rank range of its subtree, so "descendants of `n` with tag
//!   `td`" is a binary search in the `td` posting list instead of a tree
//!   walk;
//! * **tag tests** — tag and attribute names are interned to [`Sym`]s
//!   ([`crate::interner`]), so node tests compare integers, never
//!   strings;
//! * **child-number filters** — the 1-based position of every node among
//!   its same-tag / element / text siblings is precomputed, so `td[2]`
//!   costs one array load instead of an O(siblings) rescan per candidate.

use crate::arena::{Document, NodeId, NodeKind};
use crate::interner::{intern, Sym};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::ops::Range;

/// One repeated record subtree inside a [`RecordLayout`], as a half-open
/// pre-order rank span plus its position-independent skeleton hash.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordSpan {
    /// Rank of the record root (first rank of the subtree).
    pub start: u32,
    /// One past the last rank of the subtree.
    pub end: u32,
    /// Skeleton hash of the subtree: node kinds, tags and attribute
    /// *names*, composed bottom-up — independent of where the subtree
    /// sits in the page, so equal-looking records on different pages (or
    /// at different positions of one page) hash equal.
    pub fingerprint: u64,
}

/// The record region of a listing-shaped page: the contiguous run of
/// repeated child subtrees that [`DocIndex::record_layout`] detected,
/// plus a fingerprint of everything *outside* it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordLayout {
    /// Rank of the parent element holding the record run.
    pub parent: u32,
    /// First rank covered by the run (`records[0].start`).
    pub run_start: u32,
    /// One past the last covered rank (`records.last().end`).
    pub run_end: u32,
    /// The record subtrees in rank order; they tile
    /// `run_start..run_end` exactly (records are consecutive children,
    /// and children tile their parent's span).
    pub records: Vec<RecordSpan>,
    /// Hash of the page skeleton with the record run excised, in
    /// *collapsed* rank coordinates (ranks ≥ `run_end` shifted down by
    /// the run length), with `parent` and `run_start` mixed in. Pages
    /// that differ only in how many records they carry — and in which
    /// record variants — share this fingerprint while their whole-page
    /// [`DocIndex::template_fingerprint`]s differ. Probabilistic like
    /// the whole-page fingerprint (unkeyed 64-bit hash).
    pub frame_fingerprint: u64,
}

impl RecordLayout {
    /// Number of ranks the record run covers.
    #[inline]
    pub fn run_len(&self) -> u32 {
        self.run_end - self.run_start
    }
}

/// Keyed polynomial hasher for the per-document attribute-value table.
///
/// Those values are short strings hashed once per attribute on the
/// parse path and once per `[@attr='value']` probe at evaluation time;
/// SipHash's per-call finalization dominates at such lengths and is
/// measurable on the serving tier's request path. But the values come
/// straight from hostile pages, so an *unkeyed* fast hash (FNV, Fx)
/// would reopen the algorithmic-complexity hole SipHash closes: its
/// constants are public, and a crafted page full of colliding values
/// degrades its own parse toward O(n²).
///
/// This hasher instead evaluates the byte stream as a polynomial over
/// the Mersenne field `p = 2^61 - 1` at a secret point `x` drawn once
/// per process from OS entropy (via [`RandomState`]): the stream is
/// split into 56-bit blocks `c_1..c_d` (seven bytes each, the last
/// carrying a length-marker bit so the encoding is injective on
/// streams) and `H = Σ c_i · x^(d-i) mod p`. That is the standard
/// Carter–Wegman almost-universal family (the same construction as
/// Poly1305's core): for any two distinct strings of length ≤ L the
/// collision probability over the key draw is ≤ (L/7 + 1)/2^61, so
/// collisions cannot be *crafted* without knowing `x` — and `x` never
/// leaves the process (hashes and map iteration order are never
/// serialized or exposed; the dense value ids are first-seen order,
/// key-independent). The cost is one widening multiply per **seven**
/// bytes — ahead of FNV's per-byte multiply and far from SipHash's ARX
/// rounds. `finish` applies an (unkeyed, bijective) xor-shift
/// finalizer so bucket masking sees diffused low bits; a bijection
/// cannot introduce collisions.
pub(crate) struct PolyHasher {
    h: u64,
    key: u64,
    /// Bytes awaiting a full block, packed little-endian.
    pending: u64,
    /// How many bytes `pending` holds (0..=6).
    pending_len: u32,
}

/// `2^61 - 1`, the field modulus.
const POLY_P: u64 = (1 << 61) - 1;

/// `a * b mod p` for `a, b < 2^61`, via one widening multiply and a
/// Mersenne fold.
#[inline]
fn poly_mul_mod(a: u64, b: u64) -> u64 {
    let t = (a as u128) * (b as u128);
    let mut r = ((t as u64) & POLY_P) + ((t >> 61) as u64);
    r = (r & POLY_P) + (r >> 61);
    if r >= POLY_P {
        r -= POLY_P;
    }
    r
}

/// One Horner step: `h * key + block mod p`, for `block < 2^57`.
#[inline]
fn poly_fold(h: u64, key: u64, block: u64) -> u64 {
    let mut r = poly_mul_mod(h, key) + block;
    r = (r & POLY_P) + (r >> 61);
    if r >= POLY_P {
        r -= POLY_P;
    }
    r
}

/// The process-wide secret evaluation point, in `[2, p - 1]`.
fn poly_key() -> u64 {
    use std::collections::hash_map::RandomState;
    use std::hash::BuildHasher;
    static KEY: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *KEY.get_or_init(|| {
        // RandomState seeds from OS entropy; its SipHash output of a
        // fixed input is uniform and unknown to page authors. The
        // modulo bias (2^64 vs ~2^61 keys) is a < 2^-59 distribution
        // skew — irrelevant next to the L/2^61 collision bound.
        RandomState::new().hash_one(0u64) % (POLY_P - 2) + 2
    })
}

impl Default for PolyHasher {
    fn default() -> Self {
        PolyHasher {
            h: 0,
            key: poly_key(),
            pending: 0,
            pending_len: 0,
        }
    }
}

impl Hasher for PolyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Fold the tail as a final block with a length-marker bit above
        // its top byte — an injective encoding, so streams differing
        // only in trailing NULs or total length land in distinct
        // blocks. Then fmix64 (the splitmix/Murmur3 finalizer):
        // bijective diffusion so `HashMap`'s power-of-two bucket mask
        // sees every input bit.
        let tail = self.pending | (1u64 << (8 * self.pending_len));
        let mut z = poly_fold(self.h, self.key, tail);
        z = (z ^ (z >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
        z = (z ^ (z >> 33)).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        z ^ (z >> 33)
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        // Buffering into `pending` makes the hash a function of the
        // byte stream alone, independent of how callers split their
        // `write` calls. Top up a partially filled block byte-wise,
        // then fold aligned seven-byte chunks straight off the slice.
        while self.pending_len != 0 {
            let Some((&b, rest)) = bytes.split_first() else {
                return;
            };
            bytes = rest;
            self.pending |= (b as u64) << (8 * self.pending_len);
            self.pending_len += 1;
            if self.pending_len == 7 {
                self.h = poly_fold(self.h, self.key, self.pending);
                self.pending = 0;
                self.pending_len = 0;
            }
        }
        let mut chunks = bytes.chunks_exact(7);
        for c in &mut chunks {
            let mut w = [0u8; 8];
            w[..7].copy_from_slice(c);
            self.h = poly_fold(self.h, self.key, u64::from_le_bytes(w));
        }
        for &b in chunks.remainder() {
            self.pending |= (b as u64) << (8 * self.pending_len);
            self.pending_len += 1;
        }
    }
}

/// Precomputed evaluation structures for one [`Document`].
///
/// All rank-typed values index the document's **pre-order** traversal
/// (for parser- or builder-built documents this coincides with arena
/// order, but the index does not rely on that).
#[derive(Clone, Debug, Default)]
pub struct DocIndex {
    // Fields are `pub(crate)` so the one-pass streaming builder
    // (`crate::stream`) can fill the same tables event-by-event; every
    // consumer outside this crate goes through the accessor methods.
    /// NodeId index → pre-order rank.
    pub(crate) rank: Vec<u32>,
    /// Pre-order rank → NodeId.
    pub(crate) by_rank: Vec<NodeId>,
    /// Rank → exclusive end of the node's subtree, in rank space.
    pub(crate) subtree_end: Vec<u32>,
    /// NodeId index → interned tag (elements only).
    pub(crate) tag: Vec<Option<Sym>>,
    /// NodeId index → 1-based position among same-tag siblings (0 = n/a).
    pub(crate) same_tag_pos: Vec<u32>,
    /// NodeId index → 1-based position among element siblings (0 = n/a).
    pub(crate) elem_pos: Vec<u32>,
    /// NodeId index → 1-based position among text-node siblings (0 = n/a).
    pub(crate) text_pos: Vec<u32>,
    /// Tag symbol → ranks of elements with that tag, ascending.
    pub(crate) tag_postings: HashMap<Sym, Vec<u32>>,
    /// Ranks of all element nodes, ascending.
    pub(crate) elem_postings: Vec<u32>,
    /// Ranks of all text nodes, ascending.
    pub(crate) text_postings: Vec<u32>,
    /// NodeId index → start offset into `attrs` (length `nodes + 1`).
    pub(crate) attr_offsets: Vec<u32>,
    /// Per-node attribute pairs: global name symbol + **per-document**
    /// value id (see `attr_values`).
    pub(crate) attrs: Vec<(Sym, u32)>,
    /// Attribute value → dense per-document id. Values are unbounded
    /// across a crawl (hrefs, ids), so they are deliberately *not* put in
    /// the process-global interner — this table lives and dies with the
    /// index. Keyed with [`PolyHasher`] — fast on short strings like
    /// FNV, but secret-keyed so hostile request pages cannot craft
    /// collision sets (see its docs for the bound).
    pub(crate) attr_values: HashMap<String, u32, BuildHasherDefault<PolyHasher>>,
    /// Structural template fingerprint, computed on first use (see
    /// [`DocIndex::template_fingerprint`]) — consumers that never
    /// fingerprint (per-rule evaluation, cache-disabled batch engines)
    /// pay nothing for it.
    pub(crate) fingerprint: std::sync::OnceLock<u64>,
    /// Record-region detection result, computed on first use (see
    /// [`DocIndex::record_layout`]); `None` once computed means the page
    /// has no repeated-subtree run.
    pub(crate) record_layout: std::sync::OnceLock<Option<RecordLayout>>,
    /// True iff arena order equals pre-order rank order (see
    /// [`DocIndex::ranks_monotone`]).
    pub(crate) monotone: bool,
}

impl DocIndex {
    /// Builds the index for `doc`. Cost: one pre-order pass plus one
    /// sibling pass; every other query amortizes against this.
    pub fn build(doc: &Document) -> DocIndex {
        let n = doc.len();
        let mut idx = DocIndex {
            rank: vec![0; n],
            by_rank: Vec::with_capacity(n),
            subtree_end: vec![0; n],
            tag: vec![None; n],
            same_tag_pos: vec![0; n],
            elem_pos: vec![0; n],
            text_pos: vec![0; n],
            tag_postings: HashMap::new(),
            elem_postings: Vec::new(),
            text_postings: Vec::new(),
            attr_offsets: Vec::with_capacity(n + 1),
            attrs: Vec::new(),
            attr_values: HashMap::default(),
            fingerprint: std::sync::OnceLock::new(),
            record_layout: std::sync::OnceLock::new(),
            monotone: true,
        };
        if n == 0 {
            idx.attr_offsets.push(0);
            return idx;
        }

        // Pass 1: interning, attribute table and sibling positions (which
        // need arena order, not rank order, for the offset table).
        for id in doc.ids() {
            idx.attr_offsets.push(idx.attrs.len() as u32);
            if let NodeKind::Element(el) = &doc.node(id).kind {
                idx.tag[id.index()] = Some(intern(&el.tag));
                for (name, value) in &el.attrs {
                    let next_id = idx.attr_values.len() as u32;
                    let vid = *idx.attr_values.entry(value.clone()).or_insert(next_id);
                    idx.attrs.push((intern(name), vid));
                }
            }
        }
        idx.attr_offsets.push(idx.attrs.len() as u32);

        for id in doc.ids() {
            let children = doc.children(id);
            if children.is_empty() {
                continue;
            }
            let mut by_tag: HashMap<Sym, u32> = HashMap::new();
            let (mut elems, mut texts) = (0u32, 0u32);
            for &c in children {
                match &doc.node(c).kind {
                    NodeKind::Element(_) => {
                        elems += 1;
                        idx.elem_pos[c.index()] = elems;
                        let sym = idx.tag[c.index()].expect("element interned in pass 1");
                        let k = by_tag.entry(sym).or_insert(0);
                        *k += 1;
                        idx.same_tag_pos[c.index()] = *k;
                    }
                    NodeKind::Text(_) => {
                        texts += 1;
                        idx.text_pos[c.index()] = texts;
                    }
                    _ => {}
                }
            }
        }

        // Pass 2: pre-order ranks, subtree spans and posting lists, with
        // an explicit stack (crawled markup can nest arbitrarily deep).
        let mut stack: Vec<(NodeId, usize)> = vec![(doc.root(), 0)];
        idx.visit(doc, doc.root());
        while let Some(&mut (id, ref mut child)) = stack.last_mut() {
            let children = doc.children(id);
            if *child < children.len() {
                let c = children[*child];
                *child += 1;
                idx.visit(doc, c);
                stack.push((c, 0));
            } else {
                idx.subtree_end[idx.rank[id.index()] as usize] = idx.by_rank.len() as u32;
                stack.pop();
            }
        }
        idx.monotone = idx.by_rank.windows(2).all(|w| w[0] < w[1]);

        idx
    }

    /// Computes the template fingerprint — a hash over the rank-ordered
    /// tag/attribute-name skeleton plus subtree spans (spans pin the
    /// tree *shape*; a flat preorder kind sequence alone cannot tell
    /// `a(b) c` from `a b(c)`). Text content and attribute values are
    /// deliberately excluded: pages rendered from one script differ
    /// exactly there. Node kinds are reconstructed from the index's own
    /// tables (tag = element, text posting = text, rank 0 = the
    /// synthetic root, rest = comments), so no `Document` is needed.
    fn compute_fingerprint(&self) -> u64 {
        let n = self.by_rank.len();
        let mut h = DefaultHasher::new();
        (n as u64).hash(&mut h);
        // `text_postings` ascends in rank, so one peeking cursor
        // classifies text nodes as the rank loop advances.
        let mut texts = self.text_postings.iter().peekable();
        for r in 0..n as u32 {
            self.subtree_end[r as usize].hash(&mut h);
            self.hash_node_kind(r, &mut texts, &mut h);
        }
        h.finish()
    }

    /// Hashes one node's kind discriminant plus its tag and attribute
    /// *names* (values and text content excluded) — the per-node
    /// contribution shared by the whole-page, per-subtree and frame
    /// fingerprints. `texts` must be a peeking cursor over
    /// [`DocIndex::text_postings`] positioned at or after `r`.
    fn hash_node_kind(
        &self,
        r: u32,
        texts: &mut std::iter::Peekable<std::slice::Iter<'_, u32>>,
        h: &mut DefaultHasher,
    ) {
        let id = self.by_rank[r as usize];
        if let Some(sym) = self.tag[id.index()] {
            1u8.hash(h);
            sym.hash(h);
            let attrs = self.attrs(id);
            (attrs.len() as u32).hash(h);
            for &(name, _) in attrs {
                name.hash(h);
            }
        } else if texts.peek() == Some(&&r) {
            texts.next();
            2u8.hash(h);
        } else if r == 0 {
            0u8.hash(h); // the synthetic document root
        } else {
            3u8.hash(h); // comment
        }
    }

    /// Computes [`DocIndex::record_layout`]: position-independent
    /// subtree hashes for every node (bottom-up, one ascending rank
    /// pass), then the child run with the largest repeated coverage.
    fn compute_record_layout(&self) -> Option<RecordLayout> {
        let n = self.by_rank.len();
        if n < 4 {
            return None;
        }

        // Per-node subtree skeleton hash: own kind/tag/attr-names plus
        // the children's hashes in order. Composed with an open-node
        // stack so one ascending pass suffices; deliberately excludes
        // ranks and spans, so equal-looking subtrees hash equal anywhere
        // on any page.
        let mut sub = vec![0u64; n];
        let mut open: Vec<(u32, DefaultHasher)> = Vec::new();
        let close = |open: &mut Vec<(u32, DefaultHasher)>, sub: &mut Vec<u64>, upto: u32| {
            while let Some((top, _)) = open.last() {
                if self.subtree_end[*top as usize] > upto {
                    break;
                }
                let (t, h) = open.pop().expect("non-empty: just peeked");
                let v = h.finish();
                sub[t as usize] = v;
                if let Some((_, parent)) = open.last_mut() {
                    v.hash(parent);
                }
            }
        };
        let mut texts = self.text_postings.iter().peekable();
        for r in 0..n as u32 {
            close(&mut open, &mut sub, r);
            let mut h = DefaultHasher::new();
            self.hash_node_kind(r, &mut texts, &mut h);
            open.push((r, h));
        }
        close(&mut open, &mut sub, n as u32);

        // For every parent: mark children whose subtree hash recurs
        // among the siblings, widen to adjacent same-root-tag children
        // (a lone record variant — an optional field missing once — must
        // not split the run), and score each contiguous run by the ranks
        // its *recurring* members cover. The page-wide best run is the
        // record region; scoring by repeated coverage keeps incidental
        // repetition (nav links, `<br>` runs) from outranking the
        // listing body.
        let mut best: Option<(u64, u32, Range<usize>)> = None; // (score, parent, child range)
        let mut kids: Vec<u32> = Vec::new();
        for p in 0..n as u32 {
            let end = self.subtree_end[p as usize];
            kids.clear();
            let mut c = p + 1;
            while c < end {
                kids.push(c);
                c = self.subtree_end[c as usize];
            }
            if kids.len() < 2 {
                continue;
            }
            let mut counts: HashMap<u64, u32> = HashMap::new();
            for &k in &kids {
                *counts.entry(sub[k as usize]).or_insert(0) += 1;
            }
            if counts.len() == kids.len() {
                continue; // nothing recurs under this parent
            }
            let recurring: Vec<bool> = kids
                .iter()
                .map(|&k| counts[&sub[k as usize]] >= 2)
                .collect();
            let run_tags: Vec<Option<Sym>> = kids
                .iter()
                .zip(&recurring)
                .filter(|&(_, &rec)| rec)
                .map(|(&k, _)| self.tag[self.by_rank[k as usize].index()])
                .collect();
            let eligible: Vec<bool> = kids
                .iter()
                .zip(&recurring)
                .map(|(&k, &rec)| {
                    rec || run_tags.contains(&self.tag[self.by_rank[k as usize].index()])
                })
                .collect();
            let mut i = 0;
            while i < kids.len() {
                if !eligible[i] {
                    i += 1;
                    continue;
                }
                let mut j = i;
                while j + 1 < kids.len() && eligible[j + 1] {
                    j += 1;
                }
                let n_recurring = recurring[i..=j].iter().filter(|&&r| r).count();
                if n_recurring >= 2 {
                    let score: u64 = (i..=j)
                        .filter(|&k| recurring[k])
                        .map(|k| {
                            let kid = kids[k];
                            u64::from(self.subtree_end[kid as usize] - kid)
                        })
                        .sum();
                    if best.as_ref().is_none_or(|(s, _, _)| score > *s) {
                        best = Some((score, p, i..j + 1));
                    }
                }
                i = j + 1;
            }
        }
        let (_, parent, range) = best?;

        // Rebuild the winning parent's child list and cut the run out.
        let end = self.subtree_end[parent as usize];
        kids.clear();
        let mut c = parent + 1;
        while c < end {
            kids.push(c);
            c = self.subtree_end[c as usize];
        }
        let records: Vec<RecordSpan> = kids[range]
            .iter()
            .map(|&k| RecordSpan {
                start: k,
                end: self.subtree_end[k as usize],
                fingerprint: sub[k as usize],
            })
            .collect();
        let run_start = records[0].start;
        let run_end = records.last().expect("≥2 records").end;
        let run_len = run_end - run_start;

        // Frame fingerprint: the whole-page fingerprint recipe with the
        // run excised and every rank/span ≥ `run_end` collapsed down by
        // the run length, plus the anchors (parent, run_start) that tell
        // a matching page *where* its own records slot back in.
        let mut h = DefaultHasher::new();
        u64::from(n as u32 - run_len).hash(&mut h);
        parent.hash(&mut h);
        run_start.hash(&mut h);
        let mut texts = self.text_postings.iter().peekable();
        for r in 0..n as u32 {
            if (run_start..run_end).contains(&r) {
                // Keep the text cursor in step across the excised run.
                if texts.peek() == Some(&&r) {
                    texts.next();
                }
                continue;
            }
            let e = self.subtree_end[r as usize];
            // A frame node's span never ends strictly inside the run:
            // prefix siblings close at or before `run_start`, ancestors
            // of the run close at or after `run_end`.
            debug_assert!(
                e <= run_start || e >= run_end,
                "frame span cuts the record run"
            );
            let collapsed = if e <= run_start { e } else { e - run_len };
            collapsed.hash(&mut h);
            self.hash_node_kind(r, &mut texts, &mut h);
        }

        Some(RecordLayout {
            parent,
            run_start,
            run_end,
            records,
            frame_fingerprint: h.finish(),
        })
    }

    fn visit(&mut self, doc: &Document, id: NodeId) {
        let r = self.by_rank.len() as u32;
        self.rank[id.index()] = r;
        self.by_rank.push(id);
        match &doc.node(id).kind {
            NodeKind::Element(_) => {
                self.elem_postings.push(r);
                let sym = self.tag[id.index()].expect("element interned in pass 1");
                self.tag_postings.entry(sym).or_default().push(r);
            }
            NodeKind::Text(_) => self.text_postings.push(r),
            _ => {}
        }
    }

    /// Pre-order rank of a node.
    #[inline]
    pub fn rank_of(&self, id: NodeId) -> u32 {
        self.rank[id.index()]
    }

    /// The node at a pre-order rank.
    #[inline]
    pub fn node_at(&self, rank: u32) -> NodeId {
        self.by_rank[rank as usize]
    }

    /// The subtree of the node at `rank`, as a half-open rank range
    /// (includes the node itself at `rank`).
    #[inline]
    pub fn subtree(&self, rank: u32) -> Range<u32> {
        rank..self.subtree_end[rank as usize]
    }

    /// Interned tag of a node (`None` for non-elements).
    #[inline]
    pub fn tag_sym(&self, id: NodeId) -> Option<Sym> {
        self.tag[id.index()]
    }

    /// Ranks of elements with the given tag, ascending.
    pub fn tag_postings(&self, sym: Sym) -> &[u32] {
        self.tag_postings.get(&sym).map_or(&[], Vec::as_slice)
    }

    /// Ranks of all element nodes, ascending.
    pub fn element_postings(&self) -> &[u32] {
        &self.elem_postings
    }

    /// Ranks of all text nodes, ascending.
    pub fn text_postings(&self) -> &[u32] {
        &self.text_postings
    }

    /// 1-based position among same-tag siblings (0 for non-elements and
    /// the root). Equals [`Document::same_tag_index`] where both exist.
    #[inline]
    pub fn same_tag_pos(&self, id: NodeId) -> u32 {
        self.same_tag_pos[id.index()]
    }

    /// 1-based position among element siblings (0 = n/a).
    #[inline]
    pub fn elem_pos(&self, id: NodeId) -> u32 {
        self.elem_pos[id.index()]
    }

    /// 1-based position among text-node siblings (0 = n/a).
    #[inline]
    pub fn text_pos(&self, id: NodeId) -> u32 {
        self.text_pos[id.index()]
    }

    /// Attributes of a node, in document order, as `(global name symbol,
    /// per-document value id)` pairs.
    #[inline]
    pub fn attrs(&self, id: NodeId) -> &[(Sym, u32)] {
        let lo = self.attr_offsets[id.index()] as usize;
        let hi = self.attr_offsets[id.index() + 1] as usize;
        &self.attrs[lo..hi]
    }

    /// The per-document id of an attribute value, if any attribute in
    /// this document carries it. Resolve once per (step, document), then
    /// test nodes with [`DocIndex::has_attr`] — integer compares only.
    /// `None` means no node of this document can match the value.
    pub fn attr_value_id(&self, value: &str) -> Option<u32> {
        self.attr_values.get(value).copied()
    }

    /// True if the node carries attribute `name` with exactly the value
    /// behind `value_id` (from [`DocIndex::attr_value_id`]). Integer
    /// compares only — the symbol-table route for attribute predicates
    /// (`Element::attr` remains the string API).
    #[inline]
    pub fn has_attr(&self, id: NodeId, name: Sym, value_id: u32) -> bool {
        self.attrs(id)
            .iter()
            .any(|&(n, v)| n == name && v == value_id)
    }

    /// The document's **structural template fingerprint**: a 64-bit
    /// hash over the pre-order tag/attribute-name skeleton (node kinds,
    /// element tags, attribute names, subtree spans), ignoring text
    /// content and attribute *values*. Computed on first use and cached
    /// in the index.
    ///
    /// Two pages rendered from one script — dealer pages of one site,
    /// say — share a fingerprint whenever their trees are identical up
    /// to the text and attribute values filled into the template, and
    /// trees *with* identical skeletons share identical pre-order rank
    /// topology: ranks, subtree spans, posting lists and sibling
    /// positions all coincide, which is what lets the batch xpath
    /// engine replay one page's bare traversals onto its template
    /// siblings (`aw_xpath::TemplateCache`).
    ///
    /// The converse is probabilistic, not exact: this is an unkeyed
    /// 64-bit hash, so two *different* skeletons can collide (≈ 2⁻⁶⁴
    /// per pair; birthday-bounded across a corpus) and equality is not
    /// verified structurally — consumers that would be corrupted by a
    /// collision rather than merely slowed must compare skeletons
    /// themselves. Only valid for comparisons within one process (tag
    /// symbols are interner-assigned).
    pub fn template_fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| self.compute_fingerprint())
    }

    /// The page's **record layout**, if it has one: the contiguous run
    /// of repeated child subtrees covering the most ranks anywhere in
    /// the page — the record region of a listing page — with a
    /// fingerprint per record subtree and one for the surrounding frame.
    /// Computed on first use and cached; consumers that never ask pay
    /// nothing.
    ///
    /// Detection is structural: per parent, children whose subtree
    /// skeleton hash recurs among their siblings form the core of a run,
    /// adjacent children with the same root tag are absorbed (a record
    /// variant occurring once — an optional field dropped — must not
    /// split the region), and runs are ranked by the rank span their
    /// *recurring* members cover. At least two records, two of which
    /// repeat, are required; `None` otherwise.
    ///
    /// Pages rendered from one listing script with *different record
    /// counts* (or per-record optional fields toggled) get different
    /// whole-page fingerprints but equal
    /// [`RecordLayout::frame_fingerprint`]s, and their per-record
    /// [`RecordSpan::fingerprint`]s match record-for-record wherever the
    /// record skeletons do — which is what lets the template cache
    /// replay a page frame and stitch record traces per matching record
    /// (`aw_xpath::TemplateCache`). Like the whole-page fingerprint,
    /// equality is probabilistic (unkeyed 64-bit hashes).
    pub fn record_layout(&self) -> Option<&RecordLayout> {
        self.record_layout
            .get_or_init(|| self.compute_record_layout())
            .as_ref()
    }

    /// True iff arena order equals pre-order rank order — i.e.
    /// [`DocIndex::node_at`] is strictly increasing in the rank.
    ///
    /// Parser-built documents always allocate nodes in document order,
    /// so this holds for every crawled page; only builder-constructed
    /// documents with interleaved appends break it. Consumers that
    /// materialize rank-ascending node sets into `NodeId` lists (the
    /// compiled xpath engines, template-cache replay) use this to skip
    /// the per-page sort: a rank-sorted set maps to an already-sorted
    /// `NodeId` list.
    #[inline]
    pub fn ranks_monotone(&self) -> bool {
        self.monotone
    }
}

impl Document {
    /// The document's evaluation index, built on first use.
    ///
    /// The cache is invalidated by [`Document::append`] and friends;
    /// cloning a document clones any already-built index.
    pub fn index(&self) -> &DocIndex {
        self.index_cache().get_or_init(|| DocIndex::build(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::intern;
    use crate::parser::parse;

    #[test]
    fn poly_mul_mod_matches_wide_arithmetic() {
        let p = POLY_P as u128;
        for &(a, b) in &[
            (0u64, 0u64),
            (1, POLY_P - 1),
            (POLY_P - 1, POLY_P - 1),
            (
                0x1234_5678_9abc_def0 % POLY_P,
                0x0fed_cba9_8765_4321 % POLY_P,
            ),
            (poly_key(), poly_key()),
        ] {
            let expect = ((a as u128) * (b as u128) % p) as u64;
            assert_eq!(poly_mul_mod(a, b), expect, "a={a:#x} b={b:#x}");
        }
    }

    #[test]
    fn poly_hasher_is_split_invariant() {
        // The hash must depend on the byte stream alone, not on how
        // callers batch their `write` calls (the chunked bulk path and
        // the pending-block top-up must compose seamlessly).
        let data = b"a moderately long attribute value, 47 bytes huh";
        let whole = {
            let mut h = PolyHasher::default();
            h.write(data);
            h.finish()
        };
        for split in 0..data.len() {
            let mut h = PolyHasher::default();
            h.write(&data[..split]);
            h.write(&data[split..]);
            assert_eq!(h.finish(), whole, "split at {split}");
        }
        let mut bytewise = PolyHasher::default();
        for b in data {
            bytewise.write(std::slice::from_ref(b));
        }
        assert_eq!(bytewise.finish(), whole);
    }

    #[test]
    fn poly_hasher_separates_prefix_extensions_and_is_stable() {
        use std::hash::BuildHasher;
        let build = BuildHasherDefault::<PolyHasher>::default();
        let h = |s: &str| build.hash_one(s);
        // Same process, same key: equal inputs agree, and the
        // trailing-byte extensions a plain `Σ b_i x^i` conflates stay
        // distinct.
        assert_eq!(h("dealerlinks"), h("dealerlinks"));
        assert_ne!(h("a"), h("a\0"));
        assert_ne!(h("a\0"), h("a\0\0"));
        assert_ne!(h(""), h("\0"));
        // Short-string sanity: all 2-byte ASCII values hash distinct
        // (collisions at this scale would mean the fold is broken, not
        // bad luck — the family's bound is 2/2^61 per pair).
        let mut seen = std::collections::HashSet::new();
        for a in 0u8..128 {
            for b in 0u8..128 {
                assert!(seen.insert(build.hash_one([a, b])), "collision at {a},{b}");
            }
        }
    }

    #[test]
    fn ranks_are_preorder_and_spans_are_contiguous() {
        let doc = parse("<div><p>a</p><p>b<i>c</i></p></div><span>d</span>");
        let idx = doc.index();
        // Parser-built documents allocate in document order.
        for id in doc.ids() {
            assert_eq!(idx.node_at(idx.rank_of(id)), id);
        }
        let pre: Vec<NodeId> = doc.preorder_all().collect();
        let by_rank: Vec<NodeId> = (0..doc.len() as u32).map(|r| idx.node_at(r)).collect();
        assert_eq!(pre, by_rank);
        // Subtree span of any node covers exactly its preorder descendants.
        for id in doc.ids() {
            let span = idx.subtree(idx.rank_of(id));
            let via_span: Vec<NodeId> = span.map(|r| idx.node_at(r)).collect();
            let via_walk: Vec<NodeId> = doc.preorder(id).collect();
            assert_eq!(via_span, via_walk, "span of {id:?}");
        }
    }

    #[test]
    fn subtree_spans_on_builder_docs_with_interleaved_append() {
        // Arena order ≠ preorder: a child appended to an earlier parent
        // after a sibling subtree was built.
        let mut d = Document::new();
        let a = d.append_element(NodeId::ROOT, "a", vec![]);
        let c = d.append_element(NodeId::ROOT, "c", vec![]);
        let b = d.append_element(a, "b", vec![]); // arena: a, c, b
        let idx = d.index();
        assert_eq!(idx.rank_of(NodeId::ROOT), 0);
        assert_eq!(idx.rank_of(a), 1);
        assert_eq!(idx.rank_of(b), 2, "b is inside a's subtree");
        assert_eq!(idx.rank_of(c), 3);
        assert_eq!(idx.subtree(idx.rank_of(a)), 1..3);
        assert_eq!(idx.subtree(idx.rank_of(c)), 3..4);
    }

    #[test]
    fn posting_lists_are_sorted_and_complete() {
        let doc =
            parse("<table><tr><td>1</td><td>2</td></tr><tr><td>3</td></tr></table><td>stray</td>");
        let idx = doc.index();
        let td = intern("td");
        let tds = idx.tag_postings(td);
        assert_eq!(tds.len(), 4);
        assert!(tds.windows(2).all(|w| w[0] < w[1]));
        for &r in tds {
            assert_eq!(doc.tag(idx.node_at(r)), Some("td"));
        }
        // Every element is in exactly one tag posting list.
        let total: usize = ["table", "tr", "td"]
            .iter()
            .map(|t| idx.tag_postings(intern(t)).len())
            .sum();
        assert_eq!(total, idx.element_postings().len());
        assert_eq!(idx.text_postings().len(), 4);
        assert_eq!(idx.tag_postings(intern("never-a-tag-xq")), &[] as &[u32]);
    }

    #[test]
    fn cached_positions_match_document_queries() {
        let doc = parse("<tr><td>a</td><span>x</span><td>b</td>tail<td>c</td></tr>");
        let idx = doc.index();
        for id in doc.ids() {
            if doc.is_element(id) {
                assert_eq!(
                    idx.same_tag_pos(id) as usize,
                    doc.same_tag_index(id).unwrap_or(0),
                    "same-tag position of {id:?}"
                );
            }
        }
        // Element and text positions count their own kinds only.
        let tr = doc.children(NodeId::ROOT)[0];
        let kids = doc.children(tr);
        assert_eq!(idx.elem_pos(kids[0]), 1); // td a
        assert_eq!(idx.elem_pos(kids[1]), 2); // span
        assert_eq!(idx.elem_pos(kids[2]), 3); // td b
        assert_eq!(idx.text_pos(kids[3]), 1); // "tail"
        assert_eq!(idx.elem_pos(kids[4]), 4); // td c
        assert_eq!(idx.same_tag_pos(kids[4]), 3); // third td
    }

    #[test]
    fn attribute_table_roundtrips() {
        let doc = parse("<div class='content' id='main'><p class='x'>t</p></div>");
        let idx = doc.index();
        let div = doc.children(NodeId::ROOT)[0];
        let p = doc.children(div)[0];
        let vid = |v: &str| {
            idx.attr_value_id(v)
                .unwrap_or_else(|| panic!("value {v} indexed"))
        };
        assert!(idx.has_attr(div, intern("class"), vid("content")));
        assert!(idx.has_attr(div, intern("id"), vid("main")));
        assert!(!idx.has_attr(div, intern("class"), vid("x")));
        assert!(idx.has_attr(p, intern("class"), vid("x")));
        assert_eq!(idx.attr_value_id("absent-value"), None);
        assert_eq!(idx.attrs(div).len(), 2);
        assert_eq!(idx.attrs(p).len(), 1);
        let text = doc.children(p)[0];
        assert!(idx.attrs(text).is_empty());
    }

    #[test]
    fn attribute_values_are_not_globally_interned() {
        // Unbounded per-crawl vocabularies (hrefs, ids) must stay out of
        // the leaked process-global table.
        let value = "https://example.test/page-a41f9c02?token=unique";
        let doc = parse(&format!("<a href='{value}'>x</a>"));
        assert!(doc.index().attr_value_id(value).is_some());
        assert_eq!(
            crate::interner::lookup(value),
            None,
            "value leaked into global interner"
        );
    }

    #[test]
    fn index_cache_invalidated_by_append() {
        let mut d = Document::new();
        let div = d.append_element(NodeId::ROOT, "div", vec![]);
        assert_eq!(d.index().element_postings().len(), 1);
        d.append_element(div, "p", vec![]);
        assert_eq!(d.index().element_postings().len(), 2, "stale index served");
    }

    #[test]
    fn empty_document_indexes() {
        let d = Document::default();
        let idx = d.index();
        assert!(idx.element_postings().is_empty());
        assert!(idx.text_postings().is_empty());
    }

    fn fp(html: &str) -> u64 {
        parse(html).index().template_fingerprint()
    }

    #[test]
    fn fingerprint_ignores_text_and_attribute_values() {
        // Two renderings of one template: same skeleton, different text
        // and attribute values.
        let a = fp("<div class='list'><tr><td><u>ALPHA</u><br>1 Elm</td></tr></div>");
        let b = fp("<div class='grid'><tr><td><u>OMEGA STORES</u><br>99 Oak Ave</td></tr></div>");
        assert_eq!(
            a, b,
            "text/value-only differences must not change the fingerprint"
        );
    }

    #[test]
    fn fingerprint_detects_structural_mutations() {
        let base = fp("<div class='l'><td><u>A</u></td></div>");
        // Different tag.
        assert_ne!(base, fp("<div class='l'><td><b>A</b></td></div>"));
        // Different attribute *name* (values are ignored, names are not).
        assert_ne!(base, fp("<div id='l'><td><u>A</u></td></div>"));
        // Extra attribute.
        assert_ne!(base, fp("<div class='l' id='x'><td><u>A</u></td></div>"));
        // An added text node is a structural change, not a text edit.
        assert_ne!(base, fp("<div class='l'><td><u>A</u>tail</td></div>"));
        // An added element.
        assert_ne!(base, fp("<div class='l'><td><u>A</u><br></td></div>"));
    }

    #[test]
    fn fingerprint_classifies_comments_apart_from_text() {
        // The lazy computation reconstructs node kinds from the index's
        // own tables; comments (in neither posting list) must neither
        // alias text nodes nor disappear.
        let comment = fp("<div><!--note--></div>");
        let text = fp("<div>note</div>");
        let empty = fp("<div></div>");
        assert_ne!(comment, text);
        assert_ne!(comment, empty);
        // Comment *content* is ignored like text content.
        assert_eq!(comment, fp("<div><!--other words--></div>"));
    }

    #[test]
    fn fingerprint_distinguishes_tree_shape_not_just_preorder_sequence() {
        // Both documents list div, p, span in pre-order; only the nesting
        // differs. Subtree spans must separate them.
        let nested = fp("<div><p><span>x</span></p></div>");
        let flat = fp("<div><p></p><span>x</span></div>");
        assert_ne!(nested, flat);
    }

    #[test]
    fn fingerprint_invalidated_by_append() {
        let mut d = Document::new();
        let div = d.append_element(NodeId::ROOT, "div", vec![]);
        let before = d.index().template_fingerprint();
        d.append_element(div, "p", vec![]);
        let after = d.index().template_fingerprint();
        assert_ne!(before, after, "mutation must re-fingerprint");
    }

    #[test]
    fn ranks_monotone_tracks_construction_order() {
        // Parser-built documents allocate in document order.
        let doc = parse("<div><p>a</p><p>b<i>c</i></p></div><span>d</span>");
        assert!(doc.index().ranks_monotone());
        // Builder docs in append order stay monotone…
        let mut d = Document::new();
        let a = d.append_element(NodeId::ROOT, "a", vec![]);
        d.append_element(a, "b", vec![]);
        d.append_element(NodeId::ROOT, "c", vec![]);
        assert!(d.index().ranks_monotone());
        // …but interleaved appends (arena order ≠ preorder) do not.
        let mut d = Document::new();
        let a = d.append_element(NodeId::ROOT, "a", vec![]);
        d.append_element(NodeId::ROOT, "c", vec![]);
        d.append_element(a, "b", vec![]); // arena: a, c, b — preorder: a, b, c
        assert!(!d.index().ranks_monotone());
        // Degenerate documents are trivially monotone.
        assert!(Document::default().index().ranks_monotone());
    }

    /// A listing-shaped page: chrome (nav, heading, footer) around a
    /// container of repeated records; `phones` toggles the optional
    /// trailing field per record.
    fn listing(n_records: usize, phones: &[bool]) -> Document {
        let mut html = String::from(
            "<div class='nav'><a href='/a'>A</a><a href='/b'>B</a></div><h1>Dealers</h1>\
             <table class='stores'>",
        );
        for i in 0..n_records {
            html.push_str(&format!("<tr><td><u>NAME {i}</u><br>{i} Elm St</td>"));
            if phones.get(i).copied().unwrap_or(true) {
                html.push_str(&format!("<td>555-000{i}</td>"));
            }
            html.push_str("</tr>");
        }
        html.push_str("</table><div class='foot'>contact</div>");
        parse(&html)
    }

    #[test]
    fn record_layout_detects_the_listing_run() {
        let doc = listing(3, &[true, true, true]);
        let idx = doc.index();
        let layout = idx.record_layout().expect("repeated records detected");
        assert_eq!(layout.records.len(), 3);
        // The parent is the <table class='stores'> container.
        assert_eq!(doc.tag(idx.node_at(layout.parent)), Some("table"));
        // Records tile the run exactly and carry one shared fingerprint.
        assert_eq!(layout.records[0].start, layout.run_start);
        assert_eq!(layout.records.last().unwrap().end, layout.run_end);
        for w in layout.records.windows(2) {
            assert_eq!(w[0].end, w[1].start, "records must tile the run");
            assert_eq!(
                w[0].fingerprint, w[1].fingerprint,
                "identical records hash equal"
            );
        }
        for rec in &layout.records {
            assert_eq!(doc.tag(idx.node_at(rec.start)), Some("tr"));
        }
    }

    #[test]
    fn record_layout_absorbs_a_singleton_variant() {
        // The middle record misses its optional field: its subtree hash
        // occurs once, but the same root tag keeps it inside the run.
        let doc = listing(3, &[true, false, true]);
        let layout = doc.index().record_layout().expect("layout");
        assert_eq!(layout.records.len(), 3, "variant must not split the run");
        assert_eq!(layout.records[0].fingerprint, layout.records[2].fingerprint);
        assert_ne!(layout.records[0].fingerprint, layout.records[1].fingerprint);
    }

    #[test]
    fn frame_fingerprint_is_shared_across_record_counts() {
        let a = listing(2, &[true, true]);
        let b = listing(5, &[true; 5]);
        let (la, lb) = (
            a.index().record_layout().unwrap().clone(),
            b.index().record_layout().unwrap().clone(),
        );
        assert_ne!(
            a.index().template_fingerprint(),
            b.index().template_fingerprint(),
            "whole-page fingerprints must differ across counts"
        );
        assert_eq!(
            la.frame_fingerprint, lb.frame_fingerprint,
            "frames must match across counts"
        );
        assert_eq!(la.run_start, lb.run_start);
        // Records hash identically across pages (position-independent).
        assert_eq!(la.records[0].fingerprint, lb.records[4].fingerprint);
        // A phone-less variant on another page still matches its twin.
        let c = listing(4, &[true, false, true, false]);
        let lc = c.index().record_layout().unwrap();
        assert_eq!(la.frame_fingerprint, lc.frame_fingerprint);
        assert_eq!(lc.records[1].fingerprint, lc.records[3].fingerprint);
        assert_eq!(lc.records[0].fingerprint, la.records[0].fingerprint);
    }

    #[test]
    fn frame_fingerprint_tracks_chrome_changes() {
        let base = listing(3, &[true; 3]);
        // Same records, different chrome: an extra nav link.
        let other = parse(
            &crate::serialize(&base).replace("<h1>Dealers</h1>", "<h1>Dealers</h1><p>promo</p>"),
        );
        let (lb, lo) = (
            base.index().record_layout().unwrap().clone(),
            other.index().record_layout().unwrap().clone(),
        );
        assert_ne!(lb.frame_fingerprint, lo.frame_fingerprint);
    }

    #[test]
    fn record_layout_requires_repetition() {
        assert!(parse("<div><p>a</p><span>b</span><h1>c</h1></div>")
            .index()
            .record_layout()
            .is_none());
        assert!(parse("<p>only</p>").index().record_layout().is_none());
        assert!(Document::default().index().record_layout().is_none());
    }

    #[test]
    fn record_layout_prefers_the_widest_repeated_region() {
        // Both the nav links and the records repeat; the records cover
        // more ranks, so they win.
        let doc = listing(2, &[true, true]);
        let idx = doc.index();
        let layout = idx.record_layout().unwrap();
        assert_eq!(doc.tag(idx.node_at(layout.records[0].start)), Some("tr"));
    }

    #[test]
    fn fingerprint_matches_across_builder_and_parser_construction() {
        // Same tree, different arena orders (builder interleaves appends):
        // the fingerprint hashes rank order, so construction order is
        // invisible.
        let mut d = Document::new();
        let a = d.append_element(NodeId::ROOT, "a", vec![]);
        d.append_element(NodeId::ROOT, "c", vec![]);
        d.append_element(a, "b", vec![]); // arena: a, c, b — preorder: a, b, c
        assert_eq!(
            d.index().template_fingerprint(),
            fp("<a><b></b></a><c></c>")
        );
    }
}
