//! Serialization of a [`Document`] back to HTML.
//!
//! Besides plain serialization, [`serialize_with_spans`] records the byte
//! range each **text node** occupies in the output string. The LR (WIEN)
//! inductor works on the flat character representation of a page, and the
//! spans are the bridge back to DOM nodes: an LR-extracted span maps to the
//! set of text nodes it fully contains, so LR wrappers can be ranked by the
//! same node-set scoring as xpath wrappers (§6: "the score of a wrapper only
//! depends on its output").

use crate::arena::{Document, NodeId, NodeKind};
use crate::entities::escape;
use crate::parser::is_void;

/// The byte range of one text node in a serialized page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TextSpan {
    /// The text node.
    pub node: NodeId,
    /// Start byte offset (inclusive) in the serialized string.
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
}

/// A serialized page together with the locations of its text nodes.
#[derive(Clone, Debug)]
pub struct SerializedPage {
    /// The HTML string.
    pub html: String,
    /// One span per text node, in document order.
    pub spans: Vec<TextSpan>,
}

impl SerializedPage {
    /// Text nodes whose spans lie entirely within `[start, end)`.
    pub fn nodes_in_range(&self, start: usize, end: usize) -> Vec<NodeId> {
        self.spans
            .iter()
            .filter(|s| s.start >= start && s.end <= end)
            .map(|s| s.node)
            .collect()
    }

    /// The span of a specific text node, if it exists on this page.
    pub fn span_of(&self, node: NodeId) -> Option<TextSpan> {
        self.spans.iter().copied().find(|s| s.node == node)
    }
}

/// Serializes the document to HTML.
pub fn serialize(doc: &Document) -> String {
    serialize_with_spans(doc).html
}

/// Serializes the document and records text-node byte spans.
pub fn serialize_with_spans(doc: &Document) -> SerializedPage {
    let mut page = SerializedPage {
        html: String::new(),
        spans: Vec::new(),
    };
    for &c in doc.children(NodeId::ROOT) {
        write_node(doc, c, &mut page);
    }
    page
}

fn write_node(doc: &Document, id: NodeId, page: &mut SerializedPage) {
    match &doc.node(id).kind {
        NodeKind::Document => unreachable!("root is never a child"),
        NodeKind::Text(t) => {
            // Raw-text elements (script/style) are not entity-decoded by
            // the tokenizer, so they must not be escaped here either —
            // otherwise serialize∘parse would not be idempotent.
            let raw_parent = matches!(
                doc.parent(id).and_then(|p| doc.tag(p)),
                Some("script" | "style")
            );
            let start = page.html.len();
            if raw_parent {
                page.html.push_str(t);
            } else {
                page.html.push_str(&escape(t));
            }
            page.spans.push(TextSpan {
                node: id,
                start,
                end: page.html.len(),
            });
        }
        NodeKind::Comment(c) => {
            page.html.push_str("<!--");
            page.html.push_str(c);
            page.html.push_str("-->");
        }
        NodeKind::Element(e) => {
            page.html.push('<');
            page.html.push_str(&e.tag);
            for (name, value) in &e.attrs {
                page.html.push(' ');
                page.html.push_str(name);
                page.html.push_str("=\"");
                page.html.push_str(&escape(value));
                page.html.push('"');
            }
            page.html.push('>');
            if is_void(&e.tag) {
                return;
            }
            for &c in doc.children(id) {
                write_node(doc, c, page);
            }
            page.html.push_str("</");
            page.html.push_str(&e.tag);
            page.html.push('>');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn round_trips_simple_markup() {
        // Note: the parser trims whitespace at text-node boundaries, so the
        // round-trip is exact only for already-normalized markup.
        let html = "<div class=\"x\"><p>hello<b>world</b></p><br></div>";
        let doc = parse(html);
        assert_eq!(serialize(&doc), html);
    }

    #[test]
    fn reparse_is_stable() {
        // serialize(parse(s)) is a fixed point under re-parsing.
        let messy = "<UL><LI>one<LI>two<br></UL>";
        let once = serialize(&parse(messy));
        let twice = serialize(&parse(&once));
        assert_eq!(once, twice);
        assert_eq!(once, "<ul><li>one</li><li>two<br></li></ul>");
    }

    #[test]
    fn spans_locate_text_nodes() {
        let doc = parse("<td><u>PORTER</u><br>MS 38652</td>");
        let page = serialize_with_spans(&doc);
        assert_eq!(page.spans.len(), 2);
        for span in &page.spans {
            let slice = &page.html[span.start..span.end];
            assert_eq!(slice, doc.text(span.node).unwrap());
        }
    }

    #[test]
    fn nodes_in_range_is_containment() {
        let doc = parse("<td>aaa</td><td>bbb</td><td>ccc</td>");
        let page = serialize_with_spans(&doc);
        let s1 = page.spans[1];
        // Exactly covering the second text node.
        assert_eq!(page.nodes_in_range(s1.start, s1.end), vec![s1.node]);
        // Covering everything.
        assert_eq!(page.nodes_in_range(0, page.html.len()).len(), 3);
        // Partially overlapping: excluded.
        assert!(page.nodes_in_range(s1.start + 1, s1.end).is_empty());
    }

    #[test]
    fn entities_escaped_in_output() {
        let doc = parse("<p title=\"a&amp;b\">x &lt; y</p>");
        let out = serialize(&doc);
        assert_eq!(out, "<p title=\"a&amp;b\">x &lt; y</p>");
    }

    #[test]
    fn span_of_finds_node() {
        let doc = parse("<p>one</p><p>two</p>");
        let page = serialize_with_spans(&doc);
        let second = doc.text_nodes()[1];
        let span = page.span_of(second).unwrap();
        assert_eq!(&page.html[span.start..span.end], "two");
        assert!(page.span_of(NodeId::ROOT).is_none());
    }
}
