//! A lenient HTML tokenizer.
//!
//! Produces a flat stream of [`Token`]s from raw markup. Lenience rules
//! follow what tidy-style cleaners accept in the wild:
//!
//! * tag and attribute names are ASCII-lower-cased;
//! * attribute values may be double-quoted, single-quoted or bare;
//! * `<script>` and `<style>` bodies are consumed as raw text up to the
//!   matching close tag;
//! * comments (`<!-- -->`), doctypes and processing instructions are
//!   recognized and surfaced or skipped;
//! * a stray `<` that does not start a tag is treated as text.

use crate::entities::decode;
use std::collections::VecDeque;

/// One lexical token of an HTML document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// `<name a="v">`; `self_closing` records a trailing `/`.
    StartTag {
        name: String,
        attrs: Vec<(String, String)>,
        self_closing: bool,
    },
    /// `</name>`.
    EndTag { name: String },
    /// A run of character data, entity-decoded, whitespace preserved.
    Text(String),
    /// `<!-- body -->`.
    Comment(String),
    /// `<!DOCTYPE ...>` — surfaced so callers can skip it knowingly.
    Doctype(String),
}

/// Tokenizes `input` into a vector of [`Token`]s.
///
/// Convenience collector over the pull API ([`Tokenizer::next_token`]);
/// token-for-token identical to driving the tokenizer directly.
pub fn tokenize(input: &str) -> Vec<Token> {
    let mut tk = Tokenizer::new(input);
    let mut out = Vec::new();
    while let Some(token) = tk.next_token() {
        out.push(token);
    }
    out
}

/// A pull-based tokenizer: call [`Tokenizer::next_token`] until `None`.
///
/// Streaming consumers (`crate::stream`) drive this directly so tokens are
/// consumed as they are produced, without materializing the whole token
/// vector that [`tokenize`] returns.
pub struct Tokenizer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    /// Tokens already produced but not yet pulled. A single scan step can
    /// yield several tokens (pending text + tag, or a raw-text element's
    /// start tag + body + end tag), so extras queue here.
    pending: VecDeque<Token>,
}

impl<'a> Tokenizer<'a> {
    /// Creates a tokenizer over `input`.
    pub fn new(input: &'a str) -> Self {
        Tokenizer {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            pending: VecDeque::new(),
        }
    }

    /// Produces the next token, or `None` at end of input.
    pub fn next_token(&mut self) -> Option<Token> {
        if let Some(token) = self.pending.pop_front() {
            return Some(token);
        }
        let text_start = self.pos;
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'<' {
                let tag_start = self.pos;
                if let Some(token) = self.try_tag() {
                    let raw = raw_text_tag(&token);
                    self.pending.push_back(token);
                    if let Some(tag) = raw {
                        self.consume_raw_text(tag);
                    }
                    // Text pending before the tag comes out first.
                    if let Some(text) = self.text_token(text_start, tag_start) {
                        return Some(text);
                    }
                    return self.pending.pop_front();
                } else {
                    // Not a tag; '<' is literal text.
                    self.pos += 1;
                }
            } else {
                self.pos += 1;
            }
        }
        self.text_token(text_start, self.bytes.len())
    }

    fn text_token(&self, from: usize, to: usize) -> Option<Token> {
        (from < to).then(|| Token::Text(decode(&self.input[from..to])))
    }

    /// Attempts to consume a tag starting at `self.pos` (which is `<`).
    /// On success advances `self.pos` past the tag and returns the token.
    /// On failure leaves `self.pos` unchanged and returns `None`.
    fn try_tag(&mut self) -> Option<Token> {
        let start = self.pos;
        debug_assert_eq!(self.bytes[start], b'<');
        let next = *self.bytes.get(start + 1)?;

        if next == b'!' {
            return self.consume_markup_declaration(start);
        }
        if next == b'?' {
            // Processing instruction: skip to '>'.
            let end = self.find_byte(start, b'>')?;
            self.pos = end + 1;
            return Some(Token::Comment(self.input[start + 2..end].to_string()));
        }
        if next == b'/' {
            return self.consume_end_tag(start);
        }
        if !next.is_ascii_alphabetic() {
            return None;
        }
        self.consume_start_tag(start)
    }

    fn consume_markup_declaration(&mut self, start: usize) -> Option<Token> {
        let rest = &self.input[start..];
        if rest.starts_with("<!--") {
            let end = self.input[start + 4..].find("-->").map(|i| start + 4 + i);
            match end {
                Some(e) => {
                    let body = self.input[start + 4..e].to_string();
                    self.pos = e + 3;
                    Some(Token::Comment(body))
                }
                None => {
                    // Unterminated comment swallows the rest of the input.
                    let body = self.input[start + 4..].to_string();
                    self.pos = self.bytes.len();
                    Some(Token::Comment(body))
                }
            }
        } else {
            // <!DOCTYPE ...> or other declaration: up to '>'.
            let end = self.find_byte(start, b'>')?;
            let body = self.input[start + 2..end].to_string();
            self.pos = end + 1;
            Some(Token::Doctype(body))
        }
    }

    fn consume_end_tag(&mut self, start: usize) -> Option<Token> {
        let mut i = start + 2;
        let name_start = i;
        while i < self.bytes.len() && is_name_byte(self.bytes[i]) {
            i += 1;
        }
        if i == name_start {
            return None; // "</>" or "</ ..." — not a tag.
        }
        let name = self.input[name_start..i].to_ascii_lowercase();
        // Skip anything up to '>' (attributes on end tags are ignored).
        let end = self.find_byte(i.saturating_sub(1), b'>')?;
        self.pos = end + 1;
        Some(Token::EndTag { name })
    }

    fn consume_start_tag(&mut self, start: usize) -> Option<Token> {
        let mut i = start + 1;
        let name_start = i;
        while i < self.bytes.len() && is_name_byte(self.bytes[i]) {
            i += 1;
        }
        let name = self.input[name_start..i].to_ascii_lowercase();
        let mut attrs = Vec::new();
        let mut self_closing = false;

        loop {
            i = self.skip_ws(i);
            if i >= self.bytes.len() {
                return None; // Unterminated tag: treat '<' as text.
            }
            match self.bytes[i] {
                b'>' => {
                    self.pos = i + 1;
                    return Some(Token::StartTag {
                        name,
                        attrs,
                        self_closing,
                    });
                }
                b'/' => {
                    self_closing = true;
                    i += 1;
                }
                _ => {
                    let (attr, ni) = self.consume_attribute(i)?;
                    if let Some(a) = attr {
                        attrs.push(a);
                    }
                    i = ni;
                }
            }
        }
    }

    /// Consumes one `name[=value]` attribute starting at non-ws `i`.
    fn consume_attribute(&mut self, mut i: usize) -> Option<(Option<(String, String)>, usize)> {
        let name_start = i;
        while i < self.bytes.len()
            && !matches!(
                self.bytes[i],
                b'=' | b'>' | b'/' | b' ' | b'\t' | b'\n' | b'\r'
            )
        {
            i += 1;
        }
        if i == name_start {
            // Stray byte (e.g. a quote): skip it to guarantee progress.
            return Some((None, i + 1));
        }
        let name = self.input[name_start..i].to_ascii_lowercase();
        let j = self.skip_ws(i);
        if j >= self.bytes.len() || self.bytes[j] != b'=' {
            return Some((Some((name, String::new())), i));
        }
        i = self.skip_ws(j + 1);
        if i >= self.bytes.len() {
            return None;
        }
        let value = match self.bytes[i] {
            q @ (b'"' | b'\'') => {
                let vstart = i + 1;
                let vend = self.find_byte(i, q.to_owned())?;
                i = vend + 1;
                decode(&self.input[vstart..vend])
            }
            _ => {
                let vstart = i;
                while i < self.bytes.len()
                    && !matches!(self.bytes[i], b'>' | b' ' | b'\t' | b'\n' | b'\r')
                {
                    i += 1;
                }
                decode(&self.input[vstart..i])
            }
        };
        Some((Some((name, value)), i))
    }

    /// Consumes raw text for `<script>`/`<style>` up to the matching end tag
    /// (exclusive); emits it as a single Text token *without* entity decoding,
    /// then emits the end tag.
    fn consume_raw_text(&mut self, tag: &str) {
        let close = format!("</{tag}");
        let hay = &self.input[self.pos..];
        let lower = hay.to_ascii_lowercase();
        match lower.find(&close) {
            Some(rel) => {
                if rel > 0 {
                    self.pending.push_back(Token::Text(hay[..rel].to_string()));
                }
                // Skip past "</tag ... >".
                let after = self.pos + rel;
                let end = self.input[after..]
                    .find('>')
                    .map(|i| after + i + 1)
                    .unwrap_or(self.bytes.len());
                self.pos = end;
                self.pending.push_back(Token::EndTag {
                    name: tag.to_string(),
                });
            }
            None => {
                if !hay.is_empty() {
                    self.pending.push_back(Token::Text(hay.to_string()));
                }
                self.pos = self.bytes.len();
            }
        }
    }

    fn skip_ws(&self, mut i: usize) -> usize {
        while i < self.bytes.len() && self.bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        i
    }

    /// Index of the first `b` at or after `from + 1`.
    fn find_byte(&self, from: usize, b: u8) -> Option<usize> {
        self.bytes[from + 1..]
            .iter()
            .position(|&x| x == b)
            .map(|i| from + 1 + i)
    }
}

fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b':'
}

/// If `token` opens a raw-text element, returns its tag name.
fn raw_text_tag(token: &Token) -> Option<&'static str> {
    match token {
        Token::StartTag {
            name,
            self_closing: false,
            ..
        } => match name.as_str() {
            "script" => Some("script"),
            "style" => Some("style"),
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(name: &str, attrs: &[(&str, &str)]) -> Token {
        Token::StartTag {
            name: name.into(),
            attrs: attrs
                .iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect(),
            self_closing: false,
        }
    }

    #[test]
    fn simple_tags_and_text() {
        let t = tokenize("<div>hello</div>");
        assert_eq!(
            t,
            vec![
                start("div", &[]),
                Token::Text("hello".into()),
                Token::EndTag { name: "div".into() }
            ]
        );
    }

    #[test]
    fn attributes_quoted_and_bare() {
        let t = tokenize(r#"<a href="x" CLASS='y' id=z disabled>"#);
        match &t[0] {
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                assert_eq!(name, "a");
                assert!(!self_closing);
                assert_eq!(
                    attrs,
                    &vec![
                        ("href".to_string(), "x".to_string()),
                        ("class".to_string(), "y".to_string()),
                        ("id".to_string(), "z".to_string()),
                        ("disabled".to_string(), String::new()),
                    ]
                );
            }
            other => panic!("expected start tag, got {other:?}"),
        }
    }

    #[test]
    fn self_closing_and_case_folding() {
        let t = tokenize("<BR/><IMG SRC='a.png' />");
        assert_eq!(
            t[0],
            Token::StartTag {
                name: "br".into(),
                attrs: vec![],
                self_closing: true
            }
        );
        match &t[1] {
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                assert_eq!(name, "img");
                assert_eq!(attrs[0], ("src".to_string(), "a.png".to_string()));
                assert!(self_closing);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comments_and_doctype() {
        let t = tokenize("<!DOCTYPE html><!-- note --><p>x</p>");
        assert_eq!(t[0], Token::Doctype("DOCTYPE html".into()));
        assert_eq!(t[1], Token::Comment(" note ".into()));
        assert_eq!(t[2], start("p", &[]));
    }

    #[test]
    fn unterminated_comment() {
        let t = tokenize("a<!-- oops");
        assert_eq!(t[0], Token::Text("a".into()));
        assert_eq!(t[1], Token::Comment(" oops".into()));
    }

    #[test]
    fn script_raw_text_not_parsed() {
        let t = tokenize("<script>if (a<b) { x(\"<div>\"); }</script><p>y</p>");
        assert_eq!(t[0], start("script", &[]));
        assert_eq!(t[1], Token::Text("if (a<b) { x(\"<div>\"); }".into()));
        assert_eq!(
            t[2],
            Token::EndTag {
                name: "script".into()
            }
        );
        assert_eq!(t[3], start("p", &[]));
    }

    #[test]
    fn style_raw_text() {
        let t = tokenize("<style>a > b { color: red }</style>");
        assert_eq!(t[1], Token::Text("a > b { color: red }".into()));
        assert_eq!(
            t[2],
            Token::EndTag {
                name: "style".into()
            }
        );
    }

    #[test]
    fn stray_lt_is_text() {
        let t = tokenize("2 < 3 and <5> ok");
        // "<5" is not a valid tag name start, so '<' is literal.
        assert_eq!(t.len(), 1);
        assert_eq!(t[0], Token::Text("2 < 3 and <5> ok".into()));
    }

    #[test]
    fn entities_in_text_and_attrs() {
        let t = tokenize(r#"<a title="Tom &amp; Jerry">R&amp;B</a>"#);
        match &t[0] {
            Token::StartTag { attrs, .. } => {
                assert_eq!(attrs[0].1, "Tom & Jerry");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(t[1], Token::Text("R&B".into()));
    }

    #[test]
    fn end_tag_with_junk_attrs() {
        let t = tokenize("<div></div class='x'>");
        assert_eq!(t[1], Token::EndTag { name: "div".into() });
    }

    #[test]
    fn unterminated_tag_is_text() {
        let t = tokenize("<div attr");
        assert_eq!(t.len(), 1);
        assert_eq!(t[0], Token::Text("<div attr".into()));
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
    }

    #[test]
    fn pull_api_matches_collected_stream() {
        let input = "a<!-- c --><script>x<y</script><div id=1>t&amp;u<br/></div><p>tail";
        let mut tk = Tokenizer::new(input);
        let mut pulled = Vec::new();
        while let Some(t) = tk.next_token() {
            pulled.push(t);
        }
        assert_eq!(pulled, tokenize(input));
        assert_eq!(tk.next_token(), None, "exhausted tokenizer stays exhausted");
    }
}
