//! HTML character-reference (entity) decoding.
//!
//! Supports the named entities that occur in real-world listing pages plus
//! decimal (`&#38;`) and hexadecimal (`&#x26;`) numeric references. Unknown
//! references are passed through verbatim, which is what lenient parsers
//! like tidy do.

/// Named entities we decode. Deliberately small: extraction only needs
/// text to be *stable*, not exhaustively standards-complete.
const NAMED: &[(&str, &str)] = &[
    ("amp", "&"),
    ("lt", "<"),
    ("gt", ">"),
    ("quot", "\""),
    ("apos", "'"),
    ("nbsp", "\u{a0}"),
    ("copy", "\u{a9}"),
    ("reg", "\u{ae}"),
    ("trade", "\u{2122}"),
    ("mdash", "\u{2014}"),
    ("ndash", "\u{2013}"),
    ("hellip", "\u{2026}"),
    ("lsquo", "\u{2018}"),
    ("rsquo", "\u{2019}"),
    ("ldquo", "\u{201c}"),
    ("rdquo", "\u{201d}"),
    ("bull", "\u{2022}"),
    ("middot", "\u{b7}"),
    ("deg", "\u{b0}"),
    ("frac12", "\u{bd}"),
    ("eacute", "\u{e9}"),
    ("egrave", "\u{e8}"),
    ("agrave", "\u{e0}"),
    ("ccedil", "\u{e7}"),
    ("uuml", "\u{fc}"),
    ("ouml", "\u{f6}"),
    ("auml", "\u{e4}"),
    ("ntilde", "\u{f1}"),
];

fn lookup_named(name: &str) -> Option<&'static str> {
    NAMED.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
}

/// Decodes all character references in `input`.
///
/// ```
/// use aw_dom::entities::decode;
/// assert_eq!(decode("Tom &amp; Jerry &#38; co &#x26; more"), "Tom & Jerry & co & more");
/// assert_eq!(decode("no entities"), "no entities");
/// assert_eq!(decode("&bogus; stays"), "&bogus; stays");
/// ```
pub fn decode(input: &str) -> String {
    if !input.contains('&') {
        return input.to_string();
    }
    let mut out = String::with_capacity(input.len());
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Copy a full UTF-8 character.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&input[i..i + ch_len]);
            i += ch_len;
            continue;
        }
        // Find the reference body up to ';' within a reasonable window.
        match decode_reference(&input[i..]) {
            Some((decoded, consumed)) => {
                out.push_str(&decoded);
                i += consumed;
            }
            None => {
                out.push('&');
                i += 1;
            }
        }
    }
    out
}

/// Attempts to decode a single reference at the start of `s` (which begins
/// with `&`). Returns the decoded text and the number of bytes consumed.
fn decode_reference(s: &str) -> Option<(String, usize)> {
    let rest = &s[1..];
    let semi = rest.find(';')?;
    if semi == 0 || semi > 10 {
        return None;
    }
    let body = &rest[..semi];
    let consumed = semi + 2; // '&' + body + ';'
    if let Some(stripped) = body.strip_prefix('#') {
        let code = if let Some(hex) = stripped.strip_prefix(['x', 'X']) {
            u32::from_str_radix(hex, 16).ok()?
        } else {
            stripped.parse::<u32>().ok()?
        };
        let ch = char::from_u32(code)?;
        return Some((ch.to_string(), consumed));
    }
    lookup_named(body).map(|v| (v.to_string(), consumed))
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Escapes `<`, `>`, `&` and `"` for serialization.
pub fn escape(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for c in input.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_entities() {
        assert_eq!(decode("a &lt; b &gt; c"), "a < b > c");
        assert_eq!(decode("&nbsp;"), "\u{a0}");
        assert_eq!(decode("caf&eacute;"), "café");
    }

    #[test]
    fn numeric_entities() {
        assert_eq!(decode("&#65;&#66;"), "AB");
        assert_eq!(decode("&#x41;"), "A");
        assert_eq!(decode("&#X41;"), "A");
    }

    #[test]
    fn malformed_references_pass_through() {
        assert_eq!(decode("&;"), "&;");
        assert_eq!(decode("& plain ampersand"), "& plain ampersand");
        assert_eq!(decode("&toolongtobeanentity;"), "&toolongtobeanentity;");
        assert_eq!(decode("&#xZZ;"), "&#xZZ;");
        assert_eq!(decode("&#999999999;"), "&#999999999;");
        assert_eq!(decode("trailing &"), "trailing &");
    }

    #[test]
    fn multibyte_passthrough() {
        assert_eq!(decode("héllo — wörld"), "héllo — wörld");
    }

    #[test]
    fn escape_round_trip() {
        let s = "a < b & c > \"d\"";
        assert_eq!(decode(&escape(s)), s);
    }
}
