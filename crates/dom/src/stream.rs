//! One-pass streaming parse→index.
//!
//! [`StreamIndexer`] drives the pull tokenizer ([`crate::tokenizer::Tokenizer`])
//! directly and emits a fully populated [`Document`] *and* its
//! [`DocIndex`] in a single traversal, where the classic path
//! ([`crate::parser::parse`] then [`Document::index`]) walks the finished
//! tree a second time. The request path of the serving tier parses every
//! page exactly once and immediately evaluates compiled xpaths against
//! the index, so fusing the two passes roughly halves the pre-evaluation
//! cost per page.
//!
//! The fusion works because parser-built arenas allocate nodes in
//! document order, so **arena index = pre-order rank** and every index
//! table can be filled at the tree-construction event that determines it:
//!
//! * ranks and `by_rank` are the creation counter itself, bulk-built as
//!   identity tables at EOF;
//! * posting lists (tag / element / text) are appended at open events —
//!   creation order is rank order, so they are sorted by construction
//!   and [`DocIndex::ranks_monotone`] holds by construction;
//! * subtree spans are recorded at close events (end tags, implied
//!   closes, EOF) and patched over a leaf-default (`rank + 1`) table at
//!   EOF;
//! * sibling-position caches come from counters carried on the
//!   open-element stack; the attribute table is appended per open event.
//!
//! The template fingerprint is computed eagerly over the finished tables
//! before the index is published (the serving path always
//! template-matches next); the record layout stays lazy, exactly like
//! the classic path.
//!
//! ## Oracle relationship
//!
//! The tree-repair rules are the parser's, sharing its private
//! `implied_closes` / `is_scope_boundary` / `is_void` tables (via the
//! per-page `TagInfo` cache), but the construction loop is deliberately
//! *duplicated*, not shared: `parse` + `DocIndex::build` stay an
//! independent differential oracle, and the robustness/differential
//! suites assert byte-identical output between the two paths on
//! arbitrary markup — the same relationship the reference xpath engine
//! has to the compiled engines.

use std::collections::hash_map::Entry;
use std::ops::Deref;

use crate::arena::{Document, Element, Node, NodeId, NodeKind};
use crate::index::DocIndex;
use crate::interner::{intern_resolved, Sym};
use crate::parser::{collapse_whitespace, implied_closes, is_scope_boundary, is_void};
use crate::tokenizer::{Token, Tokenizer};

/// A [`Document`] whose evaluation index was built during parsing.
///
/// Dereferences to [`Document`]; [`Document::index`] returns the
/// pre-built index without a second traversal. The usual invalidation
/// contract is untouched: mutating the document afterwards (via
/// [`Document::append`] and friends) drops the streamed index and the
/// next [`Document::index`] call rebuilds lazily.
#[derive(Clone, Debug)]
pub struct IndexedDocument {
    doc: Document,
}

impl IndexedDocument {
    /// Unwraps the document, keeping the pre-built index cached inside.
    pub fn into_document(self) -> Document {
        self.doc
    }
}

impl Deref for IndexedDocument {
    type Target = Document;

    fn deref(&self) -> &Document {
        &self.doc
    }
}

/// Parses HTML and builds the evaluation index in one pass.
///
/// Tree shape, serialization and every [`DocIndex`] table (including the
/// template fingerprint and record layout) are byte-identical to
/// [`crate::parse`] followed by [`Document::index`].
///
/// ```
/// use aw_dom::{parse, parse_indexed, serialize};
/// let html = "<ul><li>a<li>b</ul>";
/// let streamed = parse_indexed(html);
/// let oracle = parse(html);
/// assert_eq!(serialize(&streamed), serialize(&oracle));
/// assert_eq!(
///     streamed.index().template_fingerprint(),
///     oracle.index().template_fingerprint()
/// );
/// ```
pub fn parse_indexed(input: &str) -> IndexedDocument {
    // Node-count hint: every element/comment costs one `<` and most end
    // tags another, while text nodes roughly track open tags — so the
    // raw `<` count sits close above the final node count. One
    // vectorizable byte scan here keeps the eight per-node tables from
    // regrowing (and re-copying) mid-parse.
    let hint = input.as_bytes().iter().filter(|&&b| b == b'<').count() + 8;
    let mut builder = StreamIndexer::new(hint);
    let mut tokens = Tokenizer::new(input);
    while let Some(token) = tokens.next_token() {
        builder.push_token(token);
    }
    builder.finish()
}

/// One open element: its rank plus the running sibling counters for the
/// children appended under it. Index 0 of the stack is a sentinel for
/// the document root (empty tag — matched by no end tag, closed only at
/// EOF).
struct OpenEntry {
    /// Arena index = pre-order rank of the open node.
    rank: u32,
    /// Interned tag name; matched by end tags and implied closes exactly
    /// as the parser matches its own open stack. Borrowing the interner's
    /// leaked copy makes pushing an open element clone-free.
    tag: &'static str,
    /// Precomputed [`is_scope_boundary`] of `tag` — the implied-close
    /// scan tests it on every entry it walks past.
    boundary: bool,
    /// Element children appended so far.
    elems: u32,
    /// Text children appended so far.
    texts: u32,
    /// Per-tag element child counts (fan-out is small; linear scan beats
    /// a map here).
    by_tag: Vec<(Sym, u32)>,
}

/// Everything the builder needs to know about one tag name, resolved
/// once per distinct name per page: its interned symbol and `'static`
/// spelling, plus the repair-rule classifications the parser would
/// otherwise recompute from strings on every sighting. All derived from
/// the parser's own tables ([`is_void`] / [`implied_closes`] /
/// [`is_scope_boundary`]), so the repair semantics stay shared.
#[derive(Clone, Copy)]
struct TagInfo {
    name: &'static str,
    sym: Sym,
    void: bool,
    closes: &'static [&'static str],
    boundary: bool,
}

/// A tiny first-seen cache in front of the process-global interner.
///
/// A page draws its tags and attribute names from a vocabulary of a few
/// dozen strings repeated hundreds of times; a linear scan over the
/// page's own distinct names (string equality fails fast on length)
/// beats taking the interner's read lock and hashing on every sighting.
/// This is state only a builder that lives across parse events can
/// carry — the classic path interns from scratch per table pass.
#[derive(Default)]
struct SymCache {
    entries: Vec<TagInfo>,
}

impl SymCache {
    fn get(&mut self, name: &str) -> TagInfo {
        for i in 0..self.entries.len() {
            let info = self.entries[i];
            if info.name == name {
                // Transpose heuristic: a hit bubbles one slot toward the
                // front, so the page's hot names self-organize to the
                // start of the scan.
                if i > 0 {
                    self.entries.swap(i, i - 1);
                }
                return info;
            }
        }
        let (sym, leaked) = intern_resolved(name);
        let info = TagInfo {
            name: leaked,
            sym,
            void: is_void(name),
            closes: implied_closes(name),
            boundary: is_scope_boundary(name),
        };
        // A page with an absurd tag vocabulary degrades to the plain
        // interner path instead of an O(distinct) scan per sighting.
        if self.entries.len() < 64 {
            self.entries.push(info);
        }
        info
    }
}

/// True when `collapse_whitespace` would return `t` unchanged, decided
/// by a conservative byte scan: pure ASCII with every whitespace being a
/// single interior `' '`. Multi-byte sequences (which could hide
/// `\u{a0}` or Unicode whitespace) always take the rebuild path.
/// `char::is_whitespace` is the collapse criterion, so the scan must
/// match it on every ASCII byte — including U+000B (vertical tab),
/// which `u8::is_ascii_whitespace` omits.
fn is_collapsed(t: &str) -> bool {
    let b = t.as_bytes();
    if b.is_empty() || b[0] == b' ' || b[b.len() - 1] == b' ' {
        return false;
    }
    let mut prev_space = false;
    for &c in b {
        if c >= 0x80 || ((c.is_ascii_whitespace() || c == 0x0B) && c != b' ') {
            return false;
        }
        let space = c == b' ';
        if space && prev_space {
            return false;
        }
        prev_space = space;
    }
    true
}

/// The one-pass builder: consumes tokens, emits `Document` + `DocIndex`.
pub struct StreamIndexer {
    nodes: Vec<Node>,
    idx: DocIndex,
    stack: Vec<OpenEntry>,
    /// Non-leaf close events as `(rank, subtree_end)`; ranks, `by_rank`
    /// and the leaf-default span table are identities of the creation
    /// order, so they are bulk-built at [`StreamIndexer::finish`] and
    /// only these recorded closes patch the default.
    closes: Vec<(u32, u32)>,
    /// Retired `by_tag` buffers, reused so closing and reopening
    /// elements does not churn the allocator.
    pool: Vec<Vec<(Sym, u32)>>,
    /// First-seen caches for the page's tag and attribute-name
    /// vocabularies (kept apart so each scan stays short).
    tags: SymCache,
    attr_names: SymCache,
    /// Tag posting lists accumulated per symbol id (dense — tag symbols
    /// are interned early and low), drained into the index's hash map
    /// once at EOF: one map insert per *distinct* tag instead of one
    /// map probe per element.
    postings: Vec<Vec<u32>>,
    /// Symbol ids with a non-empty list in `postings`, in first-seen
    /// order.
    posted_syms: Vec<u32>,
    /// Per-attribute-name memo (indexed by name symbol id, dense like
    /// `postings`) of values resolved through the keyed `attr_values`
    /// map: a few entries per name, transposed toward the front on hit
    /// like [`SymCache`]. Template pages cycle a name through a small
    /// value set (`class='row'` / `'name'` / `'phone'`) hundreds of
    /// times; after one warmup sighting each, a short fail-fast scan
    /// replaces the keyed-hash probe and the `String` clone. Only map
    /// *hits* are memoized, so never-repeating values (hrefs) cost a
    /// failed scan and no extra allocation — and the keyed map stays
    /// authoritative, so id assignment is unchanged and crafted values
    /// cannot collide their way around the keyed hash.
    val_memo: Vec<Vec<(String, u32)>>,
}

impl StreamIndexer {
    fn new(capacity: usize) -> Self {
        let mut idx = DocIndex::default();
        // The synthetic root's row of the per-node tables; ranks and
        // spans are bulk-built at EOF.
        idx.tag.reserve(capacity);
        idx.tag.push(None);
        idx.same_tag_pos.reserve(capacity);
        idx.same_tag_pos.push(0);
        idx.elem_pos.reserve(capacity);
        idx.elem_pos.push(0);
        idx.text_pos.reserve(capacity);
        idx.text_pos.push(0);
        idx.attr_offsets.reserve(capacity + 1);
        idx.attr_offsets.push(0);
        // Crawled listing markup runs roughly half elements, half text.
        idx.elem_postings.reserve(capacity / 2);
        idx.text_postings.reserve(capacity / 2);
        let mut nodes = Vec::with_capacity(capacity);
        nodes.push(Node {
            kind: NodeKind::Document,
            parent: None,
            children: Vec::new(),
        });
        StreamIndexer {
            nodes,
            idx,
            stack: vec![OpenEntry {
                rank: 0,
                tag: "",
                boundary: false,
                elems: 0,
                texts: 0,
                by_tag: Vec::new(),
            }],
            closes: Vec::new(),
            pool: Vec::new(),
            tags: SymCache::default(),
            attr_names: SymCache::default(),
            postings: Vec::new(),
            posted_syms: Vec::new(),
            val_memo: Vec::new(),
        }
    }

    /// Feeds one token through the tidy-style construction rules,
    /// updating tree and index together.
    fn push_token(&mut self, token: Token) {
        match token {
            Token::Doctype(_) => {}
            Token::Comment(c) => {
                let attr_start = self.idx.attrs.len() as u32;
                self.append(NodeKind::Comment(c), None, (0, 0, 0), attr_start);
            }
            Token::Text(t) => {
                // Owning the token lets already-collapsed text (the
                // common case in rendered markup) move straight into the
                // node, skipping the rebuild allocation.
                let collapsed = if is_collapsed(&t) {
                    t
                } else {
                    collapse_whitespace(&t)
                };
                if collapsed.is_empty() {
                    return;
                }
                let parent = self.stack.last_mut().expect("root sentinel");
                parent.texts += 1;
                let pos = parent.texts;
                let attr_start = self.idx.attrs.len() as u32;
                let r = self.append(NodeKind::Text(collapsed), None, (0, 0, pos), attr_start);
                self.idx.text_postings.push(r);
            }
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                let info = self.tags.get(&name);
                let sym = info.sym;
                if !info.closes.is_empty() {
                    self.apply_implied_closes(info.closes);
                }
                let parent = self.stack.last_mut().expect("root sentinel");
                parent.elems += 1;
                let elem_pos = parent.elems;
                let same_tag = match parent.by_tag.iter_mut().find(|(s, _)| *s == sym) {
                    Some((_, k)) => {
                        *k += 1;
                        *k
                    }
                    None => {
                        parent.by_tag.push((sym, 1));
                        1
                    }
                };
                let keep_open = !self_closing && !info.void;
                // Attribute table before the node payload consumes
                // `attrs`; value ids are dense first-seen, which in
                // creation order matches the classic build's arena pass.
                let attr_start = self.idx.attrs.len() as u32;
                for (aname, value) in &attrs {
                    let nsym = self.attr_names.get(aname).sym;
                    let slot = nsym.0 as usize;
                    if slot >= self.val_memo.len() {
                        self.val_memo.resize_with(slot + 1, Vec::new);
                    }
                    let cache = &mut self.val_memo[slot];
                    let vid = match cache.iter().position(|(s, _)| s == value) {
                        Some(i) => {
                            let id = cache[i].1;
                            if i > 0 {
                                cache.swap(i, i - 1);
                            }
                            id
                        }
                        None => {
                            // One hash for both outcomes: brand-new
                            // values (hrefs — the common miss) insert
                            // directly; a repeat the memo missed is
                            // worth memoizing for its next sighting.
                            let next_id = self.idx.attr_values.len() as u32;
                            match self.idx.attr_values.entry(value.clone()) {
                                Entry::Occupied(e) => {
                                    let v = *e.get();
                                    if cache.len() < 4 {
                                        cache.push((value.clone(), v));
                                    } else {
                                        // Evict the coldest (rear) slot;
                                        // transpose keeps hot values in
                                        // front of it.
                                        *cache.last_mut().expect("cap 4") = (value.clone(), v);
                                    }
                                    v
                                }
                                Entry::Vacant(e) => {
                                    e.insert(next_id);
                                    next_id
                                }
                            }
                        }
                    };
                    self.idx.attrs.push((nsym, vid));
                }
                let r = self.append(
                    NodeKind::Element(Element { tag: name, attrs }),
                    Some(sym),
                    (same_tag, elem_pos, 0),
                    attr_start,
                );
                self.idx.elem_postings.push(r);
                let slot = sym.0 as usize;
                if slot >= self.postings.len() {
                    self.postings.resize_with(slot + 1, Vec::new);
                }
                if self.postings[slot].is_empty() {
                    self.posted_syms.push(sym.0);
                }
                self.postings[slot].push(r);
                if keep_open {
                    self.stack.push(OpenEntry {
                        rank: r,
                        tag: info.name,
                        boundary: info.boundary,
                        elems: 0,
                        texts: 0,
                        by_tag: self.pool.pop().unwrap_or_default(),
                    });
                }
            }
            Token::EndTag { name } => {
                // Nearest matching open element; the root sentinel's
                // empty tag never matches. Unmatched end tags drop —
                // which subsumes the parser's explicit "</br>" rule,
                // since void elements are never kept open.
                if let Some(pos) = self.stack.iter().rposition(|e| e.tag == name) {
                    debug_assert!(pos > 0, "end tag matched the root sentinel");
                    self.close_to(pos);
                }
            }
        }
    }

    /// Appends one node under the innermost open element, filling every
    /// per-node index table except the posting lists (which the caller
    /// owns). `positions` is the `(same_tag, element, text)`
    /// sibling-cache triple; `attr_start` is where this node's attribute
    /// pairs begin in the attribute table (the caller appends them
    /// *before* calling).
    fn append(
        &mut self,
        kind: NodeKind,
        tag: Option<Sym>,
        positions: (u32, u32, u32),
        attr_start: u32,
    ) -> u32 {
        let r = self.nodes.len() as u32;
        let parent = self.stack.last().expect("root sentinel").rank;
        self.nodes.push(Node {
            kind,
            parent: Some(NodeId(parent)),
            children: Vec::new(),
        });
        self.nodes[parent as usize].children.push(NodeId(r));
        self.idx.tag.push(tag);
        self.idx.same_tag_pos.push(positions.0);
        self.idx.elem_pos.push(positions.1);
        self.idx.text_pos.push(positions.2);
        self.idx.attr_offsets.push(attr_start);
        r
    }

    /// Closes every open element above (and including) stack index
    /// `keep`: their subtrees all end at the next rank to be allocated.
    /// Only non-leaf spans are recorded — the bulk-built span table
    /// already defaults every rank to `rank + 1`.
    fn close_to(&mut self, keep: usize) {
        let end = self.nodes.len() as u32;
        for mut entry in self.stack.drain(keep..) {
            if entry.rank + 1 != end {
                self.closes.push((entry.rank, end));
            }
            entry.by_tag.clear();
            self.pool.push(entry.by_tag);
        }
    }

    /// Implied-end-tag repair over the open stack — the iterative twin
    /// of `parser::apply_implied_closes`, sharing its tag tables (the
    /// caller passes the incoming tag's [`implied_closes`] slice, cached
    /// on its [`TagInfo`]).
    fn apply_implied_closes(&mut self, closes: &'static [&'static str]) {
        'again: loop {
            for i in (1..self.stack.len()).rev() {
                let entry = &self.stack[i];
                if closes.contains(&entry.tag) {
                    self.close_to(i);
                    // One incoming tag may imply several closes (e.g.
                    // `tr` closing both `td` and the enclosing `tr`).
                    continue 'again;
                }
                if entry.boundary {
                    return;
                }
            }
            return;
        }
    }

    /// EOF: closes everything still open (root included), bulk-builds
    /// the identity rank tables and the span table, seals the
    /// attribute-offset table, fingerprints, and publishes the index.
    fn finish(mut self) -> IndexedDocument {
        let n = self.nodes.len() as u32;
        for entry in self.stack.drain(..) {
            if entry.rank + 1 != n {
                self.closes.push((entry.rank, n));
            }
        }
        // Creation order is rank order: the rank maps are identities and
        // every unclosed-by-an-event node is a leaf spanning one rank.
        self.idx.rank = (0..n).collect();
        self.idx.by_rank = (0..n).map(NodeId).collect();
        self.idx.subtree_end = (1..=n).collect();
        for &(r, end) in &self.closes {
            self.idx.subtree_end[r as usize] = end;
        }
        // One map insert per distinct tag; the per-element appends went
        // to the dense accumulator.
        for &s in &self.posted_syms {
            let list = std::mem::take(&mut self.postings[s as usize]);
            self.idx.tag_postings.insert(Sym(s), list);
        }
        self.idx.attr_offsets.push(self.idx.attrs.len() as u32);
        // Creation order *is* rank order.
        self.idx.monotone = true;
        // Eager fingerprint over the hot tables; record layout stays
        // lazy like the classic path.
        self.idx.template_fingerprint();
        let doc = Document::from_nodes(self.nodes);
        doc.index_cache()
            .set(self.idx)
            .expect("fresh document cannot have an index");
        IndexedDocument { doc }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::serialize;

    /// Asserts the streamed document and index equal the classic
    /// parse-then-index output on every table the public API exposes.
    fn assert_matches_oracle(html: &str) {
        let streamed = parse_indexed(html);
        let oracle = parse(html);
        assert_eq!(
            serialize(&streamed),
            serialize(&oracle),
            "tree mismatch on {html:?}"
        );
        assert_eq!(streamed.len(), oracle.len());
        let (si, oi) = (streamed.index(), oracle.index());
        assert_eq!(si.ranks_monotone(), oi.ranks_monotone());
        assert_eq!(si.element_postings(), oi.element_postings());
        assert_eq!(si.text_postings(), oi.text_postings());
        for id in streamed.ids() {
            assert_eq!(si.rank_of(id), oi.rank_of(id));
            assert_eq!(si.subtree(si.rank_of(id)), oi.subtree(oi.rank_of(id)));
            assert_eq!(si.tag_sym(id), oi.tag_sym(id));
            assert_eq!(si.same_tag_pos(id), oi.same_tag_pos(id));
            assert_eq!(si.elem_pos(id), oi.elem_pos(id));
            assert_eq!(si.text_pos(id), oi.text_pos(id));
            assert_eq!(si.attrs(id), oi.attrs(id), "attr table for {id:?}");
            if let Some(sym) = si.tag_sym(id) {
                assert_eq!(si.tag_postings(sym), oi.tag_postings(sym));
            }
            if let Some(el) = streamed.element(id) {
                for (_, value) in &el.attrs {
                    assert_eq!(si.attr_value_id(value), oi.attr_value_id(value));
                }
            }
        }
        assert_eq!(si.template_fingerprint(), oi.template_fingerprint());
        assert_eq!(si.record_layout(), oi.record_layout());
    }

    #[test]
    fn figure1_page_is_identical_to_oracle() {
        assert_matches_oracle(
            "<div class='dealerlinks'><tr><td><u>PORTER FURNITURE</u><br>\
             201 HWY.30 West<br>NEW ALBANY, MS 38652</td></tr>\
             <tr><td><u>WOODLAND FURNITURE</u><br>123 Main St.<br>\
             WOODLAND, MS 3977</td></tr></div>",
        );
    }

    #[test]
    fn repair_rules_match_oracle() {
        for html in [
            "<ul><li>a<li>b<li>c</ul>",
            "<ul><li>a<ul><li>x<li>y</ul></li><li>b</ul>",
            "<table><tr><td>a<td>b<tr><td>c</table>",
            "<p>a<br>b<hr>c</p>",
            "<p>a</br>b</p>",
            "<div>a</span>b</div>",
            "<div><b>x<i>y</div>z",
            "<table><thead><tr><td>h</td></tr><tbody><tr><td>b</table>",
            "<select><option>a<option>b</select>",
            "<!DOCTYPE html><div><!-- hi -->x</div>",
        ] {
            assert_matches_oracle(html);
        }
    }

    #[test]
    fn malformed_markup_matches_oracle() {
        for html in [
            "",
            "   \n\t  ",
            "plain text only",
            "2 < 3 and <5> ok",
            "<div attr",
            "a<!-- oops",
            "<script>if (a<b) { x(\"<div>\"); }</script><p>y</p>",
            "<style>a > b { color: red }</style>",
            "<a href=",
            "</div></div>",
            "<td>orphan<td>cells",
            "&amp;&#x41;&bogus;é漢字",
        ] {
            assert_matches_oracle(html);
        }
    }

    #[test]
    fn whitespace_fast_path_matches_oracle() {
        // Every character class where `is_collapsed`'s byte scan could
        // diverge from `collapse_whitespace`'s `char::is_whitespace`
        // criterion: the ASCII controls (VT 0x0B is the one
        // `u8::is_ascii_whitespace` omits), NBSP, and Unicode spaces.
        for html in [
            "<div>a\u{0B}b</div>",
            "<div>\u{0B}a</div>",
            "<div>a\u{0B}</div>",
            "<div>a\u{0B} b</div>",
            "<div>a\u{0C}b</div>",
            "<div>a\tb\rc</div>",
            "<div>a\u{a0}b</div>",
            "<div>a\u{2028}b</div>",
            "<div>a\u{3000}b</div>",
            "<td>x\u{0B}y<td>z",
        ] {
            assert_matches_oracle(html);
        }
        // The fast path must reject anything collapse would rewrite.
        assert!(is_collapsed("a b"));
        assert!(!is_collapsed("a\u{0B}b"));
        assert!(!is_collapsed("a\u{0C}b"));
        assert!(!is_collapsed("a\tb"));
        assert!(!is_collapsed("a  b"));
        assert!(!is_collapsed(" a"));
        assert!(!is_collapsed("a "));
        assert!(!is_collapsed("a\u{a0}b"));
    }

    #[test]
    fn listing_page_record_layout_matches_oracle() {
        let mut html = String::from(
            "<div class='nav'><a href='/a'>A</a><a href='/b'>B</a></div><h1>Dealers</h1>\
             <table class='stores'>",
        );
        for i in 0..4 {
            html.push_str(&format!(
                "<tr><td><u>NAME {i}</u><br>{i} Elm St</td><td>555-000{i}</td></tr>"
            ));
        }
        html.push_str("</table><div class='foot'>contact</div>");
        assert_matches_oracle(&html);
        let layout = parse_indexed(&html)
            .index()
            .record_layout()
            .cloned()
            .expect("records detected");
        assert_eq!(layout.records.len(), 4);
    }

    #[test]
    fn index_survives_into_document_and_mutation_invalidates() {
        let streamed = parse_indexed("<div><p>a</p></div>");
        let fp = streamed.index().template_fingerprint();
        let mut doc = streamed.into_document();
        // The streamed index rides along — same cached object.
        assert_eq!(doc.index().template_fingerprint(), fp);
        // Mutation drops it; the rebuilt (classic) index sees the change.
        let div = doc.children(NodeId::ROOT)[0];
        doc.append_element(div, "span", vec![]);
        assert_ne!(doc.index().template_fingerprint(), fp);
        assert_eq!(doc.index().element_postings().len(), 3);
    }

    #[test]
    fn deep_nesting_does_not_recurse() {
        // The builder is stack-machine based like the classic pass 2;
        // a pathological depth must not overflow the call stack.
        let mut html = String::new();
        for _ in 0..10_000 {
            html.push_str("<div>");
        }
        html.push('x');
        let streamed = parse_indexed(&html);
        assert_eq!(streamed.len(), 10_002);
        let idx = streamed.index();
        assert_eq!(idx.subtree(0), 0..10_002);
        assert_eq!(idx.template_fingerprint(), {
            let oracle = parse(&html);
            oracle.index().template_fingerprint()
        });
    }
}
