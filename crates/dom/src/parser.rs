//! Tidy-style tree construction.
//!
//! Turns the token stream into a [`Document`], repairing the malformed
//! nesting that script-generated pages routinely contain. The repair rules
//! are the pragmatic subset of what `tidy`/`jtidy` (the cleaner used in the
//! paper, §7) applies:
//!
//! * void elements (`<br>`, `<img>`, …) never take children;
//! * elements with *implied end tags* (`<li>`, `<p>`, `<td>`, `<tr>`,
//!   `<option>`, `<dd>`/`<dt>`, table sections) are auto-closed when a
//!   sibling of the same group opens;
//! * an end tag closes the nearest matching open element, implicitly closing
//!   anything opened inside it; an end tag with no matching open element is
//!   dropped;
//! * whitespace-only text is discarded and internal whitespace is collapsed,
//!   so text nodes are stable keys for dictionary annotators;
//! * comments are kept, doctypes dropped.
//!
//! Deliberately **no** foster parenting or implicit `<html>/<body>`
//! synthesis: the paper's own examples (Figure 1) nest `<tr>` directly in a
//! `<div>`, and the learned xpaths rely on that verbatim structure.

use crate::arena::{Document, Element, NodeId, NodeKind};
use crate::tokenizer::{tokenize, Token};

/// Elements that never have children.
pub const VOID_ELEMENTS: &[&str] = &[
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "param", "source",
    "track", "wbr",
];

/// Returns true if `tag` is a void element.
pub fn is_void(tag: &str) -> bool {
    VOID_ELEMENTS.contains(&tag)
}

/// When `incoming` opens, any open element in the returned set is implicitly
/// closed first (searching upward from the innermost open element, stopping
/// at a scope boundary). Shared with the streaming builder (`crate::stream`)
/// so both parse paths repair markup identically.
pub(crate) fn implied_closes(incoming: &str) -> &'static [&'static str] {
    match incoming {
        "li" => &["li"],
        "p" => &["p"],
        "option" => &["option"],
        "dd" | "dt" => &["dd", "dt"],
        "tr" => &["tr", "td", "th"],
        "td" | "th" => &["td", "th"],
        "thead" | "tbody" | "tfoot" => &["thead", "tbody", "tfoot", "tr", "td", "th"],
        _ => &[],
    }
}

/// Elements that bound the search for implied closes: an open `<li>` inside
/// a nested `<ul>` must not be closed by an `<li>` in the outer list.
pub(crate) fn is_scope_boundary(tag: &str) -> bool {
    matches!(
        tag,
        "table" | "ul" | "ol" | "dl" | "select" | "div" | "body" | "html" | "td" | "th"
    )
}

/// Parses HTML into a [`Document`].
///
/// ```
/// use aw_dom::parse;
/// let doc = parse("<div class='x'><u>PORTER FURNITURE</u><br>201 HWY" );
/// let texts: Vec<_> = doc.ids().filter_map(|id| doc.text(id)).collect();
/// assert_eq!(texts, vec!["PORTER FURNITURE", "201 HWY"]);
/// ```
pub fn parse(input: &str) -> Document {
    let mut doc = Document::new();
    // Stack of currently-open element ids; the root is always open.
    let mut open: Vec<(NodeId, String)> = Vec::new();

    let current =
        |open: &Vec<(NodeId, String)>| open.last().map(|(id, _)| *id).unwrap_or(NodeId::ROOT);

    for token in tokenize(input) {
        match token {
            Token::Doctype(_) => {}
            Token::Comment(c) => {
                doc.append(current(&open), NodeKind::Comment(c));
            }
            Token::Text(t) => {
                let collapsed = collapse_whitespace(&t);
                if !collapsed.is_empty() {
                    doc.append_text(current(&open), collapsed);
                }
            }
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                apply_implied_closes(&mut open, &name);
                let id = doc.append(
                    current(&open),
                    NodeKind::Element(Element {
                        tag: name.clone(),
                        attrs,
                    }),
                );
                if !self_closing && !is_void(&name) {
                    open.push((id, name));
                }
            }
            Token::EndTag { name } => {
                if is_void(&name) {
                    continue; // "</br>" and friends are dropped.
                }
                // Find nearest matching open element.
                if let Some(pos) = open.iter().rposition(|(_, t)| *t == name) {
                    open.truncate(pos);
                }
                // Otherwise: unmatched end tag, dropped.
            }
        }
    }
    doc
}

fn apply_implied_closes(open: &mut Vec<(NodeId, String)>, incoming: &str) {
    let closes = implied_closes(incoming);
    if closes.is_empty() {
        return;
    }
    // Search upward for a closeable element, stopping at scope boundaries.
    for i in (0..open.len()).rev() {
        let tag = open[i].1.as_str();
        if closes.contains(&tag) {
            open.truncate(i);
            // A single incoming tag may imply several closes (e.g. `tr`
            // closing both `td` and the enclosing `tr`): recurse.
            apply_implied_closes(open, incoming);
            return;
        }
        if is_scope_boundary(tag) {
            return;
        }
    }
}

/// Collapses runs of whitespace to single spaces and trims; returns an empty
/// string for whitespace-only input. Non-breaking spaces count as whitespace.
pub fn collapse_whitespace(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut in_ws = true; // leading ws is dropped
    for c in s.chars() {
        if c.is_whitespace() || c == '\u{a0}' {
            if !in_ws {
                out.push(' ');
                in_ws = true;
            }
        } else {
            out.push(c);
            in_ws = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Renders the tree shape as an s-expression for compact assertions.
    fn shape(doc: &Document) -> String {
        fn rec(doc: &Document, id: NodeId, out: &mut String) {
            match &doc.node(id).kind {
                NodeKind::Document => {
                    out.push_str("(#doc");
                    for &c in doc.children(id) {
                        out.push(' ');
                        rec(doc, c, out);
                    }
                    out.push(')');
                }
                NodeKind::Element(e) => {
                    if doc.children(id).is_empty() {
                        out.push_str(&e.tag);
                    } else {
                        out.push('(');
                        out.push_str(&e.tag);
                        for &c in doc.children(id) {
                            out.push(' ');
                            rec(doc, c, out);
                        }
                        out.push(')');
                    }
                }
                NodeKind::Text(t) => {
                    out.push('\'');
                    out.push_str(t);
                    out.push('\'');
                }
                NodeKind::Comment(_) => out.push_str("#c"),
            }
        }
        let mut s = String::new();
        rec(doc, NodeId::ROOT, &mut s);
        s
    }

    #[test]
    fn figure1_snippet_parses() {
        // The paper's Figure 1 (tr directly under div is preserved).
        let html = "<div class='dealerlinks'><tr><td><u>PORTER FURNITURE</u><br>\
                    201 HWY.30 West<br>NEW ALBANY, MS 38652</td></tr>\
                    <tr><td><u>WOODLAND FURNITURE</u><br>123 Main St.<br>\
                    WOODLAND, MS 3977</td></tr></div>";
        let doc = parse(html);
        assert_eq!(
            shape(&doc),
            "(#doc (div (tr (td (u 'PORTER FURNITURE') br '201 HWY.30 West' br \
             'NEW ALBANY, MS 38652')) (tr (td (u 'WOODLAND FURNITURE') br \
             '123 Main St.' br 'WOODLAND, MS 3977'))))"
        );
        let div = doc.children(NodeId::ROOT)[0];
        assert_eq!(doc.tag(div), Some("div"));
        assert_eq!(doc.attr(div, "class"), Some("dealerlinks"));
        let trs: Vec<_> = doc.children(div).to_vec();
        assert_eq!(trs.len(), 2);
        for tr in trs {
            assert_eq!(doc.tag(tr), Some("tr"));
            let td = doc.children(tr)[0];
            assert_eq!(doc.tag(td), Some("td"));
            let u = doc.children(td)[0];
            assert_eq!(doc.tag(u), Some("u"));
            assert!(doc.text(doc.children(u)[0]).unwrap().contains("FURNITURE"));
        }
    }

    #[test]
    fn implied_li_closing() {
        let doc = parse("<ul><li>a<li>b<li>c</ul>");
        assert_eq!(shape(&doc), "(#doc (ul (li 'a') (li 'b') (li 'c')))");
    }

    #[test]
    fn nested_list_scope() {
        let doc = parse("<ul><li>a<ul><li>x<li>y</ul></li><li>b</ul>");
        assert_eq!(
            shape(&doc),
            "(#doc (ul (li 'a' (ul (li 'x') (li 'y'))) (li 'b')))"
        );
    }

    #[test]
    fn implied_td_tr_closing() {
        let doc = parse("<table><tr><td>a<td>b<tr><td>c</table>");
        assert_eq!(
            shape(&doc),
            "(#doc (table (tr (td 'a') (td 'b')) (tr (td 'c'))))"
        );
    }

    #[test]
    fn void_elements_take_no_children() {
        let doc = parse("<p>a<br>b<hr>c</p>");
        assert_eq!(shape(&doc), "(#doc (p 'a' br 'b' hr 'c'))");
    }

    #[test]
    fn end_br_dropped() {
        let doc = parse("<p>a</br>b</p>");
        assert_eq!(shape(&doc), "(#doc (p 'a' 'b'))");
    }

    #[test]
    fn unmatched_end_tag_dropped() {
        let doc = parse("<div>a</span>b</div>");
        assert_eq!(shape(&doc), "(#doc (div 'a' 'b'))");
    }

    #[test]
    fn end_tag_closes_intervening() {
        let doc = parse("<div><b>x<i>y</div>z");
        assert_eq!(shape(&doc), "(#doc (div (b 'x' (i 'y'))) 'z')");
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let doc = parse("<div>\n   <p>  a   b </p>\n</div>");
        assert_eq!(shape(&doc), "(#doc (div (p 'a b')))");
    }

    #[test]
    fn implied_p_closing() {
        let doc = parse("<p>one<p>two");
        assert_eq!(shape(&doc), "(#doc (p 'one') (p 'two'))");
    }

    #[test]
    fn tbody_closes_previous_section() {
        let doc = parse("<table><thead><tr><td>h</td></tr><tbody><tr><td>b</table>");
        assert_eq!(
            shape(&doc),
            "(#doc (table (thead (tr (td 'h'))) (tbody (tr (td 'b')))))"
        );
    }

    #[test]
    fn comments_preserved_doctype_dropped() {
        let doc = parse("<!DOCTYPE html><div><!-- hi -->x</div>");
        assert_eq!(shape(&doc), "(#doc (div #c 'x'))");
    }

    #[test]
    fn options_close_each_other() {
        let doc = parse("<select><option>a<option>b</select>");
        assert_eq!(shape(&doc), "(#doc (select (option 'a') (option 'b')))");
    }

    #[test]
    fn collapse_whitespace_unit() {
        assert_eq!(collapse_whitespace("  a \n\t b  "), "a b");
        assert_eq!(collapse_whitespace("   "), "");
        assert_eq!(collapse_whitespace("a\u{a0}b"), "a b");
        assert_eq!(collapse_whitespace(""), "");
    }
}
