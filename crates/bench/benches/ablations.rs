//! Design-choice ablations (see `aw_eval::experiments::ablations`):
//! LR context cap, enumeration label cap, publication feature subsets,
//! annotator-parameter sensitivity.

use aw_eval::experiments::ablations;

fn main() {
    aw_bench::header("Ablations", "design-choice sweeps on DEALERS");
    let (ds, annot) = aw_bench::dealers();
    let labels_of = |s: &aw_sitegen::GeneratedSite| annot.annotate(&s.site);

    println!(
        "{}",
        ablations::lr_context_cap(&ds.sites, labels_of, &[4, 8, 16, 32, 64, 128])
    );
    println!(
        "{}",
        ablations::enumeration_label_cap(&ds.sites, labels_of, &[2, 4, 8, 16, 32])
    );
    println!("{}", ablations::publication_features(&ds.sites, labels_of));
    println!("{}", ablations::annotator_parameters(&ds.sites, labels_of));
}
