//! Figure 2(f): accuracy of NAIVE vs NTW, XPATH wrappers, DISC.

use aw_core::WrapperLanguage;
use aw_eval::experiments::accuracy;
use aw_eval::Method;

fn main() {
    aw_bench::header("Figure 2(f)", "accuracy of XPATH on DISC");
    let (ds, annot) = aw_bench::disc();
    let result = accuracy::run(
        "DISC",
        &ds.sites,
        |s| annot.annotate(&s.site),
        WrapperLanguage::XPath,
        &[Method::Naive, Method::Ntw],
    );
    aw_bench::maybe_write_json("fig2f_xpath_disc", &result);
    println!("{result}");
}
