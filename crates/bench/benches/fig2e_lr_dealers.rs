//! Figure 2(e): accuracy of NAIVE vs NTW, LR wrappers, DEALERS.

use aw_core::WrapperLanguage;
use aw_eval::experiments::accuracy;
use aw_eval::Method;

fn main() {
    aw_bench::header("Figure 2(e)", "accuracy of LR on DEALERS");
    let (ds, annot) = aw_bench::dealers();
    let result = accuracy::run(
        "DEALERS",
        &ds.sites,
        |s| annot.annotate(&s.site),
        WrapperLanguage::Lr,
        &[Method::Naive, Method::Ntw],
    );
    aw_bench::maybe_write_json("fig2e_lr_dealers", &result);
    println!("{result}");
}
