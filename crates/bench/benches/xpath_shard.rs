//! Site-sharded wrapper-space evaluation with a machine-readable report.
//!
//! The cross-site workload behind the scale story (§7: hundreds of sites
//! × thousands of pages). Before sharding, the pipeline carried one
//! **deduplicated cross-site space** — the union of every site's
//! candidates — and evaluated all of it over every page (rule replay
//! applies the whole rule set to each crawled page). Site-sharding
//! observes that a rule only matters on its own site: one
//! predicate-aware trie per site, each evaluated only against that
//! site's pages, page-parallel through the work-stealing `Executor`.
//!
//! Strategies timed on the **global workload** (dedup space × all
//! pages, the pre-sharding pipeline):
//!
//! * `reference` — per-rule tree-walking interpretation;
//! * `indexed`   — per-rule compiled evaluation against the `DocIndex`;
//! * `global batch` — the whole dedup space in one `BatchEvaluator`.
//!
//! Strategies timed on the **sharded workload** (each site's candidates
//! × that site's pages — the part of the global workload the pipeline
//! actually needs):
//!
//! * `indexed (site-local)` — per-rule compiled evaluation;
//! * `sharded` — `ShardedBatch`, sequential, template cache off;
//! * `sharded ×N` — the same tries, page-parallel with N threads
//!   (measured only when more than one core is available).
//!
//! A second, **repeated-template corpus** (full-roster pagination:
//! fixed records per page, all optional fields present, so every page
//! of a site shares one structural fingerprint) times the cross-page
//! template cache: `sharded` with the cache off vs on. The ratio is
//! reported as `template_cache_speedup`.
//!
//! A third, **variable-length corpus** (same rendering scripts, but
//! record counts vary per page, so whole-page fingerprints rarely
//! repeat within a site) times record-level replay: the shared page
//! frame replays verbatim while per-record traces stitch in
//! record-local rank space. The cache-off/on ratio is reported (and
//! gated) as `template_cache_speedup_varlen`, with the replay
//! breakdown under `varlen_corpus`.
//!
//! Serving-side measurements ride on the repeated-template corpus:
//! `service_throughput` (the request stream over real sockets through
//! the event-driven reactor, one keep-alive connection),
//! `service_keepalive_vs_blocking` (that stream vs the same requests
//! through the legacy blocking loop, one TCP connection per request —
//! gated: connection reuse must keep paying), and
//! `service_health_ratio` — the in-process stream with per-site health
//! tracking on vs off, gated near 1.0 so the robustness loop's
//! accounting stays effectively free. The reactor's request-latency
//! histogram lands in the report as `service.latency_p50_us` /
//! `latency_p99_us` (and report-only `service_p99_us` under
//! `speedups`). A synchronous churn episode (`TemplateEvolution`)
//! additionally reports `relearn_recovery`: drifted requests until
//! degradation, relearn-and-swap wall clock, and requests until health
//! journals recovery (report-only).
//!
//! The run writes `BENCH_xpath.json` (schema documented in
//! `crates/bench/README.md`) to `$BENCH_JSON` (default
//! `<workspace>/target/BENCH_xpath.json`). When `$BENCH_BASELINE` names
//! a committed baseline file, measured speedups below its thresholds
//! fail the process — the CI perf gate.

use aw_annotate::{DictionaryAnnotator, MatchMode};
use aw_core::{
    BundleBinaryWriter, BundleStore, CompiledWrapper, Engine, ExtractRequest, ExtractionService,
    HealthEvent, HealthThresholds, LearnedRule, RelearnController, WrapperBundle, WrapperLanguage,
    WrapperRegistry,
};
use aw_dom::Document;
use aw_enum::top_down;
use aw_eval::Executor;
use aw_induct::{NodeSet, XPathInductor};
use aw_rank::{AnnotatorModel, ListFeatures, PublicationModel, RankingModel};
use aw_sitegen::{epoch_html, generate_dealers, DealersConfig, TemplateEvolution};
use aw_xpath::{evaluate_compiled, reference, BatchEvaluator, CompiledXPath, ShardedBatch, XPath};
use serde::Value;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

struct SiteData {
    pages: Vec<Document>,
    paths: Vec<XPath>,
    compiled: Vec<CompiledXPath>,
}

/// Enumerates per-site candidate spaces for a generated dealer corpus.
fn spaces_of(ds: &aw_sitegen::DealersDataset) -> Vec<SiteData> {
    let annot = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
    let mut out: Vec<SiteData> = Vec::new();
    for gs in &ds.sites {
        let labels: NodeSet = annot.annotate(&gs.site);
        if labels.is_empty() {
            continue;
        }
        let ind = XPathInductor::new(&gs.site);
        let paths: Vec<XPath> = top_down(&ind, &labels)
            .xpath_candidates()
            .into_iter()
            .map(|(_, xp)| xp)
            .collect();
        if paths.is_empty() {
            continue;
        }
        let compiled = paths.iter().map(CompiledXPath::compile).collect();
        out.push(SiteData {
            pages: gs.site.pages().to_vec(),
            paths,
            compiled,
        });
    }
    assert!(out.len() >= 3, "corpus too small: {} sites", out.len());
    out
}

/// Dealer sites with their enumerated per-site candidate spaces.
fn corpus() -> Vec<SiteData> {
    let quick = matches!(std::env::var("AW_SCALE").as_deref(), Ok("quick"));
    let (sites, pages_per_site) = if quick { (6, 4) } else { (24, 12) };
    spaces_of(&generate_dealers(&DealersConfig {
        sites,
        pages_per_site,
        seed: 0x5AAD,
        ..DealersConfig::default()
    }))
}

/// The repeated-template corpus: every page of a site is a full-roster
/// instance of one rendering script (fixed record count, no optional
/// fields missing), so the site collapses to a single structural
/// fingerprint — the production shape of paginated listings.
fn template_corpus() -> Vec<SiteData> {
    let quick = matches!(std::env::var("AW_SCALE").as_deref(), Ok("quick"));
    let (sites, pages_per_site) = if quick { (6, 6) } else { (24, 12) };
    spaces_of(&generate_dealers(&DealersConfig {
        sites,
        pages_per_site,
        records_per_page: (6, 6),
        promo_prob: 0.0,
        uniform_records: true,
        seed: 0x7E41,
        ..DealersConfig::default()
    }))
}

/// The variable-length corpus: the same full-roster rendering scripts,
/// but record counts vary per page — pages of a site share chrome (and
/// so a frame fingerprint) while whole-page fingerprints rarely
/// repeat. The production shape of search-result listings, and the
/// workload record-level replay exists for.
fn varlen_corpus() -> Vec<SiteData> {
    let quick = matches!(std::env::var("AW_SCALE").as_deref(), Ok("quick"));
    let (sites, pages_per_site) = if quick { (6, 6) } else { (24, 12) };
    spaces_of(&generate_dealers(&DealersConfig {
        sites,
        pages_per_site,
        records_per_page: (2, 8),
        promo_prob: 0.0,
        uniform_records: true,
        seed: 0x7A2C,
        ..DealersConfig::default()
    }))
}

/// Global workload: every dedup'd rule over every page, per-rule
/// reference interpretation.
fn eval_reference_global(pages: &[(usize, &Document)], space: &[XPath]) -> usize {
    let mut nodes = 0;
    for (_, page) in pages {
        for path in space {
            nodes += reference::evaluate(path, page).len();
        }
    }
    nodes
}

/// Global workload, per-rule indexed evaluation (the pre-sharding
/// production strategy and the acceptance baseline).
fn eval_indexed_global(pages: &[(usize, &Document)], space: &[CompiledXPath]) -> usize {
    let mut nodes = 0;
    for (_, page) in pages {
        for path in space {
            nodes += evaluate_compiled(path, page).len();
        }
    }
    nodes
}

/// Sharded workload, per-rule indexed evaluation (same output as the
/// sharded engine, no trie sharing).
fn eval_indexed_local(sites: &[SiteData]) -> usize {
    let mut nodes = 0;
    for site in sites {
        for page in &site.pages {
            for path in &site.compiled {
                nodes += evaluate_compiled(path, page).len();
            }
        }
    }
    nodes
}

fn eval_sharded(sharded: &ShardedBatch, pages: &[(usize, &Document)], exec: &Executor) -> usize {
    sharded
        .evaluate_pages(pages, exec)
        .iter()
        .flat_map(|page| page.iter().map(|(_, nodes)| nodes.len()))
        .sum()
}

/// Best wall-clock of `passes` runs, in seconds.
fn time(passes: u32, f: &dyn Fn() -> usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..passes {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(entries.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

fn num(n: f64) -> Value {
    Value::Number(n)
}

fn tagged_of(sites: &[SiteData]) -> Vec<(usize, CompiledXPath)> {
    sites
        .iter()
        .enumerate()
        .flat_map(|(s, site)| site.compiled.iter().cloned().map(move |c| (s, c)))
        .collect()
}

fn pages_of(sites: &[SiteData]) -> Vec<(usize, &Document)> {
    sites
        .iter()
        .enumerate()
        .flat_map(|(s, site)| site.pages.iter().map(move |p| (s, p)))
        .collect()
}

fn main() {
    let sites = corpus();
    // The established sharded metrics measure trie sharing alone, so the
    // template cache is off here; the repeated-template corpus below
    // measures it separately.
    let sharded = ShardedBatch::new(tagged_of(&sites)).with_cache(false);
    let pages: Vec<(usize, &Document)> = pages_of(&sites);

    // The deduplicated cross-site space the pre-sharding pipeline carried.
    let mut seen = std::collections::BTreeSet::new();
    let global_space: Vec<XPath> = sites
        .iter()
        .flat_map(|site| site.paths.iter())
        .filter(|xp| seen.insert(xp.to_string()))
        .cloned()
        .collect();
    let global_compiled: Vec<CompiledXPath> =
        global_space.iter().map(CompiledXPath::compile).collect();
    // Cache off for the same reason as `sharded`: this metric isolates
    // trie sharing (repeated timing passes would otherwise replay).
    let global_batch = BatchEvaluator::new(&global_compiled).with_cache(false);

    // Warm the per-document indexes so every engine measures steady-state
    // evaluation (`reference` does not use them at all).
    for (_, page) in &pages {
        page.index();
    }

    // All engines must agree before anything is timed: the sharded pairs
    // element-wise against per-rule indexed evaluation (identical
    // site-local workload), and the global trie against per-rule indexed
    // node totals on the global workload.
    let seq = Executor::new(1);
    for (&(key, page), results) in pages.iter().zip(sharded.evaluate_pages(&pages, &seq)) {
        let site = &sites[key];
        assert_eq!(results.len(), site.compiled.len());
        for ((_, nodes), compiled) in results.iter().zip(&site.compiled) {
            assert_eq!(nodes, &evaluate_compiled(compiled, page), "site {key}");
        }
    }
    let global_nodes = eval_indexed_global(&pages, &global_compiled);
    assert_eq!(eval_reference_global(&pages, &global_space), global_nodes);
    assert_eq!(
        pages
            .iter()
            .map(|(_, p)| global_batch.evaluate(p).iter().map(Vec::len).sum::<usize>())
            .sum::<usize>(),
        global_nodes
    );

    let candidates: usize = sites.iter().map(|s| s.paths.len()).sum();
    let local_pairs: usize = sites.iter().map(|s| s.paths.len() * s.pages.len()).sum();
    let global_pairs = global_space.len() * pages.len();
    println!(
        "corpus: {} sites, {} pages, {} candidates ({} deduplicated globally); \
         global workload {} (rule, page) pairs, site-local {} pairs",
        sites.len(),
        pages.len(),
        candidates,
        global_space.len(),
        global_pairs,
        local_pairs,
    );
    println!(
        "sharded tries: {} bare steps / {} variants; global trie: {} / {}",
        sharded.distinct_steps(),
        sharded.distinct_variants(),
        global_batch.distinct_steps(),
        global_batch.distinct_variants(),
    );

    let passes: u32 = std::env::var("BENCH_PASSES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let t_ref = time(passes, &|| eval_reference_global(&pages, &global_space));
    let t_idx = time(passes, &|| eval_indexed_global(&pages, &global_compiled));
    let t_gbatch = time(passes, &|| {
        pages
            .iter()
            .map(|(_, p)| global_batch.evaluate(p).iter().map(Vec::len).sum::<usize>())
            .sum()
    });
    let t_idx_local = time(passes, &|| eval_indexed_local(&sites));
    let t_shard = time(passes, &|| eval_sharded(&sharded, &pages, &seq));

    // The repeated-template workload: identical per-site candidate
    // spaces and pages, with and without cross-page template replay.
    // Both variants must agree with per-rule indexed evaluation before
    // being timed (and the cached variant re-checks *after* its traces
    // are recorded, i.e. on the replay path).
    let tsites = template_corpus();
    let tpages: Vec<(usize, &Document)> = pages_of(&tsites);
    for (_, page) in &tpages {
        page.index();
    }
    let t_nocache = ShardedBatch::new(tagged_of(&tsites)).with_cache(false);
    let t_cached = ShardedBatch::new(tagged_of(&tsites));
    for _ in 0..2 {
        // Two verification rounds: the first records traces, the second
        // exercises replay on every page.
        for (&(key, page), results) in tpages.iter().zip(t_cached.evaluate_pages(&tpages, &seq)) {
            let site = &tsites[key];
            for ((_, nodes), compiled) in results.iter().zip(&site.compiled) {
                assert_eq!(
                    nodes,
                    &evaluate_compiled(compiled, page),
                    "template corpus, site {key}"
                );
            }
        }
    }
    let (warm_hits, _) = t_cached.template_cache_stats().expect("cache enabled");
    assert!(warm_hits > 0, "template corpus produced no cache replays");
    let t_template_nocache = time(passes, &|| eval_sharded(&t_nocache, &tpages, &seq));
    let t_template_cached = time(passes, &|| eval_sharded(&t_cached, &tpages, &seq));

    // The variable-length workload: whole-page fingerprints rarely
    // repeat, so nearly every replay must stitch the shared page frame
    // around per-record traces. Verified like the template corpus: two
    // rounds against per-rule indexed evaluation, the second on the
    // (partial-)replay path; the corpus must actually stitch frames, or
    // the metric silently degenerates into whole-page replay.
    let vsites = varlen_corpus();
    let vpages: Vec<(usize, &Document)> = pages_of(&vsites);
    for (_, page) in &vpages {
        page.index();
    }
    let v_nocache = ShardedBatch::new(tagged_of(&vsites)).with_cache(false);
    let v_cached = ShardedBatch::new(tagged_of(&vsites));
    for _ in 0..2 {
        for (&(key, page), results) in vpages.iter().zip(v_cached.evaluate_pages(&vpages, &seq)) {
            let site = &vsites[key];
            for ((_, nodes), compiled) in results.iter().zip(&site.compiled) {
                assert_eq!(
                    nodes,
                    &evaluate_compiled(compiled, page),
                    "varlen corpus, site {key}"
                );
            }
        }
    }
    assert!(
        v_cached
            .template_replay_stats()
            .expect("cache enabled")
            .frame_replays
            > 0,
        "varlen corpus never stitched a frame"
    );
    let t_varlen_nocache = time(passes, &|| eval_sharded(&v_nocache, &vpages, &seq));
    let t_varlen_cached = time(passes, &|| eval_sharded(&v_cached, &vpages, &seq));
    let varlen_replay = v_cached.template_replay_stats().expect("cache enabled");

    // ── Streaming parse→index ────────────────────────────────────────
    // Every request pays parse + DocIndex build + template fingerprint
    // before any rule can run. Timed on the serialized repeated-template
    // pages: the classic two-pass path (parse the tree, then build the
    // index over the finished arena — what `AW_STREAM_PARSE=0` serves)
    // vs the one-pass `StreamIndexer` (`aw_dom::parse_indexed`, the
    // request-path default). Both legs end with the fingerprint
    // computed, because the serving path needs it for template-cache
    // lookup. The ratio is gated as `stream_parse_speedup`. Byte
    // identity of the two paths is asserted before timing (and in far
    // more depth by `tests/dom_robustness.rs`).
    let html_pages: Vec<String> = tpages.iter().map(|(_, p)| aw_dom::serialize(p)).collect();
    for html in &html_pages {
        let streamed = aw_dom::parse_indexed(html);
        let classic = aw_dom::parse(html);
        assert_eq!(aw_dom::serialize(&streamed), aw_dom::serialize(&classic));
        assert_eq!(
            streamed.index().template_fingerprint(),
            classic.index().template_fingerprint(),
        );
    }
    // The corpus parses in under a millisecond, so one pass is all
    // timer jitter: repeat the page sweep inside each pass and
    // *interleave* classic/stream passes (best-of each) so clock drift
    // across the measurement window biases neither leg.
    let parse_reps = 4;
    let classic_leg = || {
        let mut total = 0;
        for _ in 0..parse_reps {
            total += html_pages
                .iter()
                .map(|html| {
                    let doc = aw_dom::parse(html);
                    black_box(doc.index().template_fingerprint());
                    doc.len()
                })
                .sum::<usize>();
        }
        total
    };
    let stream_leg = || {
        let mut total = 0;
        for _ in 0..parse_reps {
            total += html_pages
                .iter()
                .map(|html| {
                    let doc = aw_dom::parse_indexed(html);
                    black_box(doc.index().template_fingerprint());
                    doc.len()
                })
                .sum::<usize>();
        }
        total
    };
    let mut t_parse_classic = f64::INFINITY;
    let mut t_parse_stream = f64::INFINITY;
    // The paired sweep is ~6 ms, so extra passes are nearly free and
    // the best-of window can ride out a multi-second load spike.
    for _ in 0..passes.max(9) {
        t_parse_classic = t_parse_classic.min(time(1, &classic_leg));
        t_parse_stream = t_parse_stream.min(time(1, &stream_leg));
    }
    t_parse_classic /= parse_reps as f64;
    t_parse_stream /= parse_reps as f64;
    let stream_parse_speedup = t_parse_classic / t_parse_stream;

    // Serving-side throughput: the `ExtractionService` request loop over
    // a repeated-template request stream (one raw-HTML page per request)
    // — the workload a long-lived `awrap serve` process sees. Each
    // request pays parse + DocIndex build + routed evaluation; the
    // per-site wrappers (each site's first candidate xpath) persist in
    // the registry, so their template caches replay across requests.
    let registry = Arc::new(WrapperRegistry::new());
    for (s, site) in tsites.iter().enumerate() {
        registry.insert(
            format!("site-{s}"),
            CompiledWrapper::from_rule(LearnedRule::XPath(site.paths[0].clone())),
        );
    }
    let service = ExtractionService::new(Arc::clone(&registry)).with_executor(seq.clone());
    let requests: Vec<(usize, usize, ExtractRequest)> = tsites
        .iter()
        .enumerate()
        .flat_map(|(s, site)| {
            site.pages.iter().enumerate().map(move |(p, page)| {
                (
                    s,
                    p,
                    ExtractRequest::single(format!("site-{s}"), aw_dom::serialize(page)),
                )
            })
        })
        .collect();
    // The service must agree with direct per-rule evaluation before the
    // stream is timed (values compared — the request re-parses the
    // serialized page, so node ids need not coincide).
    for (s, p, request) in &requests {
        let page = &tsites[*s].pages[*p];
        let expected: Vec<&str> = evaluate_compiled(&tsites[*s].compiled[0], page)
            .into_iter()
            .filter_map(|id| page.text(id))
            .collect();
        let response = service.handle(request).expect("registered site");
        assert_eq!(response.pages[0], expected, "site {s} page {p}");
    }
    // Health-accounting overhead: the same request stream through a
    // service with per-site health tracking disabled. The ratio
    // (health-on throughput / health-off throughput) is gated — health
    // accounting must stay within a few percent of free. The two
    // variants are timed *interleaved* (on, off, on, off, …) with
    // best-of on each side, so machine-load drift during the run cannot
    // masquerade as tracking overhead.
    let service_off = ExtractionService::new(Arc::clone(&registry))
        .with_executor(seq.clone())
        .with_health_tracking(false);
    let stream = |svc: &ExtractionService| -> usize {
        requests
            .iter()
            .map(|(_, _, request)| svc.handle(request).expect("site").pages[0].len())
            .sum()
    };
    let (mut t_service, mut t_service_off) = (f64::INFINITY, f64::INFINITY);
    // The service's own parse counters (micros spent in parse_indexed
    // across the timed passes) split the stream wall clock into a parse
    // phase and an evaluate phase (routing + rule evaluation +
    // response assembly). The counters accumulate, so the split is a
    // per-pass mean against the best-of total — report-only.
    let service_passes = passes.max(5) * 2;
    let parse_before = service.parse_stats();
    for _ in 0..service_passes {
        let t = Instant::now();
        black_box(stream(&service));
        t_service = t_service.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        black_box(stream(&service_off));
        t_service_off = t_service_off.min(t.elapsed().as_secs_f64());
    }
    let parse_delta = service.parse_stats().micros - parse_before.micros;
    let t_service_parse = parse_delta as f64 / 1e6 / service_passes as f64;
    let t_service_evaluate = (t_service - t_service_parse).max(0.0);
    let inprocess_rps = requests.len() as f64 / t_service;
    let service_health_ratio = t_service_off / t_service;

    // ── HTTP serving streams ─────────────────────────────────────────
    // The same request stream over real sockets, through both serving
    // engines: the event-driven reactor reusing ONE keep-alive
    // connection for the whole stream, and the legacy blocking loop
    // paying a fresh TCP connection per request (its protocol closes
    // after every response). `service_throughput` is the keep-alive
    // requests/sec; the gated `service_keepalive_vs_blocking` ratio is
    // what connection reuse buys at the socket layer. Both engines
    // front services over the same registry, so wrapper template caches
    // are shared and warm for both; the two streams are timed
    // interleaved (best-of each) so machine-load drift cannot
    // masquerade as an engine difference.
    let http_bodies: Vec<String> = requests
        .iter()
        .map(|(s, _, request)| {
            serde_json::to_string(&obj(vec![
                ("site", Value::String(format!("site-{s}"))),
                ("html", Value::String(request.pages[0].clone())),
            ]))
            .expect("body serializes")
        })
        .collect();
    let reactor_service =
        Arc::new(ExtractionService::new(Arc::clone(&registry)).with_executor(seq.clone()));
    let reactor = aw_serve::Server::bind(Arc::clone(&reactor_service), "127.0.0.1:0")
        .expect("bind reactor")
        .workers(1)
        .start()
        .expect("start reactor");
    let blocking_service =
        Arc::new(ExtractionService::new(Arc::clone(&registry)).with_executor(seq.clone()));
    let blocking = aw_serve::Server::bind(Arc::clone(&blocking_service), "127.0.0.1:0")
        .expect("bind blocking")
        .workers(1)
        .blocking(true)
        .start()
        .expect("start blocking");

    // Reads one HTTP/1.1 response off a keep-alive stream (headers,
    // then exactly Content-Length body bytes).
    fn read_response(stream: &mut std::net::TcpStream) -> (u16, String) {
        use std::io::Read as _;
        let mut buf = Vec::with_capacity(1024);
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let n = stream.read(&mut chunk).expect("read response head");
            assert!(n > 0, "server closed mid-response");
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = std::str::from_utf8(&buf[..head_end]).expect("UTF-8 head");
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let length: usize = head
            .lines()
            .find_map(|line| line.strip_prefix("Content-Length: "))
            .expect("Content-Length")
            .parse()
            .expect("numeric length");
        let mut body = buf[head_end + 4..].to_vec();
        while body.len() < length {
            let n = stream.read(&mut chunk).expect("read response body");
            assert!(n > 0, "server closed mid-body");
            body.extend_from_slice(&chunk[..n]);
        }
        body.truncate(length);
        (status, String::from_utf8(body).expect("UTF-8 body"))
    }

    let keepalive_stream = |bodies: &[String]| -> usize {
        use std::io::Write as _;
        let mut stream = std::net::TcpStream::connect(reactor.addr()).expect("connect reactor");
        stream.set_nodelay(true).expect("nodelay");
        let mut ok = 0;
        for body in bodies {
            stream
                .write_all(
                    format!(
                        "POST /extract HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                        body.len()
                    )
                    .as_bytes(),
                )
                .expect("send");
            let (status, reply) = read_response(&mut stream);
            assert_eq!(status, 200, "{reply}");
            ok += 1;
        }
        ok
    };
    let blocking_stream = |bodies: &[String]| -> usize {
        use std::io::Write as _;
        let mut ok = 0;
        for body in bodies {
            let mut stream =
                std::net::TcpStream::connect(blocking.addr()).expect("connect blocking");
            stream.set_nodelay(true).expect("nodelay");
            stream
                .write_all(
                    format!(
                        "POST /extract HTTP/1.1\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
                        body.len()
                    )
                    .as_bytes(),
                )
                .expect("send");
            let (status, reply) = read_response(&mut stream);
            assert_eq!(status, 200, "{reply}");
            ok += 1;
        }
        ok
    };
    // Both engines must serve the stream correctly before timing (this
    // also warms wrapper caches and the reactor's accept path).
    assert_eq!(keepalive_stream(&http_bodies), http_bodies.len());
    assert_eq!(blocking_stream(&http_bodies), http_bodies.len());
    let (mut t_keepalive, mut t_blocking) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..passes.max(3) {
        let t = Instant::now();
        black_box(keepalive_stream(&http_bodies));
        t_keepalive = t_keepalive.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        black_box(blocking_stream(&http_bodies));
        t_blocking = t_blocking.min(t.elapsed().as_secs_f64());
    }
    let service_rps = http_bodies.len() as f64 / t_keepalive;
    let blocking_rps = http_bodies.len() as f64 / t_blocking;
    let keepalive_vs_blocking = t_blocking / t_keepalive;
    // Full-request wall-time percentiles, recorded by the reactor for
    // every request of every keep-alive pass (report-only).
    let latency = reactor_service.latency().snapshot();
    reactor.shutdown();
    blocking.shutdown();

    // Self-healing recovery: a deployed wrapper defeated by breaking
    // template churn. Measured synchronously: requests of drifted
    // traffic until the health window flags the site, the shadow
    // relearn-and-swap wall-clock, then requests until the fresh window
    // journals recovery. Reported, not gated — it is a property of the
    // thresholds, not a throughput.
    let evolution = TemplateEvolution::small(7).run();
    let churn_engine = Engine::builder(RankingModel::new(
        AnnotatorModel::new(0.9, 0.3),
        PublicationModel::learn(&[
            ListFeatures {
                schema_size: 3.0,
                alignment: 0.0,
            },
            ListFeatures {
                schema_size: 4.0,
                alignment: 1.0,
            },
        ]),
    ))
    .language(WrapperLanguage::XPath)
    .annotator(DictionaryAnnotator::new(
        evolution.dictionary.iter(),
        MatchMode::Contains,
    ))
    .build();
    let site0 = &evolution.epochs[0].site.site;
    let labels = churn_engine
        .annotate(site0)
        .expect("dictionary hits epoch 0");
    let deployed = churn_engine
        .learn(site0, &labels)
        .expect("epoch 0 learns")
        .best()
        .expect("nonempty wrapper space")
        .compile();
    let churn_registry = Arc::new(WrapperRegistry::new());
    churn_registry.insert("churn", deployed);
    let churn_service =
        ExtractionService::new(Arc::clone(&churn_registry)).with_thresholds(HealthThresholds {
            window: 8,
            min_window: 4,
            baseline_pages: 4,
            retain_pages: 16,
            ..HealthThresholds::default()
        });
    let controller = Arc::new(RelearnController::new(&churn_service, churn_engine));
    let churn_service = churn_service.with_relearn(Arc::clone(&controller));
    for html in epoch_html(&evolution.epochs[0]) {
        churn_service
            .handle(&ExtractRequest::single("churn", html))
            .expect("registered");
    }
    let breaking = epoch_html(&evolution.epochs[2]);
    let mut requests_to_degrade = 0usize;
    while !churn_service
        .site_health("churn")
        .expect("tracked")
        .degraded
    {
        churn_service
            .handle(&ExtractRequest::single(
                "churn",
                breaking[requests_to_degrade % breaking.len()].clone(),
            ))
            .expect("registered");
        requests_to_degrade += 1;
        assert!(requests_to_degrade <= 64, "breaking churn never degraded");
    }
    let relearn_clock = Instant::now();
    let relearn_outcome = controller.run_pending();
    let t_relearn = relearn_clock.elapsed().as_secs_f64();
    assert_eq!(relearn_outcome.swapped, 1, "{relearn_outcome:?}");
    let recovered = |service: &ExtractionService| {
        service
            .health()
            .journal_for("churn")
            .iter()
            .any(|e| matches!(e, HealthEvent::Recovered { .. }))
    };
    let mut requests_to_recover = 0usize;
    while !recovered(&churn_service) {
        churn_service
            .handle(&ExtractRequest::single(
                "churn",
                breaking[requests_to_recover % breaking.len()].clone(),
            ))
            .expect("registered");
        requests_to_recover += 1;
        assert!(requests_to_recover <= 64, "swap never recovered health");
    }

    // ── Bundle cold start ────────────────────────────────────────────
    // Web-scale deployment: time-to-first-extraction for a bundle of
    // `bundle_sites` site wrappers when only ONE site is actually
    // requested. The v2 JSON path must parse and compile every wrapper
    // before the first request can be answered; the v3 binary path
    // reads the fixed header plus the site-key index and deserializes
    // exactly one segment on the faulting request. The ratio is gated
    // as `bundle_cold_start` (floor 10x — locally it is orders of
    // magnitude). Report-only absolutes land under `bundle_cold`.
    let quick = matches!(std::env::var("AW_SCALE").as_deref(), Ok("quick"));
    let bundle_sites: usize = if quick { 10_000 } else { 100_000 };
    // Prototype wrappers: the first candidate xpath of up to four
    // repeated-template sites, cycled across the synthetic site keys.
    let protos: Vec<String> = tsites
        .iter()
        .take(4)
        .map(|site| CompiledWrapper::from_rule(LearnedRule::XPath(site.paths[0].clone())).to_json())
        .collect();
    // A v2 bundle member is the v1 artifact minus the format/version
    // envelope; render each prototype's member once and hand-assemble
    // the large payload (members are serde-rendered, so splicing them
    // between literal braces cannot break the JSON).
    let proto_members: Vec<String> = protos
        .iter()
        .map(|p| {
            let v1 = serde_json::from_str(p).expect("v1 artifact parses");
            serde_json::to_string(&obj(vec![
                ("language", v1.get("language").expect("language").clone()),
                ("rule", v1.get("rule").expect("rule").clone()),
            ]))
            .expect("member serializes")
        })
        .collect();
    let target_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target");
    std::fs::create_dir_all(target_dir).expect("target dir");
    let v2_path = format!("{target_dir}/bench_bundle_cold.json");
    let v3_path = format!("{target_dir}/bench_bundle_cold.awb");
    let mut v2_payload = String::with_capacity(bundle_sites * 128);
    v2_payload.push_str("{\"format\":\"aw-bundle\",\"version\":2,\"wrappers\":{");
    for i in 0..bundle_sites {
        if i > 0 {
            v2_payload.push(',');
        }
        v2_payload.push_str(&format!("\"site-{i:06}\":"));
        v2_payload.push_str(&proto_members[i % proto_members.len()]);
    }
    v2_payload.push_str("}}");
    std::fs::write(&v2_path, &v2_payload).expect("write v2 bundle");
    let v3_file = std::fs::File::create(&v3_path).expect("create v3 bundle");
    let mut writer = BundleBinaryWriter::new(std::io::BufWriter::new(v3_file)).expect("v3 header");
    for i in 0..bundle_sites {
        writer
            .append_payload(&format!("site-{i:06}"), &protos[i % protos.len()])
            .expect("v3 segment");
    }
    {
        use std::io::Write as _;
        writer
            .finish()
            .expect("v3 index")
            .flush()
            .expect("v3 flush");
    }
    let v2_bytes = v2_payload.len();
    let v3_bytes = std::fs::metadata(&v3_path).expect("v3 metadata").len() as usize;
    drop(v2_payload);
    // The faulting request: a mid-bundle site, one of that prototype's
    // own pages. Both paths must answer identically before timing.
    let mid = bundle_sites / 2;
    let cold_request = ExtractRequest::single(
        format!("site-{mid:06}"),
        aw_dom::serialize(&tsites[mid % protos.len()].pages[0]),
    );
    let v2_cold = || -> usize {
        let payload = std::fs::read_to_string(&v2_path).expect("read v2");
        let bundle = WrapperBundle::from_json(&payload).expect("v2 parses");
        let service = ExtractionService::new(Arc::new(WrapperRegistry::from_bundle(bundle)));
        service.handle(&cold_request).expect("site").pages[0].len()
    };
    let v3_cold = || -> usize {
        let store = BundleStore::open(&v3_path).expect("v3 opens");
        let registry = WrapperRegistry::from_store(Arc::new(store), Some(1024));
        let service = ExtractionService::new(Arc::new(registry));
        service.handle(&cold_request).expect("site").pages[0].len()
    };
    {
        let payload = std::fs::read_to_string(&v2_path).expect("read v2");
        let bundle = WrapperBundle::from_json(&payload).expect("v2 parses");
        let v2_service = ExtractionService::new(Arc::new(WrapperRegistry::from_bundle(bundle)));
        let store = BundleStore::open(&v3_path).expect("v3 opens");
        assert_eq!(store.len(), bundle_sites);
        let v3_service = ExtractionService::new(Arc::new(WrapperRegistry::from_store(
            Arc::new(store),
            Some(1024),
        )));
        let expected = v2_service.handle(&cold_request).expect("v2 site");
        assert_eq!(v3_service.handle(&cold_request).expect("v3 site"), expected);
        assert!(!expected.pages[0].is_empty(), "cold request extracts");
    }
    // Each pass repeats the full cold path (read artifact, build the
    // service, answer one request), so one pass is already seconds on
    // the v2 side — cap the repetitions instead of inheriting `passes`.
    let cold_passes = passes.clamp(1, 2);
    let t_v2_cold = time(cold_passes, &v2_cold);
    let t_v3_cold = time(cold_passes, &v3_cold);
    let bundle_cold_start = t_v2_cold / t_v3_cold;

    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut parallel: Vec<(usize, f64)> = Vec::new();
    if available > 1 {
        let mut counts = vec![2usize];
        if available >= 4 {
            counts.push(4);
        }
        if !counts.contains(&available) {
            counts.push(available);
        }
        for k in counts {
            let exec = Executor::new(k);
            parallel.push((k, time(passes, &|| eval_sharded(&sharded, &pages, &exec))));
        }
    }

    let ms = 1e3;
    println!(
        "global workload:  reference {:.3} ms, per-rule indexed {:.3} ms, \
         global batch trie {:.3} ms",
        t_ref * ms,
        t_idx * ms,
        t_gbatch * ms,
    );
    println!(
        "sharded workload: per-rule indexed {:.3} ms, sharded batch {:.3} ms",
        t_idx_local * ms,
        t_shard * ms,
    );
    println!(
        "speedups: sharded vs per-rule indexed (dedup cross-site space) {:.1}x, \
         vs global batch trie {:.1}x, vs site-local per-rule indexed {:.1}x; \
         global batch vs reference {:.1}x",
        t_idx / t_shard,
        t_gbatch / t_shard,
        t_idx_local / t_shard,
        t_ref / t_gbatch,
    );
    let (cache_hits, cache_misses) = t_cached.template_cache_stats().expect("cache enabled");
    println!(
        "repeated-template workload ({} sites x {} pages): sharded no-cache {:.3} ms, \
         template cache {:.3} ms ({:.1}x; {} replayed / {} other page evaluations)",
        tsites.len(),
        tpages.len(),
        t_template_nocache * ms,
        t_template_cached * ms,
        t_template_nocache / t_template_cached,
        cache_hits,
        cache_misses,
    );
    println!(
        "variable-length workload ({} sites x {} pages): sharded no-cache {:.3} ms, \
         record replay {:.3} ms ({:.1}x; {} frames stitched, {} records replayed, \
         {} records fell back, {} whole-page replays)",
        vsites.len(),
        vpages.len(),
        t_varlen_nocache * ms,
        t_varlen_cached * ms,
        t_varlen_nocache / t_varlen_cached,
        varlen_replay.frame_replays,
        varlen_replay.record_replays,
        varlen_replay.record_fallbacks,
        varlen_replay.full_replays,
    );
    println!(
        "streaming parse→index ({} pages): classic parse-then-index {:.3} ms, \
         one-pass stream {:.3} ms ({stream_parse_speedup:.2}x)",
        html_pages.len(),
        t_parse_classic * ms,
        t_parse_stream * ms,
    );
    println!(
        "service throughput (in-process): {} single-page requests in {:.3} ms → {:.0} requests/sec \
         (parse phase ~{:.3} ms, evaluate phase ~{:.3} ms)",
        requests.len(),
        t_service * ms,
        inprocess_rps,
        t_service_parse * ms,
        t_service_evaluate * ms,
    );
    println!(
        "health accounting: stream without tracking {:.3} ms → ratio {:.3} \
         (health-on / health-off throughput)",
        t_service_off * ms,
        service_health_ratio,
    );
    println!(
        "HTTP serving: keep-alive reactor {:.3} ms ({:.0} rps) vs \
         connection-per-request blocking {:.3} ms ({:.0} rps) → {:.2}x",
        t_keepalive * ms,
        service_rps,
        t_blocking * ms,
        blocking_rps,
        keepalive_vs_blocking,
    );
    println!(
        "request latency (reactor, {} samples): p50 {} µs, p90 {} µs, p99 {} µs, max {} µs",
        latency.count, latency.p50_us, latency.p90_us, latency.p99_us, latency.max_us,
    );
    println!(
        "relearn recovery: {} drifted requests to degrade, relearn+swap {:.3} ms, \
         {} requests to journal recovery",
        requests_to_degrade,
        t_relearn * ms,
        requests_to_recover,
    );
    println!(
        "bundle cold start ({bundle_sites} sites): v2 JSON {:.1} ms ({} bytes) vs \
         v3 binary {:.3} ms ({} bytes) to first extraction → {bundle_cold_start:.0}x",
        t_v2_cold * ms,
        v2_bytes,
        t_v3_cold * ms,
        v3_bytes,
    );
    if parallel.is_empty() {
        println!("parallel scaling: skipped ({available} core available)");
    }
    for &(k, t) in &parallel {
        println!(
            "  sharded x{k} threads: {:.3} ms ({:.2}x over sequential sharded)",
            t * ms,
            t_shard / t,
        );
    }

    let scaling = |pairs: &[(usize, f64)]| -> Value {
        Value::Object(
            pairs
                .iter()
                .map(|&(k, t)| (k.to_string(), num(t_shard / t)))
                .collect(),
        )
    };
    let report = obj(vec![
        ("schema", num(1.0)),
        ("bench", Value::String("xpath_shard".into())),
        (
            "corpus",
            obj(vec![
                ("sites", num(sites.len() as f64)),
                ("pages", num(pages.len() as f64)),
                ("candidates", num(candidates as f64)),
                ("candidates_deduplicated", num(global_space.len() as f64)),
                ("global_pairs", num(global_pairs as f64)),
                ("site_local_pairs", num(local_pairs as f64)),
                (
                    "sharded_distinct_steps",
                    num(sharded.distinct_steps() as f64),
                ),
                (
                    "sharded_distinct_variants",
                    num(sharded.distinct_variants() as f64),
                ),
            ]),
        ),
        (
            "timings_ms",
            obj(vec![
                ("reference_global", num(t_ref * ms)),
                ("indexed_global", num(t_idx * ms)),
                ("global_batch", num(t_gbatch * ms)),
                ("indexed_local", num(t_idx_local * ms)),
                ("sharded", num(t_shard * ms)),
                ("template_nocache", num(t_template_nocache * ms)),
                ("template_cached", num(t_template_cached * ms)),
                ("varlen_nocache", num(t_varlen_nocache * ms)),
                ("varlen_cached", num(t_varlen_cached * ms)),
                // Raw parse+index+fingerprint over the serialized
                // repeated-template pages, both request-path variants.
                ("parse_classic", num(t_parse_classic * ms)),
                ("parse_stream", num(t_parse_stream * ms)),
                ("service_stream", num(t_service * ms)),
                // service_stream split by the service's parse counters:
                // per-pass mean parse time vs everything after parse.
                ("service_stream_parse", num(t_service_parse * ms)),
                ("service_stream_evaluate", num(t_service_evaluate * ms)),
                ("http_keepalive_stream", num(t_keepalive * ms)),
                ("http_blocking_stream", num(t_blocking * ms)),
                (
                    "sharded_parallel",
                    Value::Object(
                        parallel
                            .iter()
                            .map(|&(k, t)| (k.to_string(), num(t * ms)))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "speedups",
            obj(vec![
                ("sharded_vs_indexed", num(t_idx / t_shard)),
                ("sharded_vs_global_batch", num(t_gbatch / t_shard)),
                ("sharded_vs_indexed_local", num(t_idx_local / t_shard)),
                ("batch_vs_reference", num(t_ref / t_gbatch)),
                ("indexed_vs_reference", num(t_ref / t_idx)),
                (
                    "template_cache_speedup",
                    num(t_template_nocache / t_template_cached),
                ),
                // Cache off over on, on the variable-length corpus —
                // gated: record-level stitching must keep paying when
                // whole-page fingerprints do not repeat.
                (
                    "template_cache_speedup_varlen",
                    num(t_varlen_nocache / t_varlen_cached),
                ),
                // Classic two-pass parse-then-index over the one-pass
                // StreamIndexer on the repeated-template pages — gated:
                // fusing index construction into the parse must keep
                // paying on the request path.
                ("stream_parse_speedup", num(stream_parse_speedup)),
                // Not a ratio: absolute requests/sec of the keep-alive
                // HTTP stream through the reactor, over real sockets
                // (gated like the ratios; see the baseline file).
                ("service_throughput", num(service_rps)),
                // Keep-alive reactor over connection-per-request
                // blocking throughput — gated: connection reuse must
                // keep paying at the socket layer.
                ("service_keepalive_vs_blocking", num(keepalive_vs_blocking)),
                // Reactor-measured p99 full-request wall time in µs —
                // report-only (the gate reads only the metrics the
                // baseline's min_speedup object names).
                ("service_p99_us", num(latency.p99_us as f64)),
                // Health-on over health-off throughput of the
                // in-process stream — gated near 1.0 so health
                // accounting stays effectively free.
                ("service_health_ratio", num(service_health_ratio)),
                // v2-eager over v3-lazy time-to-first-extraction on the
                // bundle_cold corpus (absolutes under `bundle_cold`).
                ("bundle_cold_start", num(bundle_cold_start)),
                ("parallel_scaling", scaling(&parallel)),
            ]),
        ),
        (
            "template_corpus",
            obj(vec![
                ("sites", num(tsites.len() as f64)),
                ("pages", num(tpages.len() as f64)),
                ("cache_replays", num(cache_hits as f64)),
                ("cache_other", num(cache_misses as f64)),
            ]),
        ),
        (
            "varlen_corpus",
            obj(vec![
                ("sites", num(vsites.len() as f64)),
                ("pages", num(vpages.len() as f64)),
                ("full_replays", num(varlen_replay.full_replays as f64)),
                ("frame_replays", num(varlen_replay.frame_replays as f64)),
                ("record_replays", num(varlen_replay.record_replays as f64)),
                (
                    "record_fallbacks",
                    num(varlen_replay.record_fallbacks as f64),
                ),
            ]),
        ),
        (
            "service",
            obj(vec![
                ("requests", num(requests.len() as f64)),
                // Keep-alive HTTP stream through the reactor (the
                // number `service_throughput` gates on).
                ("requests_per_sec", num(service_rps)),
                // Connection-per-request stream through the blocking
                // loop, same requests over real sockets.
                ("requests_per_sec_blocking", num(blocking_rps)),
                // The raw ExtractionService loop with no socket at all.
                ("requests_per_sec_inprocess", num(inprocess_rps)),
                (
                    "requests_per_sec_no_health",
                    num(requests.len() as f64 / t_service_off),
                ),
                // Reactor-measured full-request wall-time percentiles
                // (request parsed → response queued), microseconds.
                ("latency_p50_us", num(latency.p50_us as f64)),
                ("latency_p90_us", num(latency.p90_us as f64)),
                ("latency_p99_us", num(latency.p99_us as f64)),
                ("latency_max_us", num(latency.max_us as f64)),
                ("latency_samples", num(latency.count as f64)),
            ]),
        ),
        (
            "bundle_cold",
            obj(vec![
                ("sites", num(bundle_sites as f64)),
                ("v2_bytes", num(v2_bytes as f64)),
                ("v3_bytes", num(v3_bytes as f64)),
                ("v2_cold_ms", num(t_v2_cold * ms)),
                ("v3_cold_ms", num(t_v3_cold * ms)),
            ]),
        ),
        (
            "relearn_recovery",
            obj(vec![
                ("requests_to_degrade", num(requests_to_degrade as f64)),
                ("relearn_ms", num(t_relearn * ms)),
                ("requests_to_recover", num(requests_to_recover as f64)),
            ]),
        ),
        ("threads_available", num(available as f64)),
        ("passes", num(passes as f64)),
    ]);

    let json_path = std::env::var("BENCH_JSON").unwrap_or_else(|_| {
        // CARGO_MANIFEST_DIR is crates/bench; the workspace target dir
        // sits two levels up.
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_xpath.json").to_string()
    });
    let rendered = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&json_path, rendered + "\n")
        .unwrap_or_else(|e| panic!("write {json_path}: {e}"));
    println!("wrote {json_path}");

    if let Ok(baseline_path) = std::env::var("BENCH_BASELINE") {
        gate(&report, &baseline_path);
    }
}

/// Fails the process when a measured speedup drops below the committed
/// baseline's `min_speedup` thresholds (kept generous: CI runners are
/// noisy and slow).
fn gate(report: &Value, baseline_path: &str) {
    // Cargo runs bench binaries with the package as working directory;
    // fall back to resolving workspace-root-relative paths.
    let from_root = format!(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../{}"),
        baseline_path
    );
    let text = std::fs::read_to_string(baseline_path)
        .or_else(|_| std::fs::read_to_string(&from_root))
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    let baseline = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("cannot parse baseline {baseline_path}: {e}"));
    let minimums = baseline
        .get("min_speedup")
        .expect("baseline has a min_speedup object");
    let Value::Object(entries) = minimums else {
        panic!("min_speedup must be an object");
    };

    let mut failures: Vec<String> = Vec::new();
    for (metric, min) in entries {
        let min = min.as_f64().expect("threshold is a number");
        let measured = report
            .get("speedups")
            .and_then(|s| s.get(metric))
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("baseline names unknown speedup metric '{metric}'"));
        if measured < min {
            failures.push(format!(
                "  {metric}: measured {measured:.2}x < baseline minimum {min:.2}x"
            ));
        } else {
            println!("gate ok: {metric} {measured:.2}x >= {min:.2}x");
        }
    }
    if !failures.is_empty() {
        eprintln!("BENCH GATE FAILED against {baseline_path}:");
        for f in &failures {
            eprintln!("{f}");
        }
        std::process::exit(1);
    }
    println!("bench gate passed ({baseline_path})");
}
