//! Figure 2(a): # of wrapper-inductor calls (TopDown / BottomUp / Naive)
//! per website, LR wrappers, DEALERS.

use aw_core::WrapperLanguage;
use aw_eval::experiments::calls;

fn main() {
    aw_bench::header("Figure 2(a)", "# of wrapper calls for LR on DEALERS");
    let (ds, annot) = aw_bench::dealers();
    let result = calls::run(&ds.sites, |s| annot.annotate(&s.site), WrapperLanguage::Lr);
    aw_bench::maybe_write_json("fig2a_calls_lr", &result);
    println!("{result}");
}
