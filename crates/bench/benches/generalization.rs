//! Wrapper generalization: learn on the first pages of each site, apply
//! the portable rule to later pages — the deployment scenario behind the
//! paper's production claim.

use aw_core::WrapperLanguage;
use aw_eval::experiments::generalization;
use aw_eval::{learn_model, split_half};

fn main() {
    aw_bench::header("Generalization", "portable rules on unseen pages (DEALERS)");
    let (ds, annot) = aw_bench::dealers();
    let labels_of = |s: &aw_sitegen::GeneratedSite| annot.annotate(&s.site);
    let (train, test) = split_half(&ds.sites);
    let model = learn_model(&train, labels_of);
    for lang in [WrapperLanguage::XPath, WrapperLanguage::Lr] {
        let result = generalization::run(&test, labels_of, lang, &model, 3);
        aw_bench::maybe_write_json(&format!("generalization_{}", lang.name()), &result);
        println!("{result}");
    }
}
