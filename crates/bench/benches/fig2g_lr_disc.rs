//! Figure 2(g): accuracy of NAIVE vs NTW, LR wrappers, DISC.

use aw_core::WrapperLanguage;
use aw_eval::experiments::accuracy;
use aw_eval::Method;

fn main() {
    aw_bench::header("Figure 2(g)", "accuracy of LR on DISC");
    let (ds, annot) = aw_bench::disc();
    let result = accuracy::run(
        "DISC",
        &ds.sites,
        |s| annot.annotate(&s.site),
        WrapperLanguage::Lr,
        &[Method::Naive, Method::Ntw],
    );
    aw_bench::maybe_write_json("fig2g_lr_disc", &result);
    println!("{result}");
}
