//! Figure 2(h): NTW vs NTW-L vs NTW-X, XPATH wrappers, DEALERS.

use aw_core::WrapperLanguage;
use aw_eval::experiments::variants;

fn main() {
    aw_bench::header("Figure 2(h)", "XPATH ranking variants on DEALERS");
    let (ds, annot) = aw_bench::dealers();
    let result = variants::run(
        "DEALERS",
        &ds.sites,
        |s| annot.annotate(&s.site),
        WrapperLanguage::XPath,
    );
    aw_bench::maybe_write_json("fig2h_variants_xpath", &result);
    println!("{result}");
}
