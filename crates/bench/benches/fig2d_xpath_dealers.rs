//! Figure 2(d): accuracy of NAIVE vs NTW, XPATH wrappers, DEALERS.

use aw_core::WrapperLanguage;
use aw_eval::experiments::accuracy;
use aw_eval::Method;

fn main() {
    aw_bench::header("Figure 2(d)", "accuracy of XPATH on DEALERS");
    let (ds, annot) = aw_bench::dealers();
    let result = accuracy::run(
        "DEALERS",
        &ds.sites,
        |s| annot.annotate(&s.site),
        WrapperLanguage::XPath,
        &[Method::Naive, Method::Ntw],
    );
    aw_bench::maybe_write_json("fig2d_xpath_dealers", &result);
    println!("{result}");
}
