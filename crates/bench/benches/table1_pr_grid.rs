//! Table 1: NTW accuracy as a function of annotator precision/recall,
//! controlled synthetic annotator (§7.4), XPATH wrappers, DEALERS.

use aw_eval::experiments::table1;

fn main() {
    aw_bench::header("Table 1", "accuracy of NTW vs annotator (p, r)");
    let ds = aw_bench::dealers_for_grid();
    let result = table1::run(&ds.sites, 0x7AB1);
    aw_bench::maybe_write_json("table1_pr_grid", &result);
    println!("{result}");
}
