//! Criterion microbenchmarks for the enumeration algorithms (§4):
//! TopDown vs BottomUp vs Naive on the paper's Example 1 TABLE and on a
//! DEALERS site with the XPATH inductor.

use aw_annotate::{DictionaryAnnotator, MatchMode};
use aw_enum::{bottom_up, naive, top_down};
use aw_induct::table::{example1_inductor, example1_labels};
use aw_induct::{NodeSet, XPathInductor};
use aw_sitegen::{generate_dealers, DealersConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table(c: &mut Criterion) {
    let inductor = example1_inductor();
    let labels = example1_labels();
    let mut g = c.benchmark_group("enumerate/table_example1");
    g.bench_function("naive", |b| b.iter(|| naive(&inductor, black_box(&labels))));
    g.bench_function("bottom_up", |b| {
        b.iter(|| bottom_up(&inductor, black_box(&labels)))
    });
    g.bench_function("top_down", |b| {
        b.iter(|| top_down(&inductor, black_box(&labels)))
    });
    g.finish();
}

fn bench_xpath_site(c: &mut Criterion) {
    let ds = generate_dealers(&DealersConfig::small(1, 0xBE7C));
    let site = &ds.sites[0].site;
    let annot = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
    let labels: NodeSet = annot.annotate(site);
    let inductor = XPathInductor::new(site);
    let mut g = c.benchmark_group("enumerate/xpath_dealer_site");
    g.bench_function("bottom_up", |b| {
        b.iter(|| bottom_up(&inductor, black_box(&labels)))
    });
    g.bench_function("top_down", |b| {
        b.iter(|| top_down(&inductor, black_box(&labels)))
    });
    g.finish();
}

criterion_group!(benches, bench_table, bench_xpath_site);
criterion_main!(benches);
