//! Figure 2(c): enumeration wall-clock time (TopDown vs BottomUp),
//! XPATH wrappers, DEALERS.

use aw_eval::experiments::timing;

fn main() {
    aw_bench::header(
        "Figure 2(c)",
        "enumeration running time for XPATH on DEALERS",
    );
    let (ds, annot) = aw_bench::dealers();
    let result = timing::run(&ds.sites, |s| annot.annotate(&s.site));
    aw_bench::maybe_write_json("fig2c_time_xpath", &result);
    println!("{result}");
}
