//! Criterion microbenchmarks for the wrapper inductors (§5): learning +
//! extraction cost of XPATH and LR on a DEALERS site.

use aw_annotate::{DictionaryAnnotator, MatchMode};
use aw_induct::{LrInductor, NodeSet, WrapperInductor, XPathInductor};
use aw_sitegen::{generate_dealers, DealersConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_inductors(c: &mut Criterion) {
    let ds = generate_dealers(&DealersConfig::small(1, 0x1DD));
    let site = &ds.sites[0].site;
    let annot = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
    let labels: NodeSet = annot.annotate(site);
    assert!(!labels.is_empty());

    let mut g = c.benchmark_group("induct");
    g.bench_function("xpath/build", |b| {
        b.iter(|| XPathInductor::new(black_box(site)))
    });
    let xp = XPathInductor::new(site);
    g.bench_function("xpath/extract", |b| {
        b.iter(|| xp.extract(black_box(&labels)))
    });
    let lr = LrInductor::new(site);
    g.bench_function("lr/extract", |b| b.iter(|| lr.extract(black_box(&labels))));
    g.finish();
}

criterion_group!(benches, bench_inductors);
criterion_main!(benches);
