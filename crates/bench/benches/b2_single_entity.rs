//! Appendix B.2: single-entity extraction (album titles) on DISC.

use aw_eval::experiments::single_entity;

fn main() {
    aw_bench::header("Appendix B.2", "single-entity extraction on DISC");
    let (ds, _) = aw_bench::disc();
    let result = single_entity::run(&ds);
    aw_bench::maybe_write_json("b2_single_entity", &result);
    println!("{result}");
}
