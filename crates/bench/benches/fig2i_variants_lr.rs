//! Figure 2(i): NTW vs NTW-L vs NTW-X, LR wrappers, DEALERS.

use aw_core::WrapperLanguage;
use aw_eval::experiments::variants;

fn main() {
    aw_bench::header("Figure 2(i)", "LR ranking variants on DEALERS");
    let (ds, annot) = aw_bench::dealers();
    let result = variants::run(
        "DEALERS",
        &ds.sites,
        |s| annot.annotate(&s.site),
        WrapperLanguage::Lr,
    );
    aw_bench::maybe_write_json("fig2i_variants_lr", &result);
    println!("{result}");
}
