//! Figure 3(b): multi-type vs single-type per-field accuracy, DEALERS.
//! (Shares the runner with Figure 3(a); this target prints the per-field
//! comparison series.)

use aw_eval::experiments::multitype;

fn main() {
    aw_bench::header("Figure 3(b)", "multi-type vs single-type extraction");
    let (ds, _) = aw_bench::dealers();
    let result = multitype::run(&ds);
    let multi = &result.rows[1];
    println!("{:>8} {:>8} {:>8}", "field", "MULTI", "SINGLE");
    println!(
        "{:>8} {:>8.3} {:>8.3}",
        "Name", multi.names.f1, result.single_names.f1
    );
    println!(
        "{:>8} {:>8.3} {:>8.3}",
        "Zipcode", multi.zips.f1, result.single_zips.f1
    );
}
