//! Figure 3(c): accuracy of NAIVE vs NTW, XPath wrappers, PRODUCTS.

use aw_core::WrapperLanguage;
use aw_eval::experiments::accuracy;
use aw_eval::Method;

fn main() {
    aw_bench::header("Figure 3(c)", "accuracy of XPath on PRODUCTS");
    let (ds, annot) = aw_bench::products();
    let result = accuracy::run(
        "PRODUCTS",
        &ds.sites,
        |s| annot.annotate(&s.site),
        WrapperLanguage::XPath,
        &[Method::Naive, Method::Ntw],
    );
    aw_bench::maybe_write_json("fig3c_products", &result);
    println!("{result}");
}
