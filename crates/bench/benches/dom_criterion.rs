//! Criterion microbenchmarks for the DOM substrate: tokenize, parse and
//! serialize a realistic listing page.

use aw_sitegen::{generate_dealers, DealersConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_dom(c: &mut Criterion) {
    let ds = generate_dealers(&DealersConfig::small(1, 0xD0));
    let html = aw_dom::serialize(ds.sites[0].site.page(0));

    let mut g = c.benchmark_group("dom");
    g.throughput(Throughput::Bytes(html.len() as u64));
    g.bench_function("tokenize", |b| {
        b.iter(|| aw_dom::tokenizer::tokenize(black_box(&html)))
    });
    g.bench_function("parse", |b| b.iter(|| aw_dom::parse(black_box(&html))));
    let doc = aw_dom::parse(&html);
    g.bench_function("serialize_with_spans", |b| {
        b.iter(|| aw_dom::serialize_with_spans(black_box(&doc)))
    });
    g.bench_function("preorder", |b| {
        b.iter(|| black_box(&doc).preorder_all().count())
    });
    g.finish();
}

criterion_group!(benches, bench_dom);
criterion_main!(benches);
