//! Wrapper-space evaluation: reference interpreter vs compiled indexed
//! engine vs shared-prefix batch engine.
//!
//! Reproduces the hot loop of the NTW pipeline — evaluate every candidate
//! wrapper of an enumerated space `W(L)` over every page of a dealer-site
//! corpus — three ways:
//!
//! * `reference`: per-wrapper tree-walking interpretation (the seed
//!   implementation's strategy);
//! * `indexed`: per-wrapper evaluation against the `DocIndex` (posting
//!   lists + subtree spans + cached positions);
//! * `batch`: the whole space at once through a `BatchEvaluator` trie, so
//!   shared step prefixes are evaluated once per page.
//!
//! Ends by printing the measured speedup ratios; the acceptance bar is
//! batch ≥ 5× reference on ≥ 32 prefix-sharing candidates.

use aw_annotate::{DictionaryAnnotator, MatchMode};
use aw_dom::Document;
use aw_enum::top_down;
use aw_induct::{NodeSet, XPathInductor};
use aw_sitegen::{generate_dealers, DealersConfig};
use aw_xpath::{evaluate_compiled, reference, BatchEvaluator, CompiledXPath, XPath};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Instant;

/// Dealer pages plus an enumerated wrapper space of ≥ 32 candidates.
fn corpus() -> (Vec<Document>, Vec<XPath>) {
    let ds = generate_dealers(&DealersConfig {
        sites: 6,
        pages_per_site: 4,
        seed: 0xBEEF,
        ..DealersConfig::default()
    });
    let annot = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);

    let mut pages: Vec<Document> = Vec::new();
    let mut paths: Vec<XPath> = Vec::new();
    let mut seen: std::collections::BTreeSet<String> = Default::default();
    for gs in &ds.sites {
        for p in 0..gs.site.page_count() as u32 {
            pages.push(gs.site.page(p).clone());
        }
        let labels: NodeSet = annot.annotate(&gs.site);
        if labels.is_empty() {
            continue;
        }
        let ind = XPathInductor::new(&gs.site);
        for (_, xp) in top_down(&ind, &labels).xpath_candidates() {
            if seen.insert(xp.to_string()) {
                paths.push(xp);
            }
        }
    }
    assert!(
        paths.len() >= 32,
        "wrapper space too small: {} candidates",
        paths.len()
    );
    (pages, paths)
}

fn eval_reference(pages: &[Document], paths: &[XPath]) -> usize {
    let mut nodes = 0;
    for page in pages {
        for path in paths {
            nodes += reference::evaluate(path, page).len();
        }
    }
    nodes
}

fn eval_indexed(pages: &[Document], compiled: &[CompiledXPath]) -> usize {
    let mut nodes = 0;
    for page in pages {
        for path in compiled {
            nodes += evaluate_compiled(path, page).len();
        }
    }
    nodes
}

fn eval_batch(pages: &[Document], batch: &BatchEvaluator) -> usize {
    let mut nodes = 0;
    for page in pages {
        nodes += batch.evaluate(page).iter().map(Vec::len).sum::<usize>();
    }
    nodes
}

fn bench_wrapper_space(c: &mut Criterion) {
    let (pages, paths) = corpus();
    let compiled: Vec<CompiledXPath> = paths.iter().map(CompiledXPath::compile).collect();
    // Template cache off: this metric isolates trie sharing (repeated
    // measurement passes over the same pages would otherwise replay
    // recorded traces — `xpath_shard` times that separately).
    let batch = BatchEvaluator::new(&compiled).with_cache(false);
    // Warm the per-document indexes so every engine variant measures
    // steady-state evaluation (index build amortizes across the pipeline;
    // `reference` does not use it at all).
    for page in &pages {
        page.index();
    }
    // All engines must agree before we time anything.
    let expected = eval_reference(&pages, &paths);
    assert_eq!(eval_indexed(&pages, &compiled), expected);
    assert_eq!(eval_batch(&pages, &batch), expected);

    println!(
        "wrapper space: {} candidates, {} pages, {} trie steps vs {} total steps",
        paths.len(),
        pages.len(),
        batch.distinct_steps(),
        paths.iter().map(|p| p.steps.len()).sum::<usize>(),
    );

    let mut g = c.benchmark_group("xpath_space");
    g.throughput(Throughput::Elements((paths.len() * pages.len()) as u64));
    g.bench_function("reference", |b| {
        b.iter(|| eval_reference(black_box(&pages), black_box(&paths)))
    });
    g.bench_function("indexed", |b| {
        b.iter(|| eval_indexed(black_box(&pages), black_box(&compiled)))
    });
    g.bench_function("batch", |b| {
        b.iter(|| eval_batch(black_box(&pages), black_box(&batch)))
    });
    g.finish();

    // Explicit speedup summary (the acceptance metric).
    let time = |f: &dyn Fn() -> usize| {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t = Instant::now();
            black_box(f());
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    };
    let t_ref = time(&|| eval_reference(&pages, &paths));
    let t_idx = time(&|| eval_indexed(&pages, &compiled));
    let t_bat = time(&|| eval_batch(&pages, &batch));
    println!(
        "speedup vs reference: indexed {:.1}x, batch {:.1}x \
         (ref {:.3} ms, indexed {:.3} ms, batch {:.3} ms per corpus pass)",
        t_ref / t_idx,
        t_ref / t_bat,
        t_ref * 1e3,
        t_idx * 1e3,
        t_bat * 1e3,
    );
}

/// Single-rule replay (the `LearnedRule::apply` production path): one
/// compiled xpath over many pages.
fn bench_single_rule(c: &mut Criterion) {
    let (pages, paths) = corpus();
    let rule = paths
        .iter()
        .find(|p| p.steps.len() >= 4)
        .expect("a deep rule exists")
        .clone();
    let compiled = CompiledXPath::compile(&rule);
    for page in &pages {
        page.index();
    }
    let mut g = c.benchmark_group("single_rule");
    g.throughput(Throughput::Elements(pages.len() as u64));
    g.bench_function("reference", |b| {
        b.iter(|| {
            pages
                .iter()
                .map(|p| reference::evaluate(black_box(&rule), p).len())
                .sum::<usize>()
        })
    });
    g.bench_function("indexed", |b| {
        b.iter(|| {
            pages
                .iter()
                .map(|p| evaluate_compiled(black_box(&compiled), p).len())
                .sum::<usize>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_wrapper_space, bench_single_rule);
criterion_main!(benches);
