//! Figure 2(b): # of wrapper-inductor calls per website, XPATH, DEALERS.

use aw_core::WrapperLanguage;
use aw_eval::experiments::calls;

fn main() {
    aw_bench::header("Figure 2(b)", "# of wrapper calls for XPATH on DEALERS");
    let (ds, annot) = aw_bench::dealers();
    let result = calls::run(
        &ds.sites,
        |s| annot.annotate(&s.site),
        WrapperLanguage::XPath,
    );
    aw_bench::maybe_write_json("fig2b_calls_xpath", &result);
    println!("{result}");
}
