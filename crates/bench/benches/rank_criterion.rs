//! Criterion microbenchmarks for the ranking model (§6): segmentation,
//! feature computation and full wrapper scoring.

use aw_annotate::{DictionaryAnnotator, MatchMode};
use aw_rank::{
    list_features, segment_site, AnnotatorModel, ListFeatures, PublicationModel, RankingModel,
};
use aw_sitegen::{generate_dealers, DealersConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_rank(c: &mut Criterion) {
    let ds = generate_dealers(&DealersConfig::small(1, 0xAA));
    let gs = &ds.sites[0];
    let gold = gs.gold();
    let annot = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
    let labels = annot.annotate(&gs.site);

    let mut g = c.benchmark_group("rank");
    g.bench_function("segment_site", |b| {
        b.iter(|| segment_site(black_box(&gs.site), black_box(gold)))
    });
    let segments = segment_site(&gs.site, gold);
    g.bench_function("list_features", |b| {
        b.iter(|| list_features(black_box(&segments)))
    });
    let model = RankingModel::new(
        AnnotatorModel::new(0.95, 0.24),
        PublicationModel::learn(&[
            ListFeatures {
                schema_size: 4.0,
                alignment: 0.0,
            },
            ListFeatures {
                schema_size: 3.0,
                alignment: 1.0,
            },
        ]),
    );
    g.bench_function("score_wrapper", |b| {
        b.iter(|| model.score(black_box(&gs.site), black_box(&labels), black_box(gold)))
    });
    g.finish();
}

criterion_group!(benches, bench_rank);
criterion_main!(benches);
