//! Figure 3(a): multi-type (name + zipcode) extraction, NAIVE vs NTW,
//! DEALERS.

use aw_eval::experiments::multitype;

fn main() {
    aw_bench::header("Figure 3(a)", "accuracy of the multi-type extractor");
    let (ds, _) = aw_bench::dealers();
    let result = multitype::run(&ds);
    aw_bench::maybe_write_json("fig3a_multitype", &result);
    println!("{result}");
}
