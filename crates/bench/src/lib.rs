//! # aw-bench — shared scaffolding for the figure/table benchmarks
//!
//! Every `[[bench]]` target in this crate regenerates one figure or table
//! of the paper and prints the corresponding rows/series. Dataset sizes
//! default to the paper's (330 DEALERS / 15 DISC / 10 PRODUCTS websites);
//! set `AW_SCALE=quick` for a fast smoke run.

use aw_annotate::{DictionaryAnnotator, MatchMode};
use aw_sitegen::{
    generate_dealers, generate_disc, generate_products, DealersConfig, DealersDataset, DiscConfig,
    DiscDataset, ProductsConfig, ProductsDataset,
};

/// Benchmark scale, from the `AW_SCALE` environment variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Paper-sized datasets (default).
    Full,
    /// Reduced datasets for smoke runs (`AW_SCALE=quick`).
    Quick,
}

/// Reads the scale from the environment.
pub fn scale() -> Scale {
    match std::env::var("AW_SCALE").as_deref() {
        Ok("quick") => Scale::Quick,
        _ => Scale::Full,
    }
}

/// The DEALERS dataset at the current scale, with its dictionary annotator.
pub fn dealers() -> (DealersDataset, DictionaryAnnotator) {
    let cfg = match scale() {
        Scale::Full => DealersConfig::default(),
        Scale::Quick => DealersConfig::small(24, 0xDEA1),
    };
    let ds = generate_dealers(&cfg);
    let annot = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
    (ds, annot)
}

/// A reduced DEALERS dataset for the quadratic-cost experiments
/// (Table 1's 30-cell grid re-learns models per cell).
pub fn dealers_for_grid() -> DealersDataset {
    let cfg = match scale() {
        // §7.4 annotates 25 webpages per site; we use 12 slightly smaller
        // pages (similar label mass) to keep the 30-cell grid fast.
        Scale::Full => DealersConfig {
            sites: 80,
            pages_per_site: 12,
            ..DealersConfig::default()
        },
        Scale::Quick => DealersConfig::small(16, 0xDEA1),
    };
    generate_dealers(&cfg)
}

/// The DISC dataset at the current scale, with its track annotator.
pub fn disc() -> (DiscDataset, DictionaryAnnotator) {
    let cfg = match scale() {
        Scale::Full => DiscConfig::default(),
        Scale::Quick => DiscConfig::small(6, 0xD15C),
    };
    let ds = generate_disc(&cfg);
    let annot = DictionaryAnnotator::new(ds.track_dictionary.iter(), MatchMode::Exact);
    (ds, annot)
}

/// The PRODUCTS dataset at the current scale, with its model annotator.
pub fn products() -> (ProductsDataset, DictionaryAnnotator) {
    let cfg = match scale() {
        Scale::Full => ProductsConfig::default(),
        Scale::Quick => ProductsConfig::small(4, 0x9800),
    };
    let ds = generate_products(&cfg);
    let annot = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
    (ds, annot)
}

/// If `AW_JSON_DIR` is set, serializes an experiment result there as
/// `<name>.json` (for plot regeneration); silently does nothing otherwise.
pub fn maybe_write_json<T: serde::Serialize>(name: &str, value: &T) {
    if let Ok(dir) = std::env::var("AW_JSON_DIR") {
        let path = std::path::Path::new(&dir).join(format!("{name}.json"));
        if let Err(e) = aw_eval::write_json(&path, value) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

/// Prints the standard bench header.
pub fn header(figure: &str, description: &str) {
    println!("==============================================================");
    println!("{figure}: {description}");
    println!("scale: {:?}", scale());
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_full() {
        // (Environment-dependent, but AW_SCALE is unset under `cargo test`.)
        if std::env::var("AW_SCALE").is_err() {
            assert_eq!(scale(), Scale::Full);
        }
    }

    #[test]
    fn quick_datasets_generate() {
        std::env::set_var("AW_SCALE", "quick");
        let (d, _) = dealers();
        assert!(!d.sites.is_empty());
        let (c, _) = disc();
        assert!(!c.sites.is_empty());
        let (p, _) = products();
        assert!(!p.sites.is_empty());
        std::env::remove_var("AW_SCALE");
    }
}
