//! The TABLE wrapper language over real DOM pages.
//!
//! [`crate::table::TableInductor`] is the paper's didactic running example
//! over an abstract *n × m* grid. This module grounds the same language in
//! actual HTML: every text node of a page gets a grid coordinate derived
//! from the markup — its 1-based `<tr>` index within the page and the
//! 1-based `<td>`/`<th>` index within that row (0 marks "outside any
//! row/cell") — and the four TABLE generalizations (cell, row, column,
//! whole table) select text nodes by coordinate.
//!
//! The resulting [`DomTableInductor`] is well-behaved (Definition 1) and
//! feature-based with the same `row`/`col` attributes as Example 3, so it
//! plugs into every enumeration algorithm. [`TableRule`] is the portable
//! form: detached from the training site, it applies to any freshly
//! crawled [`Document`].

use crate::site::Site;
use crate::table::TableAttr;
use crate::traits::{FeatureBased, ItemSet, WrapperInductor};
use aw_dom::{Document, NodeId, PageNode};
use std::collections::BTreeMap;

/// Grid coordinate of a text node: `(row, col)`, both 1-based; 0 means
/// the node sits outside any `<tr>` (row) or `<td>`/`<th>` (col).
pub type TableCell = (u32, u32);

/// A portable TABLE rule: one of the language's four generalizations
/// (plus the empty rule φ(∅) = ∅), detached from any site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TableRule {
    /// φ(∅): extracts nothing.
    Empty,
    /// One grid cell: text nodes at exactly `(row, col)`.
    Cell {
        /// 1-based row (`<tr>` index within the page).
        row: u32,
        /// 1-based column (`<td>`/`<th>` index within the row).
        col: u32,
    },
    /// A whole row: every text node with this row coordinate.
    Row(u32),
    /// A whole column: every text node with this column coordinate.
    Col(u32),
    /// The whole table (here: every text node of the page).
    Table,
}

impl TableRule {
    /// Whether the rule selects a node at grid coordinate `cell`.
    pub fn selects(&self, (row, col): TableCell) -> bool {
        match *self {
            TableRule::Empty => false,
            TableRule::Cell { row: r, col: c } => row == r && col == c,
            TableRule::Row(r) => row == r,
            TableRule::Col(c) => col == c,
            TableRule::Table => true,
        }
    }

    /// Applies the rule to a page it has never seen, returning matched
    /// text nodes in document order.
    pub fn apply(&self, doc: &Document) -> Vec<NodeId> {
        page_cells(doc)
            .into_iter()
            .filter(|&(_, cell)| self.selects(cell))
            .map(|(id, _)| id)
            .collect()
    }
}

impl std::fmt::Display for TableRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            TableRule::Empty => f.write_str("∅"),
            TableRule::Cell { row, col } => write!(f, "cell({row},{col})"),
            TableRule::Row(r) => write!(f, "R{r}"),
            TableRule::Col(c) => write!(f, "C{c}"),
            TableRule::Table => f.write_str("T"),
        }
    }
}

/// The grid coordinate of every text node of a page, in document order.
///
/// Rows number `<tr>` elements consecutively across the whole page (a
/// page with several tables keeps one global row counter — same-script
/// pages agree on the numbering); columns number `<td>`/`<th>` cells
/// within their row. Text outside any row lands at row 0, text in a row
/// but outside any cell at column 0, so every text node has a coordinate
/// and TABLE rules keep the fidelity property on arbitrary labels.
pub fn page_cells(doc: &Document) -> Vec<(NodeId, TableCell)> {
    let mut out = Vec::new();
    let mut trs = 0u32;
    walk(doc, doc.root(), (0, 0), &mut trs, &mut 0, &mut out);
    out
}

fn walk(
    doc: &Document,
    id: NodeId,
    cell: TableCell,
    trs: &mut u32,
    tds: &mut u32,
    out: &mut Vec<(NodeId, TableCell)>,
) {
    if doc.is_text(id) {
        out.push((id, cell));
        return;
    }
    match doc.tag(id) {
        Some("tr") => {
            *trs += 1;
            let row = *trs;
            let mut row_tds = 0u32;
            for &child in doc.children(id) {
                walk(doc, child, (row, 0), trs, &mut row_tds, out);
            }
        }
        Some("td" | "th") if cell.0 > 0 => {
            *tds += 1;
            let col = *tds;
            for &child in doc.children(id) {
                walk(doc, child, (cell.0, col), trs, tds, out);
            }
        }
        _ => {
            for &child in doc.children(id) {
                walk(doc, child, cell, trs, tds, out);
            }
        }
    }
}

/// The TABLE inductor bound to a [`Site`]: grid coordinates are computed
/// once per page at construction, generalization is pure coordinate
/// comparison.
#[derive(Clone, Debug)]
pub struct DomTableInductor<'a> {
    site: &'a Site,
    cells: BTreeMap<PageNode, TableCell>,
}

impl<'a> DomTableInductor<'a> {
    /// Builds the inductor, computing every text node's grid coordinate.
    pub fn new(site: &'a Site) -> Self {
        let mut cells = BTreeMap::new();
        for (p, doc) in site.pages().iter().enumerate() {
            for (id, cell) in page_cells(doc) {
                cells.insert(PageNode::new(p as u32, id), cell);
            }
        }
        DomTableInductor { site, cells }
    }

    /// The site this inductor operates over.
    pub fn site(&self) -> &Site {
        self.site
    }

    fn cell_of(&self, node: PageNode) -> TableCell {
        self.cells.get(&node).copied().unwrap_or((0, 0))
    }

    /// Learns the portable rule for a label set: the TABLE generalization
    /// of the labels' grid coordinates (Example 1's case analysis).
    pub fn learn(&self, labels: &ItemSet<PageNode>) -> TableRule {
        let Some(&first) = labels.iter().next() else {
            return TableRule::Empty;
        };
        let (row, col) = self.cell_of(first);
        let same_row = labels.iter().all(|&n| self.cell_of(n).0 == row);
        let same_col = labels.iter().all(|&n| self.cell_of(n).1 == col);
        match (same_row, same_col) {
            (true, true) => TableRule::Cell { row, col },
            (false, true) => TableRule::Col(col),
            (true, false) => TableRule::Row(row),
            (false, false) => TableRule::Table,
        }
    }
}

impl WrapperInductor for DomTableInductor<'_> {
    type Item = PageNode;

    fn extract(&self, labels: &ItemSet<PageNode>) -> ItemSet<PageNode> {
        let rule = self.learn(labels);
        if rule == TableRule::Empty {
            return ItemSet::new();
        }
        self.cells
            .iter()
            .filter(|&(_, &cell)| rule.selects(cell))
            .map(|(&n, _)| n)
            .collect()
    }

    fn rule(&self, labels: &ItemSet<PageNode>) -> String {
        self.learn(labels).to_string()
    }

    fn universe(&self) -> ItemSet<PageNode> {
        self.cells.keys().copied().collect()
    }
}

impl FeatureBased for DomTableInductor<'_> {
    type Attr = TableAttr;

    fn attributes(&self, _labels: &ItemSet<PageNode>) -> Vec<TableAttr> {
        vec![TableAttr::Col, TableAttr::Row]
    }

    fn subdivision(&self, s: &ItemSet<PageNode>, attr: &TableAttr) -> Vec<ItemSet<PageNode>> {
        let mut groups: BTreeMap<u32, ItemSet<PageNode>> = BTreeMap::new();
        for &n in s {
            let (row, col) = self.cell_of(n);
            let key = match attr {
                TableAttr::Row => row,
                TableAttr::Col => col,
            };
            groups.entry(key).or_default().insert(n);
        }
        groups.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::check_well_behaved;

    fn grid_site() -> Site {
        let page = |rows: &[(&str, &str, &str)]| {
            let mut s = String::from("<h1>Dealers</h1><table>");
            for (a, b, c) in rows {
                s.push_str(&format!("<tr><td>{a}</td><td>{b}</td><td>{c}</td></tr>"));
            }
            s + "</table><div class='footer'>contact</div>"
        };
        Site::from_html(&[
            page(&[
                ("ALPHA", "1 Elm", "38701"),
                ("BETA", "2 Oak", "38702"),
                ("GAMMA", "3 Fir", "38703"),
            ]),
            page(&[("DELTA", "4 Ash", "38704"), ("EPSILON", "5 Ivy", "38705")]),
        ])
    }

    fn find(site: &Site, texts: &[&str]) -> ItemSet<PageNode> {
        texts.iter().flat_map(|t| site.find_text(t)).collect()
    }

    #[test]
    fn coordinates_cover_every_text_node() {
        let site = grid_site();
        let ind = DomTableInductor::new(&site);
        assert_eq!(
            ind.universe(),
            site.text_nodes().iter().copied().collect::<ItemSet<_>>()
        );
        // Headline and footer live outside the grid.
        let (doc, h1) = site.resolve(site.find_text("Dealers")[0]);
        let cells = page_cells(doc);
        let h1_cell = cells.iter().find(|(id, _)| *id == h1).unwrap().1;
        assert_eq!(h1_cell, (0, 0));
    }

    #[test]
    fn column_generalization_extracts_all_names() {
        let site = grid_site();
        let ind = DomTableInductor::new(&site);
        // Two names in different rows → column 1 on every page.
        let labels = find(&site, &["ALPHA", "EPSILON"]);
        assert_eq!(ind.rule(&labels), "C1");
        let extraction = ind.extract(&labels);
        assert_eq!(
            extraction,
            find(&site, &["ALPHA", "BETA", "GAMMA", "DELTA", "EPSILON"])
        );
    }

    #[test]
    fn row_and_cell_and_table_generalizations() {
        let site = grid_site();
        let ind = DomTableInductor::new(&site);
        // Same row, different columns → the whole row (on both pages).
        let row = find(&site, &["ALPHA", "38701"]);
        assert_eq!(ind.rule(&row), "R1");
        assert!(ind.extract(&row).contains(&site.find_text("1 Elm")[0]));
        assert!(ind.extract(&row).contains(&site.find_text("DELTA")[0]));
        // One label → its cell.
        let cell = find(&site, &["2 Oak"]);
        assert_eq!(ind.rule(&cell), "cell(2,2)");
        assert_eq!(ind.extract(&cell), find(&site, &["2 Oak", "5 Ivy"]));
        // Spanning rows and columns → everything.
        let spread = find(&site, &["ALPHA", "38702"]);
        assert_eq!(ind.rule(&spread), "T");
        assert_eq!(ind.extract(&spread), ind.universe());
        // Empty in, empty out.
        assert_eq!(ind.extract(&ItemSet::new()), ItemSet::new());
        assert_eq!(ind.rule(&ItemSet::new()), "∅");
    }

    #[test]
    fn dom_table_is_well_behaved() {
        let site = grid_site();
        let ind = DomTableInductor::new(&site);
        let labels = find(&site, &["ALPHA", "2 Oak", "38703", "DELTA", "Dealers"]);
        let report = check_well_behaved(&ind, &labels);
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn portable_rule_replays_site_extraction() {
        let site = grid_site();
        let ind = DomTableInductor::new(&site);
        let labels = find(&site, &["ALPHA", "EPSILON"]);
        let rule = ind.learn(&labels);
        let mut replayed = ItemSet::new();
        for p in 0..site.page_count() as u32 {
            replayed.extend(
                rule.apply(site.page(p))
                    .into_iter()
                    .map(|id| PageNode::new(p, id)),
            );
        }
        assert_eq!(replayed, ind.extract(&labels));
        // And it generalizes to an unseen page of the same script.
        let fresh = aw_dom::parse(
            "<h1>Dealers</h1><table><tr><td>OMEGA</td><td>9 Elm</td><td>38709</td></tr>\
             </table><div class='footer'>contact</div>",
        );
        let values: Vec<&str> = rule
            .apply(&fresh)
            .into_iter()
            .filter_map(|id| fresh.text(id))
            .collect();
        assert_eq!(values, vec!["OMEGA"]);
    }

    #[test]
    fn feature_based_subdivision_groups_by_coordinate() {
        let site = grid_site();
        let ind = DomTableInductor::new(&site);
        let labels = find(&site, &["ALPHA", "BETA", "2 Oak"]);
        let by_col = ind.subdivision(&labels, &TableAttr::Col);
        assert_eq!(by_col.len(), 2); // col 1 {ALPHA, BETA}, col 2 {2 Oak}
        let by_row = ind.subdivision(&labels, &TableAttr::Row);
        assert_eq!(by_row.len(), 2); // row 1 {ALPHA}, row 2 {BETA, 2 Oak}
    }
}
