//! The HLRT wrapper class — WIEN's extension of LR with *head* and *tail*
//! delimiters that limit the region where the `(l, r)` pair applies (§5:
//! "HLRT wrappers, which, in addition, have strings H and T that limit the
//! context under which LR can be applied").
//!
//! Learning: `l`/`r` exactly as LR; `h` is the longest common prefix of
//! the page regions *before the first label* on each labeled page, and `t`
//! the longest common suffix of the regions *after the last label*.
//! Extraction runs the LR scan restricted to the region after the first
//! occurrence of `h` and before the following occurrence of `t`.
//!
//! HLRT shields the LR scan from page headers/footers, which is where most
//! of LR's over-generalization damage happens on listing pages.

use crate::lr::{LrInductor, LrRule};
use crate::site::Site;
use crate::traits::{ItemSet, WrapperInductor};
use aw_align::{common_prefix_len, common_suffix_len};
use aw_dom::PageNode;

/// An HLRT rule.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct HlrtRule {
    /// Head delimiter; scanning starts after its first occurrence.
    pub head: String,
    /// Tail delimiter; scanning stops at its first occurrence after `head`.
    pub tail: String,
    /// The inner LR pair.
    pub lr: LrRule,
}

impl std::fmt::Display for HlrtRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "HLRT(h={:?}, t={:?}, l={:?}, r={:?})",
            self.head, self.tail, self.lr.left, self.lr.right
        )
    }
}

/// The HLRT inductor bound to a [`Site`]. Delegates `(l, r)` learning to
/// an inner [`LrInductor`].
#[derive(Debug)]
pub struct HlrtInductor<'a> {
    lr: LrInductor<'a>,
    /// Cap on head/tail delimiter length in bytes.
    region_cap: usize,
}

impl<'a> HlrtInductor<'a> {
    /// Creates an HLRT inductor with default caps.
    pub fn new(site: &'a Site) -> Self {
        HlrtInductor {
            lr: LrInductor::new(site),
            region_cap: 96,
        }
    }

    /// The site this inductor operates over.
    pub fn site(&self) -> &Site {
        self.lr.site()
    }

    /// Learns the full HLRT rule.
    pub fn learn(&self, labels: &ItemSet<PageNode>) -> HlrtRule {
        let lr_rule = self.lr.learn(labels);
        let site = self.site();

        // Group label spans per page.
        let mut first_start: std::collections::BTreeMap<u32, usize> = Default::default();
        let mut last_end: std::collections::BTreeMap<u32, usize> = Default::default();
        for &label in labels {
            if let Some(span) = site.serialized(label.page).span_of(label.node) {
                first_start
                    .entry(label.page)
                    .and_modify(|s| *s = (*s).min(span.start))
                    .or_insert(span.start);
                last_end
                    .entry(label.page)
                    .and_modify(|e| *e = (*e).max(span.end))
                    .or_insert(span.end);
            }
        }

        // The head region must end *before* the first label's left
        // delimiter and the tail must start *after* the last label's right
        // delimiter, so the inner LR scan can still find its delimiters
        // inside the [head, tail) region.
        let heads: Vec<&str> = first_start
            .iter()
            .map(|(&p, &s)| {
                let cut = s.saturating_sub(lr_rule.left.len());
                &site.serialized(p).html[..cut]
            })
            .collect();
        let tails: Vec<&str> = last_end
            .iter()
            .map(|(&p, &e)| {
                let html = &site.serialized(p).html;
                let cut = (e + lr_rule.right.len()).min(html.len());
                &html[cut..]
            })
            .collect();

        let hlen = common_prefix_len(&heads).min(self.region_cap);
        let tlen = common_suffix_len(&tails).min(self.region_cap);
        let head = heads
            .first()
            .map(|s| char_floor(s, hlen).to_string())
            .unwrap_or_default();
        let tail = tails
            .first()
            .map(|s| char_tail(s, tlen).to_string())
            .unwrap_or_default();
        HlrtRule {
            head,
            tail,
            lr: lr_rule,
        }
    }

    /// Applies an HLRT rule to every page.
    pub fn apply(&self, rule: &HlrtRule) -> ItemSet<PageNode> {
        let site = self.site();
        let mut out = ItemSet::new();
        for p in 0..site.page_count() as u32 {
            let page = site.serialized(p);
            let html = &page.html;
            let region_start = if rule.head.is_empty() {
                0
            } else {
                match html.find(&rule.head) {
                    Some(i) => i + rule.head.len(),
                    None => continue,
                }
            };
            let region_end = if rule.tail.is_empty() {
                html.len()
            } else {
                match html[region_start..].rfind(&rule.tail) {
                    Some(i) => region_start + i,
                    None => continue,
                }
            };
            // Run the LR scan within the region by offsetting spans.
            let region = &html[region_start..region_end];
            for (s, e) in crate::lr::scan_spans(region, &rule.lr.left, &rule.lr.right) {
                for node in page.nodes_in_range(region_start + s, region_start + e) {
                    out.insert(PageNode::new(p, node));
                }
            }
        }
        out
    }
}

fn char_floor(s: &str, mut i: usize) -> &str {
    i = i.min(s.len());
    while !s.is_char_boundary(i) {
        i -= 1;
    }
    &s[..i]
}

fn char_tail(s: &str, n: usize) -> &str {
    let mut i = s.len().saturating_sub(n);
    while !s.is_char_boundary(i) {
        i += 1;
    }
    &s[i..]
}

impl WrapperInductor for HlrtInductor<'_> {
    type Item = PageNode;

    fn extract(&self, labels: &ItemSet<PageNode>) -> ItemSet<PageNode> {
        if labels.is_empty() {
            return ItemSet::new();
        }
        let mut out = self.apply(&self.learn(labels));
        // Fidelity guard: HLRT's learned region always contains the labels
        // by construction, but a label can straddle delimiter boundaries in
        // degenerate cases; keep the inductor well-behaved by unioning.
        out.extend(labels.iter().copied());
        out
    }

    fn rule(&self, labels: &ItemSet<PageNode>) -> String {
        if labels.is_empty() {
            return "∅".into();
        }
        self.learn(labels).to_string()
    }

    fn universe(&self) -> ItemSet<PageNode> {
        self.lr.universe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pages where the header/footer contain LR-confusable markup.
    fn site_with_chrome() -> Site {
        Site::from_html(&[
            "<div class='nav'><b>HOME</b><b>ABOUT</b></div>\
             <table><tr><td><b>ALPHA CO</b></td></tr>\
                    <tr><td><b>BETA LLC</b></td></tr></table>\
             <div class='foot'><b>TERMS</b></div>",
            "<div class='nav'><b>HOME</b><b>ABOUT</b></div>\
             <table><tr><td><b>GAMMA INC</b></td></tr></table>\
             <div class='foot'><b>TERMS</b></div>",
        ])
    }

    fn labels_of(site: &Site, texts: &[&str]) -> ItemSet<PageNode> {
        texts.iter().flat_map(|t| site.find_text(t)).collect()
    }

    #[test]
    fn head_tail_shield_chrome() {
        let site = site_with_chrome();
        let ind = HlrtInductor::new(&site);
        let labels = labels_of(&site, &["ALPHA CO", "BETA LLC"]);
        let rule = ind.learn(&labels);
        assert!(!rule.head.is_empty(), "head should capture the nav prefix");
        let out = ind.apply(&rule);
        let texts: Vec<&str> = out.iter().map(|&n| site.text_of(n).unwrap()).collect();
        assert_eq!(texts, vec!["ALPHA CO", "BETA LLC", "GAMMA INC"]);
    }

    #[test]
    fn hlrt_beats_plain_lr_under_weak_delimiters() {
        // With a single label the LR pair is highly specific, so compare
        // under a short context cap where LR would leak into the nav.
        let site = site_with_chrome();
        let hlrt = HlrtInductor::new(&site);
        let labels = labels_of(&site, &["ALPHA CO", "BETA LLC", "GAMMA INC"]);
        let rule = hlrt.learn(&labels);
        let out = hlrt.apply(&rule);
        // <b> delimiters alone would also catch HOME/ABOUT/TERMS; the
        // head/tail region must exclude them.
        let texts: Vec<&str> = out.iter().map(|&n| site.text_of(n).unwrap()).collect();
        assert!(!texts.contains(&"HOME"), "{texts:?}");
        assert!(!texts.contains(&"TERMS"), "{texts:?}");
    }

    #[test]
    fn fidelity_holds() {
        let site = site_with_chrome();
        let ind = HlrtInductor::new(&site);
        for texts in [
            vec!["ALPHA CO"],
            vec!["ALPHA CO", "GAMMA INC"],
            vec!["HOME", "ALPHA CO"],
        ] {
            let labels = labels_of(&site, &texts);
            let out = ind.extract(&labels);
            assert!(labels.is_subset(&out), "fidelity for {texts:?}");
        }
    }

    #[test]
    fn empty_labels_extract_nothing() {
        let site = site_with_chrome();
        let ind = HlrtInductor::new(&site);
        assert!(ind.extract(&ItemSet::new()).is_empty());
    }

    #[test]
    fn display_rule() {
        let rule = HlrtRule {
            head: "<table>".into(),
            tail: "</table>".into(),
            lr: LrRule {
                left: "<b>".into(),
                right: "</b>".into(),
            },
        };
        let s = rule.to_string();
        assert!(s.contains("h=\"<table>\"") && s.contains("l=\"<b>\""));
    }
}
