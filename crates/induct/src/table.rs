//! The TABLE wrapper inductor — the paper's running example (Example 1).
//!
//! TABLE operates on an *n × m* grid of cells. Given labels:
//!
//! * a single cell generalizes to itself;
//! * labels within one row (column) generalize to the whole row (column);
//! * labels spanning ≥ 2 rows **and** ≥ 2 columns generalize to the table.
//!
//! Example 3 shows TABLE is feature-based with attributes `row` and `col`;
//! that is exactly how we implement it, which makes TABLE the reference
//! implementation for testing `BottomUp`, `TopDown` and the theorems.

use crate::traits::{FeatureBased, ItemSet, WrapperInductor};

/// A cell of the TABLE grid. `row` and `col` are 1-based as in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cell {
    /// 1-based row.
    pub row: u16,
    /// 1-based column.
    pub col: u16,
}

impl Cell {
    /// Convenience constructor.
    pub fn new(row: u16, col: u16) -> Self {
        Cell { row, col }
    }
}

/// The TABLE inductor over an `rows × cols` grid.
#[derive(Clone, Debug)]
pub struct TableInductor {
    rows: u16,
    cols: u16,
}

/// The two attributes of TABLE's feature space (Example 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TableAttr {
    /// The `row` attribute.
    Row,
    /// The `col` attribute.
    Col,
}

impl TableInductor {
    /// Creates a TABLE inductor over a grid.
    pub fn new(rows: u16, cols: u16) -> Self {
        TableInductor { rows, cols }
    }

    fn row(&self, r: u16) -> ItemSet<Cell> {
        (1..=self.cols).map(|c| Cell::new(r, c)).collect()
    }

    fn col(&self, c: u16) -> ItemSet<Cell> {
        (1..=self.rows).map(|r| Cell::new(r, c)).collect()
    }

    fn table(&self) -> ItemSet<Cell> {
        (1..=self.rows)
            .flat_map(|r| (1..=self.cols).map(move |c| Cell::new(r, c)))
            .collect()
    }
}

impl WrapperInductor for TableInductor {
    type Item = Cell;

    fn extract(&self, labels: &ItemSet<Cell>) -> ItemSet<Cell> {
        let mut iter = labels.iter();
        let Some(first) = iter.next() else {
            return ItemSet::new();
        };
        let same_row = labels.iter().all(|c| c.row == first.row);
        let same_col = labels.iter().all(|c| c.col == first.col);
        match (same_row, same_col) {
            (true, true) => labels.clone(), // single cell
            (false, true) => self.col(first.col),
            (true, false) => self.row(first.row),
            (false, false) => self.table(),
        }
    }

    fn rule(&self, labels: &ItemSet<Cell>) -> String {
        let mut iter = labels.iter();
        let Some(first) = iter.next() else {
            return "∅".into();
        };
        let same_row = labels.iter().all(|c| c.row == first.row);
        let same_col = labels.iter().all(|c| c.col == first.col);
        match (same_row, same_col) {
            (true, true) => format!("cell({},{})", first.row, first.col),
            (false, true) => format!("C{}", first.col),
            (true, false) => format!("R{}", first.row),
            (false, false) => "T".into(),
        }
    }

    fn universe(&self) -> ItemSet<Cell> {
        self.table()
    }
}

impl FeatureBased for TableInductor {
    type Attr = TableAttr;

    fn attributes(&self, _labels: &ItemSet<Cell>) -> Vec<TableAttr> {
        vec![TableAttr::Col, TableAttr::Row]
    }

    fn subdivision(&self, s: &ItemSet<Cell>, attr: &TableAttr) -> Vec<ItemSet<Cell>> {
        let mut groups: std::collections::BTreeMap<u16, ItemSet<Cell>> = Default::default();
        for &cell in s {
            let key = match attr {
                TableAttr::Row => cell.row,
                TableAttr::Col => cell.col,
            };
            groups.entry(key).or_default().insert(cell);
        }
        groups.into_values().collect()
    }
}

/// The exact label set of the paper's Example 1: `{n1, n2, n4, a4, z5}` on a
/// 5-row × 4-column table whose columns are (name, address, zip, phone).
pub fn example1_labels() -> ItemSet<Cell> {
    [
        Cell::new(1, 1), // n1
        Cell::new(2, 1), // n2
        Cell::new(4, 1), // n4
        Cell::new(4, 2), // a4 (incorrect label)
        Cell::new(5, 3), // z5 (incorrect label)
    ]
    .into_iter()
    .collect()
}

/// The TABLE inductor sized for Example 1 (5 × 4).
pub fn example1_inductor() -> TableInductor {
    TableInductor::new(5, 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::check_well_behaved;

    #[test]
    fn singleton_returns_itself() {
        let t = example1_inductor();
        let l: ItemSet<Cell> = [Cell::new(1, 1)].into_iter().collect();
        assert_eq!(t.extract(&l), l);
        assert_eq!(t.rule(&l), "cell(1,1)");
    }

    #[test]
    fn same_column_generalizes_to_column() {
        let t = example1_inductor();
        let l: ItemSet<Cell> = [Cell::new(1, 1), Cell::new(2, 1)].into_iter().collect();
        let out = t.extract(&l);
        assert_eq!(out.len(), 5);
        assert!(out.contains(&Cell::new(4, 1)));
        assert_eq!(t.rule(&l), "C1");
    }

    #[test]
    fn same_row_generalizes_to_row() {
        let t = example1_inductor();
        let l: ItemSet<Cell> = [Cell::new(4, 1), Cell::new(4, 2)].into_iter().collect();
        let out = t.extract(&l);
        assert_eq!(out.len(), 4);
        assert_eq!(t.rule(&l), "R4");
    }

    #[test]
    fn spanning_generalizes_to_table() {
        let t = example1_inductor();
        let l: ItemSet<Cell> = [Cell::new(4, 2), Cell::new(5, 3)].into_iter().collect();
        assert_eq!(t.extract(&l).len(), 20);
        assert_eq!(t.rule(&l), "T");
    }

    #[test]
    fn empty_labels_extract_nothing() {
        let t = example1_inductor();
        assert!(t.extract(&ItemSet::new()).is_empty());
    }

    #[test]
    fn table_is_well_behaved() {
        // Definition 1, checked exhaustively on Example 1's label set.
        let t = example1_inductor();
        let report = check_well_behaved(&t, &example1_labels());
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn example3_feature_view_matches() {
        // φ({n1, n2, n4}) = first column; φ({n1, a4}) = whole table.
        let t = example1_inductor();
        let col: ItemSet<Cell> = [Cell::new(1, 1), Cell::new(2, 1), Cell::new(4, 1)]
            .into_iter()
            .collect();
        assert_eq!(t.extract(&col), t.col(1));
        let span: ItemSet<Cell> = [Cell::new(1, 1), Cell::new(4, 2)].into_iter().collect();
        assert_eq!(t.extract(&span), t.table());
    }

    #[test]
    fn subdivision_partitions_by_attribute() {
        let t = example1_inductor();
        let labels = example1_labels();
        let by_col = t.subdivision(&labels, &TableAttr::Col);
        // col groups: {n1,n2,n4} (col 1), {a4} (col 2), {z5} (col 3)
        assert_eq!(by_col.len(), 3);
        let sizes: Vec<usize> = by_col.iter().map(|g| g.len()).collect();
        assert_eq!(sizes, vec![3, 1, 1]);
        let by_row = t.subdivision(&labels, &TableAttr::Row);
        // row groups: {n1}, {n2}, {n4,a4}, {z5}
        assert_eq!(by_row.len(), 4);
    }

    #[test]
    fn universe_is_whole_grid() {
        assert_eq!(TableInductor::new(3, 3).universe().len(), 9);
    }
}
