//! The LR wrapper inductor — the simplest WIEN wrapper class
//! (Kushmerick et al., §5).
//!
//! LR treats every page as a character sequence. Learning finds the
//! **longest common string preceding** (`l`) and **following** (`r`) the
//! labeled examples; extraction returns all *minimal* strings delimited by
//! the `(l, r)` pair, scanning left to right.
//!
//! Labels are text nodes; an extracted character span is mapped back to the
//! set of text nodes it fully contains, so LR wrappers are scored with the
//! same node-set machinery as XPATH wrappers.
//!
//! §5 also observes LR is feature-based: label ℓ has attributes `L_k`
//! (the `k` characters preceding ℓ) and `R_k` (the `k` characters following
//! ℓ) for every `k`. We cap `k` at [`LrInductor::context_cap`] bytes, which
//! bounds the feature space without changing behaviour on realistic pages
//! ("we do not need to construct the feature space, as long as we can
//! efficiently implement `subdivision`").

use crate::site::Site;
use crate::traits::{FeatureBased, ItemSet, WrapperInductor};
use aw_align::{common_prefix_len, common_suffix_len};
use aw_dom::PageNode;

/// Default byte cap on learned delimiter length / feature positions.
pub const DEFAULT_CONTEXT_CAP: usize = 64;

/// An LR rule: a pair of delimiter strings.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LrRule {
    /// Left delimiter (possibly empty).
    pub left: String,
    /// Right delimiter (possibly empty).
    pub right: String,
}

impl std::fmt::Display for LrRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LR({:?}, {:?})", self.left, self.right)
    }
}

/// Attribute identifiers of the LR feature space: `L_k` and `R_k`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LrAttr {
    /// The `k`-byte left context.
    Left(usize),
    /// The `k`-byte right context.
    Right(usize),
}

/// The LR inductor bound to a [`Site`].
#[derive(Debug)]
pub struct LrInductor<'a> {
    site: &'a Site,
    context_cap: usize,
}

impl<'a> LrInductor<'a> {
    /// Creates an LR inductor with the default context cap.
    pub fn new(site: &'a Site) -> Self {
        Self::with_context_cap(site, DEFAULT_CONTEXT_CAP)
    }

    /// Creates an LR inductor with an explicit context cap.
    pub fn with_context_cap(site: &'a Site, context_cap: usize) -> Self {
        assert!(context_cap > 0, "context cap must be positive");
        LrInductor { site, context_cap }
    }

    /// The site this inductor operates over.
    pub fn site(&self) -> &Site {
        self.site
    }

    /// The context cap in bytes.
    pub fn context_cap(&self) -> usize {
        self.context_cap
    }

    /// The left context (up to the cap) of a label's span.
    fn left_context(&self, node: PageNode) -> Option<String> {
        let page = self.site.serialized(node.page);
        let span = page.span_of(node.node)?;
        let from = span.start.saturating_sub(self.context_cap);
        let mut from = from;
        while !page.html.is_char_boundary(from) {
            from += 1;
        }
        Some(page.html[from..span.start].to_string())
    }

    /// The right context (up to the cap) of a label's span.
    fn right_context(&self, node: PageNode) -> Option<String> {
        let page = self.site.serialized(node.page);
        let span = page.span_of(node.node)?;
        let mut to = (span.end + self.context_cap).min(page.html.len());
        while !page.html.is_char_boundary(to) {
            to -= 1;
        }
        Some(page.html[span.end..to].to_string())
    }

    /// Learns the LR rule from labels: longest common suffix of left
    /// contexts, longest common prefix of right contexts.
    pub fn learn(&self, labels: &ItemSet<PageNode>) -> LrRule {
        let lefts: Vec<String> = labels
            .iter()
            .filter_map(|&l| self.left_context(l))
            .collect();
        let rights: Vec<String> = labels
            .iter()
            .filter_map(|&l| self.right_context(l))
            .collect();
        let lsuf = common_suffix_len(&lefts);
        let rpre = common_prefix_len(&rights);
        let left = lefts
            .first()
            .map(|s| s[s.len() - lsuf..].to_string())
            .unwrap_or_default();
        let right = rights
            .first()
            .map(|s| s[..rpre].to_string())
            .unwrap_or_default();
        LrRule { left, right }
    }

    /// Applies an LR rule to every page: sequential minimal-string scan,
    /// then span → contained-text-node mapping.
    pub fn apply(&self, rule: &LrRule) -> ItemSet<PageNode> {
        let mut out = ItemSet::new();
        for p in 0..self.site.page_count() as u32 {
            let page = self.site.serialized(p);
            for (start, end) in scan_spans(&page.html, &rule.left, &rule.right) {
                for node in page.nodes_in_range(start, end) {
                    out.insert(PageNode::new(p, node));
                }
            }
        }
        out
    }
}

/// All minimal `(l, r)`-delimited spans of `html`.
///
/// §5: the wrapper fetches "all the minimal strings that are delimited by
/// these pairs of strings" — for every occurrence of `l`, the span up to
/// the nearest following occurrence of `r`. Occurrences are enumerated
/// independently (not consumed), so a learned `r` that overlaps the next
/// `l` cannot mask matches.
///
/// Degenerate delimiters: empty `l` makes spans start after each `r`
/// (segments), empty `r` makes spans run to end of input, and the rule with
/// both empty yields one span covering the whole document — maximal
/// over-generalization, as the paper expects from LR under noise.
pub fn scan_spans(html: &str, l: &str, r: &str) -> Vec<(usize, usize)> {
    let n = html.len();
    match (l.is_empty(), r.is_empty()) {
        (true, true) => vec![(0, n)],
        (true, false) => {
            // Segments between consecutive occurrences of r.
            let mut spans = Vec::new();
            let mut cursor = 0;
            for (rs, _) in html.match_indices(r) {
                if rs >= cursor {
                    spans.push((cursor, rs));
                    cursor = rs + r.len();
                }
            }
            spans
        }
        (false, true) => html
            .match_indices(l)
            .map(|(i, _)| (i + l.len(), n))
            .collect(),
        (false, false) => {
            let rstarts: Vec<usize> = html.match_indices(r).map(|(i, _)| i).collect();
            html.match_indices(l)
                .filter_map(|(i, _)| {
                    let start = i + l.len();
                    let idx = rstarts.partition_point(|&rs| rs < start);
                    rstarts.get(idx).map(|&rs| (start, rs))
                })
                .collect()
        }
    }
}

impl WrapperInductor for LrInductor<'_> {
    type Item = PageNode;

    fn extract(&self, labels: &ItemSet<PageNode>) -> ItemSet<PageNode> {
        if labels.is_empty() {
            return ItemSet::new();
        }
        self.apply(&self.learn(labels))
    }

    fn rule(&self, labels: &ItemSet<PageNode>) -> String {
        if labels.is_empty() {
            return "∅".into();
        }
        self.learn(labels).to_string()
    }

    fn universe(&self) -> ItemSet<PageNode> {
        self.site.text_nodes().iter().copied().collect()
    }
}

impl FeatureBased for LrInductor<'_> {
    type Attr = LrAttr;

    fn attributes(&self, labels: &ItemSet<PageNode>) -> Vec<LrAttr> {
        // Attributes L_1..L_cap and R_1..R_cap, bounded further by the
        // longest context actually available on any label.
        let max_left = labels
            .iter()
            .filter_map(|&l| self.left_context(l))
            .map(|s| s.len())
            .max()
            .unwrap_or(0);
        let max_right = labels
            .iter()
            .filter_map(|&l| self.right_context(l))
            .map(|s| s.len())
            .max()
            .unwrap_or(0);
        let mut attrs: Vec<LrAttr> = (1..=max_left).map(LrAttr::Left).collect();
        attrs.extend((1..=max_right).map(LrAttr::Right));
        attrs
    }

    fn subdivision(&self, s: &ItemSet<PageNode>, attr: &LrAttr) -> Vec<ItemSet<PageNode>> {
        let mut groups: std::collections::BTreeMap<String, ItemSet<PageNode>> = Default::default();
        for &node in s {
            let value = match attr {
                LrAttr::Left(k) => self
                    .left_context(node)
                    .filter(|c| c.len() >= *k)
                    .map(|c| suffix_at_boundary(&c, *k)),
                LrAttr::Right(k) => self
                    .right_context(node)
                    .filter(|c| c.len() >= *k)
                    .map(|c| prefix_at_boundary(&c, *k)),
            };
            if let Some(v) = value {
                groups.entry(v).or_default().insert(node);
            }
        }
        groups.into_values().collect()
    }
}

fn suffix_at_boundary(s: &str, k: usize) -> String {
    let mut i = s.len() - k;
    while !s.is_char_boundary(i) {
        i += 1;
    }
    s[i..].to_string()
}

fn prefix_at_boundary(s: &str, k: usize) -> String {
    let mut i = k.min(s.len());
    while !s.is_char_boundary(i) {
        i -= 1;
    }
    s[..i].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::check_well_behaved;

    fn table_site() -> Site {
        Site::from_html(&[
            "<table>\
               <tr><td><b>ALPHA CO</b></td><td>12 Elm St</td></tr>\
               <tr><td><b>BETA LLC</b></td><td>9 Oak Ave</td></tr>\
             </table>",
            "<table>\
               <tr><td><b>GAMMA INC</b></td><td>4 Pine Rd</td></tr>\
             </table>",
        ])
    }

    fn labels_of(site: &Site, texts: &[&str]) -> ItemSet<PageNode> {
        texts.iter().flat_map(|t| site.find_text(t)).collect()
    }

    #[test]
    fn learns_delimiters_from_clean_labels() {
        let site = table_site();
        let ind = LrInductor::new(&site);
        let labels = labels_of(&site, &["ALPHA CO", "BETA LLC"]);
        let rule = ind.learn(&labels);
        assert!(rule.left.ends_with("<td><b>"), "left = {:?}", rule.left);
        assert!(rule.right.starts_with("</b>"), "right = {:?}", rule.right);
        // Extraction covers the unseen page's name.
        let out = ind.extract(&labels);
        let texts: Vec<&str> = out.iter().map(|&n| site.text_of(n).unwrap()).collect();
        assert_eq!(texts, vec!["ALPHA CO", "BETA LLC", "GAMMA INC"]);
    }

    #[test]
    fn noisy_label_collapses_delimiters() {
        // Adding an address label destroys the <b> context: the common
        // left suffix shrinks to "<td>"-ish, widening extraction.
        let site = table_site();
        let ind = LrInductor::new(&site);
        let clean = labels_of(&site, &["ALPHA CO", "BETA LLC"]);
        let noisy = labels_of(&site, &["ALPHA CO", "BETA LLC", "12 Elm St"]);
        let clean_out = ind.extract(&clean);
        let noisy_out = ind.extract(&noisy);
        assert!(clean_out.len() < noisy_out.len());
        assert_eq!(noisy_out.len(), 6, "all cells extracted: {noisy_out:?}");
    }

    #[test]
    fn paper_td_example() {
        // §5: the pair ("<td>", "</td>") fetches all table data items.
        let site = table_site();
        let ind = LrInductor::new(&site);
        let rule = LrRule {
            left: "<td>".into(),
            right: "</td>".into(),
        };
        let out = ind.apply(&rule);
        // Address cells are plain `<td>text</td>` so they match; name
        // cells are `<td><b>..</b></td>` whose minimal spans contain the
        // b-wrapped text nodes as well.
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn scan_spans_minimal_and_sequential() {
        let spans = scan_spans("<u>a</u><u>b</u>", "<u>", "</u>");
        assert_eq!(spans, vec![(3, 4), (11, 12)]);
    }

    #[test]
    fn scan_spans_empty_delimiters() {
        assert_eq!(scan_spans("abc", "", ""), vec![(0, 3)]);
        assert_eq!(scan_spans("a|b|c", "|", ""), vec![(2, 5), (4, 5)]);
        assert_eq!(scan_spans("a|b|c", "", "|"), vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn scan_spans_overlapping_r_and_l() {
        // r = "</x><" overlaps the next l = "<y>"-like pattern; the
        // all-occurrences semantics must still find the second item.
        let html = "<a>1</a><a>2</a>";
        assert_eq!(scan_spans(html, ">", "</"), vec![(3, 4), (8, 12), (11, 12)]);
    }

    #[test]
    fn scan_spans_no_match() {
        assert!(scan_spans("abc", "<x>", "</x>").is_empty());
        assert!(scan_spans("<x>abc", "<x>", "</x>").is_empty());
    }

    #[test]
    fn single_label_learns_full_contexts() {
        let site = table_site();
        let ind = LrInductor::new(&site);
        let labels = labels_of(&site, &["GAMMA INC"]);
        let rule = ind.learn(&labels);
        // Full (capped) context on both sides.
        assert!(rule.left.len() <= DEFAULT_CONTEXT_CAP);
        assert!(rule.left.ends_with("<b>"));
        let out = ind.extract(&labels);
        assert!(out.contains(labels.iter().next().unwrap()));
    }

    #[test]
    fn lr_is_well_behaved_on_table_site() {
        // Theorem 4, checked exhaustively on a 5-label set.
        let site = table_site();
        let ind = LrInductor::new(&site);
        let labels = labels_of(
            &site,
            &[
                "ALPHA CO",
                "BETA LLC",
                "GAMMA INC",
                "12 Elm St",
                "9 Oak Ave",
            ],
        );
        assert_eq!(labels.len(), 5);
        let report = check_well_behaved(&ind, &labels);
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn subdivision_groups_by_context() {
        let site = table_site();
        let ind = LrInductor::new(&site);
        let labels = labels_of(&site, &["ALPHA CO", "BETA LLC", "12 Elm St"]);
        // 1-byte left context: '>' for all three (all end with `<b>` or
        // `<td>`), so one group.
        let g1 = ind.subdivision(&labels, &LrAttr::Left(1));
        assert_eq!(g1.len(), 1);
        // 2-byte left context: "b>" vs "d>" splits names from address.
        let g2 = ind.subdivision(&labels, &LrAttr::Left(2));
        assert_eq!(g2.len(), 2);
        let sizes: Vec<usize> = g2.iter().map(|g| g.len()).collect();
        assert!(sizes.contains(&2) && sizes.contains(&1));
    }

    #[test]
    fn attributes_bounded_by_cap() {
        let site = table_site();
        let ind = LrInductor::with_context_cap(&site, 8);
        let labels = labels_of(&site, &["ALPHA CO"]);
        let attrs = ind.attributes(&labels);
        assert!(attrs.len() <= 16);
        assert!(attrs.contains(&LrAttr::Left(8)));
        assert!(attrs.contains(&LrAttr::Right(8)));
    }

    #[test]
    fn empty_labels_extract_nothing() {
        let site = table_site();
        let ind = LrInductor::new(&site);
        assert!(ind.extract(&ItemSet::new()).is_empty());
    }

    #[test]
    fn display_rule() {
        let rule = LrRule {
            left: "<b>".into(),
            right: "</b>".into(),
        };
        assert_eq!(rule.to_string(), "LR(\"<b>\", \"</b>\")");
    }
}
