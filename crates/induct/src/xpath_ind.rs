//! The XPATH wrapper inductor (§5, after Dalvi et al. SIGMOD 2009).
//!
//! Viewed as a feature-based inductor: for a text node *n*, walk the path
//! from *n* to the root; the ancestor at position *i* (1 = parent)
//! contributes features
//!
//! * `(i:tagname, tag)`,
//! * `(i:childnumber, k)` where *k* is the ancestor's 1-based position
//!   among same-tag siblings (the meaning of `td[2]`), and
//! * `(i:attr:name, value)` for each of its HTML attributes.
//!
//! `φ(L)` is the set of text nodes whose features include the intersection
//! of the labels' features — which corresponds to the most specific xpath
//! of the fragment consistent with all labels, the fixpoint of the
//! "specialize `//*` while keeping recall 1" induction of the original
//! paper. [`XPathInductor::xpath`] renders that xpath.

use crate::features::{intersect_features, FeatureMap, PostingIndex};
use crate::site::Site;
use crate::traits::{FeatureBased, ItemSet, WrapperInductor};
use aw_dom::PageNode;
use aw_xpath::{Axis, NodeTest, Predicate, Step, XPath};

/// Attribute identifiers of the XPATH feature space.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum XAttr {
    /// The labeled text node's 1-based index among its parent's
    /// *text-node* children — renders as `text()[k]`. This separates
    /// `<br>`-delimited record fields (name / street / city line), which
    /// are sibling text nodes invisible to ancestor features alone.
    TextIndex,
    /// `(pos:tagname)`.
    Tag(u16),
    /// `(pos:childnumber)`.
    ChildNum(u16),
    /// `(pos:attr:name)`.
    Html(u16, String),
}

impl XAttr {
    fn position(&self) -> u16 {
        match self {
            XAttr::TextIndex => 0,
            XAttr::Tag(p) | XAttr::ChildNum(p) => *p,
            XAttr::Html(p, _) => *p,
        }
    }
}

/// The XPATH inductor bound to a [`Site`].
#[derive(Debug)]
pub struct XPathInductor<'a> {
    site: &'a Site,
    /// Feature map of each text node, indexed as in `site.text_nodes()`.
    features: Vec<FeatureMap<XAttr, String>>,
    index: PostingIndex<XAttr, String>,
}

impl<'a> XPathInductor<'a> {
    /// Builds the inductor (pre-computing features and posting lists).
    pub fn new(site: &'a Site) -> Self {
        let features: Vec<FeatureMap<XAttr, String>> = site
            .text_nodes()
            .iter()
            .map(|&pn| Self::node_features(site, pn))
            .collect();
        let index = PostingIndex::build(&features);
        XPathInductor {
            site,
            features,
            index,
        }
    }

    /// The site this inductor operates over.
    pub fn site(&self) -> &Site {
        self.site
    }

    fn node_features(site: &Site, pn: PageNode) -> FeatureMap<XAttr, String> {
        let (doc, id) = site.resolve(pn);
        let idx = doc.index();
        let mut map = FeatureMap::new();
        // Cached 1-based position among text-node siblings (0 = n/a),
        // replacing an O(siblings) rescan per labeled node.
        let k = idx.text_pos(id);
        if k > 0 {
            map.insert(XAttr::TextIndex, k.to_string());
        }
        for (i, anc) in doc.ancestors(id).enumerate() {
            let pos = (i + 1) as u16;
            let Some(el) = doc.element(anc) else {
                break; // reached the document root
            };
            map.insert(XAttr::Tag(pos), el.tag.clone());
            let k = idx.same_tag_pos(anc);
            if k > 0 {
                map.insert(XAttr::ChildNum(pos), k.to_string());
            }
            for (name, value) in &el.attrs {
                map.insert(XAttr::Html(pos, name.clone()), value.clone());
            }
        }
        map
    }

    fn feature_map_of(&self, node: PageNode) -> Option<&FeatureMap<XAttr, String>> {
        self.site
            .text_node_index(node)
            .map(|i| &self.features[i as usize])
    }

    /// The intersected (required) feature set for a label set.
    pub fn required_features(&self, labels: &ItemSet<PageNode>) -> FeatureMap<XAttr, String> {
        let maps: Vec<&FeatureMap<XAttr, String>> = labels
            .iter()
            .filter_map(|&l| self.feature_map_of(l))
            .collect();
        intersect_features(&maps)
    }

    /// Renders the learned rule as an [`XPath`] of the fragment.
    ///
    /// Display-only caveat: a child-number feature whose position has no
    /// tag feature is dropped from the rendering (a `*[k]` step would read
    /// differently), so in that corner case the rendered xpath is slightly
    /// more general than the feature-set semantics used for extraction.
    pub fn xpath(&self, labels: &ItemSet<PageNode>) -> XPath {
        let req = self.required_features(labels);
        let max_pos = req.keys().map(XAttr::position).max().unwrap_or(0);
        let mut steps = Vec::new();
        // Outermost ancestor first.
        for pos in (1..=max_pos).rev() {
            let axis = if pos == max_pos {
                Axis::Descendant
            } else {
                Axis::Child
            };
            let tag = req.get(&XAttr::Tag(pos));
            let test = match tag {
                Some(t) => NodeTest::Tag(t.clone()),
                None => NodeTest::AnyElement,
            };
            let mut predicates = Vec::new();
            if tag.is_some() {
                if let Some(k) = req.get(&XAttr::ChildNum(pos)) {
                    if let Ok(k) = k.parse() {
                        predicates.push(Predicate::Position(k));
                    }
                }
            }
            for (attr, value) in req.iter() {
                if let XAttr::Html(p, name) = attr {
                    if *p == pos {
                        predicates.push(Predicate::Attr {
                            name: name.clone(),
                            value: value.clone(),
                        });
                    }
                }
            }
            steps.push(Step {
                axis,
                test,
                predicates,
            });
        }
        // The final text() step: descendant when no ancestor constraints
        // exist at all (the `//*`-like wrapper extracting every text node).
        let text_axis = if max_pos == 0 {
            Axis::Descendant
        } else {
            Axis::Child
        };
        let mut text_preds = Vec::new();
        if let Some(k) = req.get(&XAttr::TextIndex) {
            if let Ok(k) = k.parse() {
                text_preds.push(Predicate::Position(k));
            }
        }
        steps.push(Step {
            axis: text_axis,
            test: NodeTest::Text,
            predicates: text_preds,
        });
        XPath::new(steps)
    }
}

impl WrapperInductor for XPathInductor<'_> {
    type Item = PageNode;

    fn extract(&self, labels: &ItemSet<PageNode>) -> ItemSet<PageNode> {
        if labels.is_empty() {
            return ItemSet::new();
        }
        let req = self.required_features(labels);
        self.index
            .matching(&req)
            .into_iter()
            .map(|i| self.site.text_nodes()[i as usize])
            .collect()
    }

    fn rule(&self, labels: &ItemSet<PageNode>) -> String {
        if labels.is_empty() {
            return "∅".into();
        }
        self.xpath(labels).to_string()
    }

    fn universe(&self) -> ItemSet<PageNode> {
        self.site.text_nodes().iter().copied().collect()
    }
}

impl FeatureBased for XPathInductor<'_> {
    type Attr = XAttr;

    fn attributes(&self, labels: &ItemSet<PageNode>) -> Vec<XAttr> {
        let mut attrs: ItemSet<&XAttr> = ItemSet::new();
        for &l in labels {
            if let Some(map) = self.feature_map_of(l) {
                attrs.extend(map.keys());
            }
        }
        attrs.into_iter().cloned().collect()
    }

    fn subdivision(&self, s: &ItemSet<PageNode>, attr: &XAttr) -> Vec<ItemSet<PageNode>> {
        let mut groups: std::collections::BTreeMap<&str, ItemSet<PageNode>> = Default::default();
        for &node in s {
            if let Some(v) = self.feature_map_of(node).and_then(|m| m.get(attr)) {
                groups.entry(v.as_str()).or_default().insert(node);
            }
        }
        groups.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::check_well_behaved;
    use aw_xpath::evaluate;

    /// The Figure 1 site: two dealer pages with the same script.
    fn dealer_site() -> Site {
        Site::from_html(&[
            "<div class='dealerlinks'>\
               <tr><td><u>PORTER FURNITURE</u><br>201 HWY<br>NEW ALBANY, MS 38652</td></tr>\
               <tr><td><u>WOODLAND FURNITURE</u><br>123 Main St.<br>WOODLAND, MS 3977</td></tr>\
             </div><div class='footer'>contact us</div>",
            "<div class='dealerlinks'>\
               <tr><td><u>ACME CHAIRS</u><br>9 Low Rd<br>TUPELO, MS 38801</td></tr>\
             </div><div class='footer'>contact us</div>",
        ])
    }

    fn labels_of(site: &Site, texts: &[&str]) -> ItemSet<PageNode> {
        texts.iter().flat_map(|t| site.find_text(t)).collect()
    }

    #[test]
    fn clean_labels_learn_the_intro_rule() {
        let site = dealer_site();
        let ind = XPathInductor::new(&site);
        let labels = labels_of(&site, &["PORTER FURNITURE", "WOODLAND FURNITURE"]);
        assert_eq!(labels.len(), 2);
        // The feature-based form is the *most specific* consistent xpath;
        // it carries the same constraints as the paper's intro rule plus
        // child-number refinements.
        let rule = ind.rule(&labels);
        assert_eq!(
            rule,
            "//div[1][@class='dealerlinks']/tr/td[1]/u[1]/text()[1]"
        );
        // Extraction generalizes to the unseen page's name too.
        let out = ind.extract(&labels);
        let texts: Vec<&str> = out.iter().map(|&n| site.text_of(n).unwrap()).collect();
        assert_eq!(
            texts,
            vec!["PORTER FURNITURE", "WOODLAND FURNITURE", "ACME CHAIRS"]
        );
    }

    #[test]
    fn noisy_label_overgeneralizes_exactly_like_the_paper() {
        // §1: adding the wrong label (an address) widens the rule to all
        // text under td.
        let site = dealer_site();
        let ind = XPathInductor::new(&site);
        let labels = labels_of(
            &site,
            &[
                "PORTER FURNITURE",
                "WOODLAND FURNITURE",
                "NEW ALBANY, MS 38652",
            ],
        );
        let out = ind.extract(&labels);
        // The <u> constraint is lost: the wrapper now also pulls the
        // addresses of row-1 listings (the surviving child-number features
        // keep row-2 addresses of page 0 out, but PORTER's full address and
        // everything on single-row pages leaks in). 4 nodes on page 0
        // (PORTER + its 2 address lines + WOODLAND) and all 3 on page 1.
        assert_eq!(out.len(), 7);
        let rule = ind.rule(&labels);
        assert!(!rule.contains("u["), "the <u> step must be dropped: {rule}");
    }

    #[test]
    fn rendered_xpath_matches_feature_extraction() {
        let site = dealer_site();
        let ind = XPathInductor::new(&site);
        for texts in [
            vec!["PORTER FURNITURE", "WOODLAND FURNITURE"],
            vec!["PORTER FURNITURE", "ACME CHAIRS"],
            vec!["201 HWY", "9 Low Rd"],
            vec!["contact us"],
        ] {
            let labels = labels_of(&site, &texts);
            let xp = ind.xpath(&labels);
            let by_eval: ItemSet<PageNode> = (0..site.page_count() as u32)
                .flat_map(|p| {
                    evaluate(&xp, site.page(p))
                        .into_iter()
                        .map(move |id| PageNode::new(p, id))
                })
                .collect();
            assert_eq!(by_eval, ind.extract(&labels), "mismatch for {texts:?}");
        }
    }

    #[test]
    fn single_label_learns_most_specific_path() {
        let site = dealer_site();
        let ind = XPathInductor::new(&site);
        let labels = labels_of(&site, &["PORTER FURNITURE"]);
        let out = ind.extract(&labels);
        // The most specific path still matches same-position nodes on
        // *other* pages — that is the point of wrappers. Page 2's ACME
        // CHAIRS sits at the identical path (tr[1]).
        let texts: Vec<&str> = out.iter().map(|&n| site.text_of(n).unwrap()).collect();
        assert_eq!(texts, vec!["PORTER FURNITURE", "ACME CHAIRS"]);
    }

    #[test]
    fn disjoint_labels_extract_everything() {
        // A name and the footer share no ancestor features except none —
        // the intersection is empty, so the wrapper is `//text()`.
        let site = dealer_site();
        let ind = XPathInductor::new(&site);
        let labels = labels_of(&site, &["PORTER FURNITURE", "contact us"]);
        let req = ind.required_features(&labels);
        // Both are inside a <div>, but with different classes; tag feature
        // at some position may survive. Extraction must at least cover all
        // labels (fidelity) and here generalizes very widely.
        let out = ind.extract(&labels);
        assert!(labels.is_subset(&out));
        assert!(out.len() >= 7, "req={req:?} out={out:?}");
    }

    #[test]
    fn xpath_inductor_is_well_behaved() {
        // Theorem 5, checked exhaustively on a 5-label set.
        let site = dealer_site();
        let ind = XPathInductor::new(&site);
        let labels = labels_of(
            &site,
            &[
                "PORTER FURNITURE",
                "WOODLAND FURNITURE",
                "201 HWY",
                "ACME CHAIRS",
                "contact us",
            ],
        );
        // "contact us" occurs on both pages, so 6 labels in total.
        assert_eq!(labels.len(), 6);
        let report = check_well_behaved(&ind, &labels);
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn subdivision_groups_by_feature_value() {
        let site = dealer_site();
        let ind = XPathInductor::new(&site);
        let labels = labels_of(&site, &["PORTER FURNITURE", "201 HWY", "contact us"]);
        // Split by parent tag: u vs (td-direct text) vs div.
        let groups = ind.subdivision(&labels, &XAttr::Tag(1));
        assert_eq!(groups.len(), 3);
        // Every group is a subset of the input.
        for g in &groups {
            assert!(g.is_subset(&labels));
        }
    }

    #[test]
    fn attributes_cover_label_depth() {
        let site = dealer_site();
        let ind = XPathInductor::new(&site);
        let labels = labels_of(&site, &["PORTER FURNITURE"]);
        let attrs = ind.attributes(&labels);
        // u(1), td(2), tr(3), div(4) → tag+childnum each, plus div class.
        assert!(attrs.contains(&XAttr::Tag(1)));
        assert!(attrs.contains(&XAttr::Tag(4)));
        assert!(attrs.contains(&XAttr::Html(4, "class".into())));
        assert!(!attrs.iter().any(|a| a.position() > 4));
    }

    #[test]
    fn empty_labels_extract_nothing() {
        let site = dealer_site();
        let ind = XPathInductor::new(&site);
        assert!(ind.extract(&ItemSet::new()).is_empty());
        assert_eq!(ind.rule(&ItemSet::new()), "∅");
    }

    #[test]
    fn universe_is_all_text_nodes() {
        let site = dealer_site();
        let ind = XPathInductor::new(&site);
        assert_eq!(ind.universe().len(), site.text_nodes().len());
    }
}
