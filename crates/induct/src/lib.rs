//! # aw-induct — wrapper inductors
//!
//! The supervised wrapper-induction algorithms that the noise-tolerant
//! framework (VLDB 2011, §3–§5) wraps as blackboxes:
//!
//! * [`table::TableInductor`] — the paper's didactic running example
//!   (Example 1), used as the reference implementation for the
//!   enumeration theorems;
//! * [`table_dom::DomTableInductor`] — the same TABLE language grounded
//!   in real DOM pages (`<tr>`/`<td>` grid coordinates), with a portable
//!   [`table_dom::TableRule`];
//! * [`lr::LrInductor`] — the LR class of the WIEN system (Kushmerick et
//!   al.): longest common prefix/suffix delimiter pairs over the page
//!   character stream;
//! * [`hlrt::HlrtInductor`] — WIEN's HLRT extension with head/tail region
//!   delimiters;
//! * [`xpath_ind::XPathInductor`] — the xpath learner of Dalvi et al.
//!   (SIGMOD 2009), implemented in its feature-based form (§5).
//!
//! All inductors implement [`WrapperInductor`] (the blackbox interface of
//! §4: `extract = φ`) and, where the paper shows it possible, the
//! [`FeatureBased`] interface that unlocks the optimal `TopDown`
//! enumeration (§4.2).

pub mod features;
pub mod hlrt;
pub mod lr;
pub mod site;
pub mod table;
pub mod table_dom;
pub mod traits;
pub mod xpath_ind;

pub use hlrt::{HlrtInductor, HlrtRule};
pub use lr::{LrInductor, LrRule};
pub use site::Site;
pub use table::{Cell, TableInductor};
pub use table_dom::{DomTableInductor, TableRule};
pub use traits::{check_well_behaved, FeatureBased, ItemSet, WellBehavedReport, WrapperInductor};
pub use xpath_ind::XPathInductor;

/// The node-set type used throughout the framework: an ordered set of
/// [`aw_dom::PageNode`]s.
pub type NodeSet = ItemSet<aw_dom::PageNode>;
