//! Feature maps and posting lists shared by the feature-based inductors.
//!
//! §4.2: a feature is an `(attribute, value)` pair and
//! `φ(L) = {n | F(n) ⊇ ⋂_{ℓ∈L} F(ℓ)}`. We store each item's features as an
//! ordered map `attribute → value` (an item has at most one value per
//! attribute for both XPATH and LR feature spaces), intersect maps across
//! labels, and answer extraction queries with pre-built posting lists.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// Ordered feature map of one item: `attribute → value`.
pub type FeatureMap<A, V> = BTreeMap<A, V>;

/// Intersection of the feature maps of all `labels` (indices into `maps`).
///
/// A feature `(a, v)` survives iff every label has attribute `a` with the
/// same value `v`.
pub fn intersect_features<A: Ord + Clone, V: Eq + Clone>(
    maps: &[&FeatureMap<A, V>],
) -> FeatureMap<A, V> {
    let Some((first, rest)) = maps.split_first() else {
        return FeatureMap::new();
    };
    let mut out = FeatureMap::new();
    'feature: for (a, v) in first.iter() {
        for m in rest {
            if m.get(a) != Some(v) {
                continue 'feature;
            }
        }
        out.insert(a.clone(), v.clone());
    }
    out
}

/// Posting lists: for each feature `(a, v)`, the sorted dense indices of
/// items having it. Extraction is then an intersection of sorted lists.
#[derive(Debug)]
pub struct PostingIndex<A, V> {
    postings: HashMap<(A, V), Vec<u32>>,
    universe_size: u32,
}

impl<A: Eq + Hash + Clone + Ord, V: Eq + Hash + Clone> PostingIndex<A, V> {
    /// Builds the index from per-item feature maps (item `i` has map
    /// `item_features[i]`).
    pub fn build(item_features: &[FeatureMap<A, V>]) -> Self {
        let mut postings: HashMap<(A, V), Vec<u32>> = HashMap::new();
        for (i, map) in item_features.iter().enumerate() {
            for (a, v) in map {
                postings
                    .entry((a.clone(), v.clone()))
                    .or_default()
                    .push(i as u32);
            }
        }
        PostingIndex {
            postings,
            universe_size: item_features.len() as u32,
        }
    }

    /// Items (dense indices) whose features include *all* of `required`.
    /// An empty requirement matches the whole universe.
    pub fn matching(&self, required: &FeatureMap<A, V>) -> Vec<u32> {
        if required.is_empty() {
            return (0..self.universe_size).collect();
        }
        // Gather posting lists; shortest first for cheap intersection.
        let mut lists: Vec<&Vec<u32>> = Vec::with_capacity(required.len());
        for (a, v) in required {
            match self.postings.get(&(a.clone(), v.clone())) {
                Some(list) => lists.push(list),
                None => return Vec::new(),
            }
        }
        lists.sort_by_key(|l| l.len());
        let mut result: Vec<u32> = lists[0].clone();
        for list in &lists[1..] {
            result = intersect_sorted(&result, list);
            if result.is_empty() {
                break;
            }
        }
        result
    }
}

/// Intersection of two sorted u32 slices.
fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fm(pairs: &[(&str, &str)]) -> FeatureMap<String, String> {
        pairs
            .iter()
            .map(|(a, v)| (a.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn intersection_keeps_shared_equal_features() {
        let a = fm(&[("tag", "td"), ("pos", "1"), ("class", "x")]);
        let b = fm(&[("tag", "td"), ("pos", "2"), ("class", "x")]);
        let out = intersect_features(&[&a, &b]);
        assert_eq!(out, fm(&[("tag", "td"), ("class", "x")]));
    }

    #[test]
    fn intersection_of_disjoint_is_empty() {
        let a = fm(&[("tag", "td")]);
        let b = fm(&[("tag", "tr")]);
        assert!(intersect_features(&[&a, &b]).is_empty());
        assert!(intersect_features::<String, String>(&[]).is_empty());
    }

    #[test]
    fn single_map_intersection_is_itself() {
        let a = fm(&[("tag", "td"), ("pos", "1")]);
        assert_eq!(intersect_features(&[&a]), a);
    }

    #[test]
    fn posting_index_matches_by_conjunction() {
        let items = vec![
            fm(&[("tag", "td"), ("col", "1")]),
            fm(&[("tag", "td"), ("col", "2")]),
            fm(&[("tag", "tr"), ("col", "1")]),
        ];
        let idx = PostingIndex::build(&items);
        assert_eq!(idx.matching(&fm(&[("tag", "td")])), vec![0, 1]);
        assert_eq!(idx.matching(&fm(&[("tag", "td"), ("col", "1")])), vec![0]);
        assert_eq!(idx.matching(&fm(&[("tag", "table")])), Vec::<u32>::new());
        // Empty requirement = universe.
        assert_eq!(idx.matching(&FeatureMap::new()), vec![0, 1, 2]);
    }

    #[test]
    fn intersect_sorted_basics() {
        assert_eq!(intersect_sorted(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<u32>::new());
        assert_eq!(intersect_sorted(&[1, 2], &[3]), Vec::<u32>::new());
    }
}
