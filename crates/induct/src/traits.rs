//! Core abstractions: the blackbox [`WrapperInductor`] interface and the
//! [`FeatureBased`] refinement.
//!
//! §4 of the paper defines a wrapper inductor φ as a function from a label
//! set to a wrapper, and identifies wrappers with their *output* ("the
//! score of a wrapper only depends on its output", §6). We therefore expose
//! φ directly as `extract: labels → node set`; the concrete rule (an xpath
//! string, an `(l, r)` delimiter pair, …) is available through
//! [`WrapperInductor::rule`] for display and export.
//!
//! A **well-behaved** inductor (Definition 1) satisfies:
//!
//! 1. *Fidelity*: `L ⊆ φ(L)`;
//! 2. *Closure*: `ℓ ∈ φ(L) ⇒ φ(L) = φ(L ∪ {ℓ})`;
//! 3. *Monotonicity*: `L₁ ⊆ L₂ ⇒ φ(L₁) ⊆ φ(L₂)`.
//!
//! These are not encoded in the type system; [`check_well_behaved`] tests
//! them empirically and the workspace's property tests exercise them on
//! random inputs.

use std::collections::BTreeSet;
use std::fmt::Debug;
use std::hash::Hash;

/// A set of items (labels or extracted nodes). Ordered so that subsets can
/// be compared and hashed deterministically.
pub type ItemSet<T> = BTreeSet<T>;

/// A wrapper inductor φ over an item universe `Item`.
///
/// Implementations hold the page set they operate on; `extract` both learns
/// the rule from `labels` and applies it to every page, returning the full
/// extraction.
pub trait WrapperInductor {
    /// The universe of labels and extracted nodes. For DOM-based inductors
    /// this is [`aw_dom::PageNode`]; the didactic TABLE inductor uses grid
    /// cells.
    type Item: Copy + Ord + Hash + Debug;

    /// φ(L): learns a wrapper from `labels` and returns its extraction over
    /// the inductor's page set. Must return the empty set for empty input.
    fn extract(&self, labels: &ItemSet<Self::Item>) -> ItemSet<Self::Item>;

    /// Human-readable form of the rule learned from `labels`, in the
    /// inductor's native wrapper language.
    fn rule(&self, labels: &ItemSet<Self::Item>) -> String;

    /// The candidate universe (all items a wrapper could extract). Used by
    /// scoring (the `A` set of §6) and by tests.
    fn universe(&self) -> ItemSet<Self::Item>;
}

/// An identifier for one attribute of a feature-based inductor (§4.2).
///
/// A feature is an `(attribute, value)` pair attached to an item; a
/// feature-based inductor is defined by
/// `φ(L) = {n | F(n) ⊇ ⋂_{ℓ∈L} F(ℓ)}`.
pub trait FeatureBased: WrapperInductor {
    /// Attribute identifier (e.g. `(position, tagname)` for XPATH, `L_k`
    /// for LR).
    type Attr: Clone + Ord + Debug;

    /// All attributes appearing in the features of any label in `labels`
    /// (the `attrs(L)` of Algorithm 2).
    fn attributes(&self, labels: &ItemSet<Self::Item>) -> Vec<Self::Attr>;

    /// `subdivision(s, a)`: partitions the items of `s` that *have*
    /// attribute `a` into groups with equal value. Items lacking `a` are
    /// simply not covered (§4.2).
    fn subdivision(&self, s: &ItemSet<Self::Item>, attr: &Self::Attr) -> Vec<ItemSet<Self::Item>>;
}

/// Violations found by [`check_well_behaved`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WellBehavedReport {
    /// Label sets violating fidelity (`L ⊄ φ(L)`).
    pub fidelity_violations: usize,
    /// Label sets violating closure.
    pub closure_violations: usize,
    /// Label-set pairs violating monotonicity.
    pub monotonicity_violations: usize,
    /// Number of subset checks performed.
    pub checks: usize,
}

impl WellBehavedReport {
    /// True when no violations were found.
    pub fn is_clean(&self) -> bool {
        self.fidelity_violations == 0
            && self.closure_violations == 0
            && self.monotonicity_violations == 0
    }
}

/// Empirically checks Definition 1 on every nonempty subset of `labels`
/// (so keep `labels` small: ≤ ~12 items).
pub fn check_well_behaved<I: WrapperInductor>(
    inductor: &I,
    labels: &ItemSet<I::Item>,
) -> WellBehavedReport {
    let items: Vec<I::Item> = labels.iter().copied().collect();
    let n = items.len();
    assert!(n <= 16, "exhaustive well-behavedness check is exponential");
    let mut report = WellBehavedReport::default();

    let subsets: Vec<ItemSet<I::Item>> = (1u32..(1 << n))
        .map(|mask| {
            (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| items[i])
                .collect()
        })
        .collect();

    let outputs: Vec<ItemSet<I::Item>> = subsets.iter().map(|s| inductor.extract(s)).collect();

    for (s, out) in subsets.iter().zip(&outputs) {
        report.checks += 1;
        // Fidelity.
        if !s.is_subset(out) {
            report.fidelity_violations += 1;
        }
        // Closure: for every extracted ℓ (within the label universe or not),
        // adding it must not change the output. Checking all extracted nodes
        // is the strong form; Definition 1 only needs it for ℓ ∈ φ(L).
        for &l in out.iter() {
            let mut s2 = s.clone();
            if s2.insert(l) {
                let out2 = inductor.extract(&s2);
                if &out2 != out {
                    report.closure_violations += 1;
                    break;
                }
            }
        }
    }

    // Monotonicity over comparable pairs.
    for (i, s1) in subsets.iter().enumerate() {
        for (j, s2) in subsets.iter().enumerate() {
            if i != j && s1.is_subset(s2) && !outputs[i].is_subset(&outputs[j]) {
                report.monotonicity_violations += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivially well-behaved inductor: identity (returns the labels).
    struct Identity;
    impl WrapperInductor for Identity {
        type Item = u32;
        fn extract(&self, labels: &ItemSet<u32>) -> ItemSet<u32> {
            labels.clone()
        }
        fn rule(&self, labels: &ItemSet<u32>) -> String {
            format!("{labels:?}")
        }
        fn universe(&self) -> ItemSet<u32> {
            (0..10).collect()
        }
    }

    /// A non-monotone inductor: returns the complement parity set.
    struct Bad;
    impl WrapperInductor for Bad {
        type Item = u32;
        fn extract(&self, labels: &ItemSet<u32>) -> ItemSet<u32> {
            // Violates fidelity for odd labels and monotonicity in general.
            labels.iter().map(|&x| x / 2).collect()
        }
        fn rule(&self, _: &ItemSet<u32>) -> String {
            "bad".into()
        }
        fn universe(&self) -> ItemSet<u32> {
            (0..10).collect()
        }
    }

    #[test]
    fn identity_is_well_behaved() {
        let labels: ItemSet<u32> = [1, 2, 3, 4].into_iter().collect();
        let report = check_well_behaved(&Identity, &labels);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.checks, 15);
    }

    #[test]
    fn bad_inductor_is_flagged() {
        let labels: ItemSet<u32> = [1, 3, 5].into_iter().collect();
        let report = check_well_behaved(&Bad, &labels);
        assert!(!report.is_clean());
        assert!(report.fidelity_violations > 0);
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn check_rejects_large_sets() {
        let labels: ItemSet<u32> = (0..20).collect();
        let _ = check_well_behaved(&Identity, &labels);
    }
}
