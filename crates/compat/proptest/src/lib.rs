//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro with `#![proptest_config(...)]`,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, strategies for
//! integer and float ranges, char-class regex strings, `Just`,
//! `prop_oneof!`, `.prop_map`, `prop::collection::vec`,
//! `prop::option::of` and `prop::bool::ANY`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test stream (seeded by test path), there is **no shrinking** (a
//! failure panics with the formatted assertion message and the case
//! number), and regex strategies support only char classes, literals and
//! `{m}` / `{m,n}` / `?` / `*` / `+` quantifiers — exactly what the
//! in-repo tests use.

pub mod strategy;
pub mod test_runner;

/// Strategy namespace (`prop::collection::vec`, `prop::option::of`, ...).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }

    /// `Option` strategies.
    pub mod option {
        pub use crate::strategy::option_of as of;
    }

    /// `bool` strategies.
    pub mod bool {
        pub use crate::strategy::BOOL_ANY as ANY;
    }
}

/// The common imports of a proptest test file.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let test_path = concat!(module_path!(), "::", stringify!($name));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                let mut case: u64 = 0;
                while accepted < config.cases {
                    if rejected > 64 * config.cases + 1024 {
                        panic!("proptest {test_path}: too many rejected cases ({rejected})");
                    }
                    let mut __rng = $crate::test_runner::TestRng::for_case(test_path, case);
                    case += 1;
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => rejected += 1,
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest {test_path} failed at case {}: {msg}", case - 1)
                        }
                    }
                }
            }
        )*
    };
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Asserts within a property test (fails the case, reporting the input).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Equality assertion within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assert_eq failed: left = {left:?}, right = {right:?}"),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assert_eq failed: left = {left:?}, right = {right:?}: {}",
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Inequality assertion within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assert_ne failed: both = {left:?}"),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assert_ne failed: both = {left:?}: {}", format!($($fmt)+)),
            ));
        }
    }};
}

/// A strategy choosing uniformly among the given strategies (which must
/// share a value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        let __choices: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec![$(::std::boxed::Box::new($s)),+];
        $crate::strategy::Union::new(__choices)
    }};
}
