//! Test-case runner support: configuration, RNG and case outcomes.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Runner configuration (only the case count is used in this workspace).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of *accepted* (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case does not count.
    Reject,
    /// `prop_assert!*` failed; the test fails.
    Fail(String),
}

/// Deterministic per-case RNG: seeded from the test path and case index,
/// so failures reproduce without recording seeds.
#[derive(Clone, Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// The RNG for case `case` of the test at `test_path`.
    pub fn for_case(test_path: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
