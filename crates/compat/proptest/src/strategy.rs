//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type.
///
/// Object safe: `prop_oneof!` boxes heterogeneous strategies with a
/// common `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The output of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    choices: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union; panics on an empty choice list.
    pub fn new(choices: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        Union { choices }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.choices.len());
        self.choices[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// `prop::bool::ANY`.
#[derive(Clone, Copy, Debug)]
pub struct BoolAny;

/// The any-bool strategy value.
pub const BOOL_ANY: BoolAny = BoolAny;

impl Strategy for BoolAny {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

/// `&str` as a char-class regex strategy (e.g. `"[a-z][a-z0-9]{0,6}"`).
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

/// Sizes accepted by [`vec()`].
pub trait SizeRange {
    /// Samples a length.
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// `prop::collection::vec(element, size)`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

/// The output of [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample_len(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::option::of(strategy)`: `Some` three times out of four.
pub fn option_of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// The output of [`option_of`].
#[derive(Clone, Debug)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        rng.gen_bool(0.75).then(|| self.inner.generate(rng))
    }
}

// ---------------------------------------------------------------------
// Char-class regex generation.

enum Atom {
    Literal(char),
    Class(Vec<(char, char)>), // inclusive ranges
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let (class, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                Atom::Class(class)
            }
            '\\' => {
                i += 2;
                Atom::Literal(*chars.get(i - 1).unwrap_or_else(|| {
                    panic!("proptest stand-in: dangling escape in pattern {pattern:?}")
                }))
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional quantifier.
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("proptest stand-in: unclosed {{}} in {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("quantifier lower bound"),
                        b.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        let n = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
        for _ in 0..n {
            match &atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => out.push(sample_class(ranges, rng)),
            }
        }
    }
    out
}

fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<(char, char)>, usize) {
    let mut ranges = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' {
            i += 1;
            chars[i]
        } else {
            chars[i]
        };
        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']') {
            let mut j = i + 2;
            let hi = if chars[j] == '\\' {
                j += 1;
                chars[j]
            } else {
                chars[j]
            };
            ranges.push((c, hi));
            i = j + 1;
        } else {
            ranges.push((c, c));
            i += 1;
        }
    }
    assert!(
        i < chars.len(),
        "proptest stand-in: unclosed [..] in {pattern:?}"
    );
    (ranges, i + 1) // skip ']'
}

fn sample_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u32 = ranges
        .iter()
        .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
        .sum();
    let mut pick = rng.gen_range(0..total);
    for &(lo, hi) in ranges {
        let span = hi as u32 - lo as u32 + 1;
        if pick < span {
            return char::from_u32(lo as u32 + pick).expect("class chars are valid scalars");
        }
        pick -= span;
    }
    unreachable!("class sampling is exhaustive")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::for_case("strategy::regex", 0);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9]{0,6}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
        let fixed = "abc".generate(&mut rng);
        assert_eq!(fixed, "abc");
        let esc = "a\\[b".generate(&mut rng);
        assert_eq!(esc, "a[b");
    }

    #[test]
    fn vec_and_option_and_union() {
        let mut rng = TestRng::for_case("strategy::composite", 1);
        let v = vec(0u32..10, 3..6).generate(&mut rng);
        assert!((3..6).contains(&v.len()));
        assert!(v.iter().all(|&x| x < 10));
        let mut somes = 0;
        for _ in 0..100 {
            if option_of(0u8..5).generate(&mut rng).is_some() {
                somes += 1;
            }
        }
        assert!(somes > 50 && somes < 100);
        let u = crate::prop_oneof![Just("a".to_string()), Just("b".to_string())];
        let x = u.generate(&mut rng);
        assert!(x == "a" || x == "b");
    }

    #[test]
    fn prop_map_transforms() {
        let mut rng = TestRng::for_case("strategy::map", 2);
        let s = (0u32..5).prop_map(|x| x * 10);
        for _ in 0..20 {
            let v = s.generate(&mut rng);
            assert_eq!(v % 10, 0);
            assert!(v < 50);
        }
    }
}
