//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], and [`seq::SliceRandom`]'s `choose`/`shuffle`.
//! The generator is xoshiro256** seeded through splitmix64 — high-quality
//! and fully deterministic per seed, though the stream differs from
//! upstream `rand` (nothing in this workspace depends on upstream's
//! exact stream).

use std::ops::{Range, RangeInclusive};

/// Core RNG abstraction: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers over an [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: IntoUniformRange<T>,
    {
        let (lo, hi_inclusive) = range.bounds();
        T::sample(self, lo, hi_inclusive)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types uniformly sampleable over a closed range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi]` (both inclusive).
    fn sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // Multiply-shift rejection-free bounded sampling (Lemire);
                // the tiny modulo bias is irrelevant for site generation.
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (unit_f64(rng.next_u64()) as f32) * (hi - lo)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait IntoUniformRange<T: SampleUniform> {
    /// `(low, high)` with `high` inclusive.
    fn bounds(self) -> (T, T);
}

impl IntoUniformRange<f64> for Range<f64> {
    fn bounds(self) -> (f64, f64) {
        (self.start, self.end) // treat as half-open; endpoint mass is 0
    }
}

impl IntoUniformRange<f32> for Range<f32> {
    fn bounds(self) -> (f32, f32) {
        (self.start, self.end)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl IntoUniformRange<$t> for Range<$t> {
            fn bounds(self) -> ($t, $t) {
                assert!(self.start < self.end, "gen_range: empty range");
                (self.start, self.end - 1)
            }
        }
        impl IntoUniformRange<$t> for RangeInclusive<$t> {
            fn bounds(self) -> ($t, $t) {
                (*self.start(), *self.end())
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Uniform index into `0..n` (n > 0).
    fn gen_index<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
        ((rng.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// `choose` and `shuffle` on slices.
    pub trait SliceRandom {
        /// The slice's element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[gen_index(rng, self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, gen_index(rng, i + 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100).all(|_| a.gen_range(0..1000u32) == c.gen_range(0..1000u32));
        assert!(!same);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(10..20u64);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(3..=5usize);
            assert!((3..=5).contains(&y));
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3, 4, 5];
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should permute 50 elements");
    }
}
