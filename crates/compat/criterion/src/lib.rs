//! Offline stand-in for `criterion`.
//!
//! Provides [`criterion_group!`] / [`criterion_main!`], benchmark groups
//! and a wall-clock measurement loop. Statistics are deliberately simple
//! compared to upstream — a warmup phase sizes the iteration batch, then
//! a fixed number of timed samples yields median/mean ns per iteration —
//! but the reporting format (`group/function  time: [..]`) is close
//! enough for eyeballing regressions.
//!
//! Environment knobs:
//! * `CRITERION_SAMPLE_MS` — per-sample time budget (default 100 ms);
//! * `CRITERION_SAMPLES`   — samples per benchmark (default 12).

use std::time::{Duration, Instant};

/// Per-iteration throughput annotation.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver.
#[derive(Clone, Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), None, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id.into()), self.throughput, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mut f: F) {
    let sample_budget = Duration::from_millis(env_u64("CRITERION_SAMPLE_MS", 100));
    let n_samples = env_u64("CRITERION_SAMPLES", 12).max(3) as usize;

    // Warmup: find an iteration count that fills the sample budget.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= sample_budget || iters >= 1 << 40 {
            break;
        }
        let per_iter = b.elapsed.as_nanos().max(1) as u64 / iters.max(1);
        let target = (sample_budget.as_nanos() as u64 / per_iter.max(1)).max(iters * 2);
        iters = target.min(iters.saturating_mul(16)).max(iters + 1);
    }

    let mut per_iter_ns: Vec<f64> = (0..n_samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(f64::total_cmp);
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let lo = per_iter_ns[0];
    let hi = per_iter_ns[per_iter_ns.len() - 1];

    print!(
        "{id:<44} time: [{} {} {}]",
        fmt_ns(lo),
        fmt_ns(median),
        fmt_ns(hi)
    );
    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let gib = bytes as f64 / median * 1e9 / (1u64 << 30) as f64;
            print!("  thrpt: {gib:.3} GiB/s");
        }
        Some(Throughput::Elements(n)) => {
            let meps = n as f64 / median * 1e9 / 1e6;
            print!("  thrpt: {meps:.3} Melem/s");
        }
        None => {}
    }
    println!();
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Declares a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        std::env::set_var("CRITERION_SAMPLES", "3");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("compat");
        g.throughput(Throughput::Elements(64));
        g.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
        std::env::remove_var("CRITERION_SAMPLE_MS");
        std::env::remove_var("CRITERION_SAMPLES");
    }
}
