//! Offline stand-in for `serde_json`: pretty-prints the `serde`
//! stand-in's [`Value`] tree with the same spacing conventions as
//! upstream (`"key": value`, two-space indent), and parses JSON text
//! back into [`Value`] (used by the benchmark gate to read committed
//! baselines).

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error (the stand-in is infallible in practice; the type
/// exists so call sites keep their `Result` plumbing).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Pretty JSON with two-space indentation, like upstream serde_json.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Compact JSON on one line.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    fn compact(v: &Value, out: &mut String) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => push_number(*n, out),
            Value::String(s) => push_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    compact(item, out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, item)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_json_string(k, out);
                    out.push(':');
                    compact(item, out);
                }
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses JSON text into a [`Value`] tree.
///
/// Supports the full JSON grammar (objects, arrays, strings with
/// escapes, numbers, booleans, null); numbers land in `Value::Number`'s
/// `f64` like everything else in the stand-in. Trailing non-whitespace
/// is an error.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error(format!("bad \\u escape '{hex}'")))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our own
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(Error(format!("bad escape '\\{}'", esc as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error("invalid utf-8 in string".into()))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number characters");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("invalid number '{text}'")))
    }
}

fn write_value(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => push_number(*n, out),
        Value::String(s) => push_json_string(s, out),
        Value::Array(items) if items.is_empty() => out.push_str("[]"),
        Value::Array(items) => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                push_indent(indent + 1, out);
                write_value(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(indent, out);
            out.push(']');
        }
        Value::Object(entries) if entries.is_empty() => out.push_str("{}"),
        Value::Object(entries) => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                push_indent(indent + 1, out);
                push_json_string(k, out);
                out.push_str(": ");
                write_value(item, indent + 1, out);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(indent, out);
            out.push('}');
        }
    }
}

fn push_indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn push_number(n: f64, out: &mut String) {
    if n.is_finite() && n == n.trunc() && n.abs() < 1e15 {
        // Integers print without a decimal point, except that upstream
        // serde_json prints f64 whole numbers as "1.0"; we cannot tell the
        // source type apart here, so follow the float convention: the only
        // assertion-relevant case in-repo ("precision": 0.5 / 1.0) is float.
        out.push_str(&format!("{n:.1}"));
    } else if n.is_finite() {
        out.push_str(&format!("{n}"));
    } else {
        out.push_str("null"); // upstream refuses NaN/inf; null is close enough
    }
}

fn push_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_object() {
        let v = Value::Object(vec![
            ("precision".into(), Value::Number(0.5)),
            (
                "tags".into(),
                Value::Array(vec![Value::String("a\"b".into())]),
            ),
        ]);
        struct Wrap(Value);
        impl Serialize for Wrap {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let s = to_string_pretty(&Wrap(v)).unwrap();
        assert!(s.contains("\"precision\": 0.5"), "{s}");
        assert!(s.contains("\\\""), "{s}");
        let c = to_string(&Wrap(Value::Bool(true))).unwrap();
        assert_eq!(c, "true");
    }

    #[test]
    fn parse_roundtrips_own_output() {
        let v = Value::Object(vec![
            ("schema".into(), Value::Number(1.0)),
            (
                "speedups".into(),
                Value::Object(vec![
                    ("sharded_vs_indexed".into(), Value::Number(2.75)),
                    ("note".into(), Value::String("a\"b\\c\nd".into())),
                ]),
            ),
            (
                "series".into(),
                Value::Array(vec![Value::Number(-1.5e3), Value::Bool(false), Value::Null]),
            ),
            ("empty_obj".into(), Value::Object(vec![])),
            ("empty_arr".into(), Value::Array(vec![])),
        ]);
        for rendered in [to_string_pretty(&v).unwrap(), to_string(&v).unwrap()] {
            assert_eq!(from_str(&rendered).unwrap(), v, "from {rendered}");
        }
    }

    #[test]
    fn parse_accessors() {
        let v =
            from_str(r#"{ "min_speedup": { "sharded_vs_indexed": 1.5 }, "name": "x" }"#).unwrap();
        assert_eq!(
            v.get("min_speedup")
                .and_then(|m| m.get("sharded_vs_indexed"))
                .and_then(Value::as_f64),
            Some(1.5)
        );
        assert_eq!(v.get("name").and_then(Value::as_str), Some("x"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("\"unterminated").is_err());
        assert!(from_str("{\"k\" 1}").is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn parse_unicode_and_escapes() {
        assert_eq!(
            from_str(r#""café – ☕""#).unwrap(),
            Value::String("café – ☕".into())
        );
        assert_eq!(
            from_str(r#""\t\r\n\b\f\/""#).unwrap(),
            Value::String("\t\r\n\u{8}\u{c}/".into())
        );
    }
}
