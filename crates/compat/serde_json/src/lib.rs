//! Offline stand-in for `serde_json`: pretty-prints the `serde`
//! stand-in's [`Value`] tree with the same spacing conventions as
//! upstream (`"key": value`, two-space indent).

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error (the stand-in is infallible in practice; the type
/// exists so call sites keep their `Result` plumbing).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Pretty JSON with two-space indentation, like upstream serde_json.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Compact JSON on one line.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    fn compact(v: &Value, out: &mut String) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => push_number(*n, out),
            Value::String(s) => push_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    compact(item, out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, item)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_json_string(k, out);
                    out.push(':');
                    compact(item, out);
                }
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    compact(&value.to_value(), &mut out);
    Ok(out)
}

fn write_value(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => push_number(*n, out),
        Value::String(s) => push_json_string(s, out),
        Value::Array(items) if items.is_empty() => out.push_str("[]"),
        Value::Array(items) => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                push_indent(indent + 1, out);
                write_value(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(indent, out);
            out.push(']');
        }
        Value::Object(entries) if entries.is_empty() => out.push_str("{}"),
        Value::Object(entries) => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                push_indent(indent + 1, out);
                push_json_string(k, out);
                out.push_str(": ");
                write_value(item, indent + 1, out);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(indent, out);
            out.push('}');
        }
    }
}

fn push_indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn push_number(n: f64, out: &mut String) {
    if n.is_finite() && n == n.trunc() && n.abs() < 1e15 {
        // Integers print without a decimal point, except that upstream
        // serde_json prints f64 whole numbers as "1.0"; we cannot tell the
        // source type apart here, so follow the float convention: the only
        // assertion-relevant case in-repo ("precision": 0.5 / 1.0) is float.
        out.push_str(&format!("{n:.1}"));
    } else if n.is_finite() {
        out.push_str(&format!("{n}"));
    } else {
        out.push_str("null"); // upstream refuses NaN/inf; null is close enough
    }
}

fn push_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_object() {
        let v = Value::Object(vec![
            ("precision".into(), Value::Number(0.5)),
            (
                "tags".into(),
                Value::Array(vec![Value::String("a\"b".into())]),
            ),
        ]);
        struct Wrap(Value);
        impl Serialize for Wrap {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let s = to_string_pretty(&Wrap(v)).unwrap();
        assert!(s.contains("\"precision\": 0.5"), "{s}");
        assert!(s.contains("\\\""), "{s}");
        let c = to_string(&Wrap(Value::Bool(true))).unwrap();
        assert_eq!(c, "true");
    }
}
