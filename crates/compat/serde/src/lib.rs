//! Offline stand-in for `serde`, serialization only.
//!
//! The real serde decouples data structures from formats through a
//! visitor API; this workspace only ever serializes experiment results to
//! JSON, so the stand-in collapses the design to a JSON value tree:
//! [`Serialize`] renders `self` as a [`Value`], and the `serde_json`
//! stand-in pretty-prints it. `#[derive(Serialize)]` comes from the
//! sibling `serde_derive` proc macro.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::Serialize;

/// A JSON value tree (the stand-in's entire data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers are rendered without a decimal point.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// Types renderable as a JSON [`Value`].
pub trait Serialize {
    /// Renders `self` as a JSON value tree.
    fn to_value(&self) -> Value;
}

macro_rules! impl_ser_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

impl_ser_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Value {
    /// Object field lookup; `None` for missing keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0)); // deterministic output
        Value::Object(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render() {
        assert_eq!(3u32.to_value(), Value::Number(3.0));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::String("x".into()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::Number(1.0), Value::Number(2.0)])
        );
    }
}
