//! Offline stand-in for `serde_derive`: a dependency-free
//! `#[derive(Serialize)]` supporting the two shapes this workspace
//! derives on — structs with named fields and fieldless enums.
//!
//! Written against `proc_macro` directly (no `syn`/`quote`: the build
//! environment has no registry access). The generated impl targets the
//! sibling `serde` stand-in's `Serialize` trait.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a named-field struct or fieldless enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes and visibility, find `struct` or `enum`.
    let mut kind = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // attr: '#' + group
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
                kind = Some(id.to_string());
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    let kind = kind.expect("derive(Serialize): expected struct or enum");

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive(Serialize): expected type name, got {other}"),
    };
    i += 1;

    // No generics in this workspace's derived types.
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("derive(Serialize) stand-in does not support generics")
            }
            Some(_) => i += 1,
            None => panic!("derive(Serialize): expected a braced body"),
        }
    };

    let impl_src = if kind == "struct" {
        let fields = named_fields(body);
        let pushes: String = fields
            .iter()
            .map(|f| {
                format!(
                    "entries.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));"
                )
            })
            .collect();
        format!(
            "impl ::serde::Serialize for {name} {{\n\
               fn to_value(&self) -> ::serde::Value {{\n\
                 let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\n\
                 ::serde::Value::Object(entries)\n\
               }}\n\
             }}"
        )
    } else {
        let variants = unit_variants(body, &name);
        let arms: String = variants
            .iter()
            .map(|v| format!("{name}::{v} => ::serde::Value::String({v:?}.to_string()),"))
            .collect();
        format!(
            "impl ::serde::Serialize for {name} {{\n\
               fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {arms} }}\n\
               }}\n\
             }}"
        )
    };
    impl_src
        .parse()
        .expect("derive(Serialize): generated impl parses")
}

/// Field names of a named-field struct body.
fn named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility on the field.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // pub(crate) etc.
                if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
                continue;
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                // Skip `: Type` up to the next top-level comma. Generic
                // argument commas hide inside `<...>` depth.
                i += 1;
                let mut angle = 0i32;
                while i < tokens.len() {
                    match &tokens[i] {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    fields
}

/// Variant names of a fieldless enum body; panics on data-carrying
/// variants (unsupported by the stand-in).
fn unit_variants(body: TokenStream, name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                i += 1;
                match tokens.get(i) {
                    None => {}
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
                    Some(other) => panic!(
                        "derive(Serialize) stand-in: enum {name} has a non-unit \
                         variant near {other}"
                    ),
                }
            }
            _ => i += 1,
        }
    }
    variants
}
