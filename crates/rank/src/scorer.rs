//! Wrapper scoring: `score(w) = log P(L | X) + log P(X)` (Equation 1),
//! with the NTW-L / NTW-X ablation variants of §7.3.

use crate::annotation::AnnotatorModel;
use crate::publication::{list_features, ListFeatures, PublicationModel};
use crate::segmentation::segment_site;
use aw_induct::{NodeSet, Site};

/// Which ranking components are active (§7.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RankingMode {
    /// Full NTW: both components.
    Full,
    /// NTW-L: only the labeling-error term `P(L | X)`.
    AnnotationOnly,
    /// NTW-X: only the list-goodness term `P(X)`.
    PublicationOnly,
}

impl RankingMode {
    /// The display name used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            RankingMode::Full => "NTW",
            RankingMode::AnnotationOnly => "NTW-L",
            RankingMode::PublicationOnly => "NTW-X",
        }
    }
}

/// A complete single-type ranking model for one domain.
#[derive(Clone, Debug)]
pub struct RankingModel {
    /// The annotator's `(p, r)` characteristics.
    pub annotator: AnnotatorModel,
    /// The learned publication model.
    pub publication: PublicationModel,
    /// Active components.
    pub mode: RankingMode,
}

/// Score breakdown for one candidate wrapper (useful for debugging and for
/// the ablation figures).
#[derive(Clone, Copy, Debug)]
pub struct WrapperScore {
    /// `log P(L | X)` (up to the wrapper-invariant constant).
    pub annotation: f64,
    /// `log P(X)`.
    pub publication: f64,
    /// The list features, when measurable.
    pub features: Option<ListFeatures>,
    /// The combined score under the model's mode.
    pub total: f64,
}

impl RankingModel {
    /// Creates a full-mode model.
    pub fn new(annotator: AnnotatorModel, publication: PublicationModel) -> Self {
        RankingModel {
            annotator,
            publication,
            mode: RankingMode::Full,
        }
    }

    /// Returns a copy with a different mode.
    pub fn with_mode(&self, mode: RankingMode) -> Self {
        let mut m = self.clone();
        m.mode = mode;
        m
    }

    /// Scores extraction `x` against label set `labels` on `site`.
    pub fn score(&self, site: &Site, labels: &NodeSet, x: &NodeSet) -> WrapperScore {
        let hits = x.iter().filter(|n| labels.contains(n)).count();
        let unlabeled = x.len() - hits;
        let annotation = self.annotator.log_likelihood(hits, unlabeled);

        let (publication, features) = match self.mode {
            RankingMode::AnnotationOnly => (0.0, None),
            _ => {
                let segments = segment_site(site, x);
                let features = list_features(&segments);
                (self.publication.log_prob(features), features)
            }
        };

        let total = match self.mode {
            RankingMode::Full => annotation + publication,
            RankingMode::AnnotationOnly => annotation,
            RankingMode::PublicationOnly => publication,
        };
        WrapperScore {
            annotation,
            publication,
            features,
            total,
        }
    }

    /// Scores every candidate and returns indices sorted best-first
    /// (deterministic tie-break on index order).
    pub fn rank<'a>(
        &self,
        site: &Site,
        labels: &NodeSet,
        candidates: impl IntoIterator<Item = &'a NodeSet>,
    ) -> Vec<(usize, WrapperScore)> {
        let mut scored: Vec<(usize, WrapperScore)> = candidates
            .into_iter()
            .enumerate()
            .map(|(i, x)| (i, self.score(site, labels, x)))
            .collect();
        scored.sort_by(|a, b| {
            b.1.total
                .partial_cmp(&a.1.total)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publication::PublicationModel;

    fn flat_site() -> Site {
        Site::from_html(&["<ul>\
             <li>addr1</li><li>NAME1</li><li>zip1</li><li>ph1</li>\
             <li>addr2</li><li>NAME2</li><li>zip2</li><li>ph2</li>\
             <li>addr3</li><li>NAME3</li><li>zip3</li><li>ph3</li>\
             </ul>"])
    }

    fn x_of(site: &Site, texts: &[&str]) -> NodeSet {
        texts.iter().flat_map(|t| site.find_text(t)).collect()
    }

    fn business_model() -> RankingModel {
        // Trained on business-like lists: ~4 fields per record, aligned.
        let publication = PublicationModel::learn(&[
            ListFeatures {
                schema_size: 4.0,
                alignment: 0.0,
            },
            ListFeatures {
                schema_size: 4.0,
                alignment: 1.0,
            },
            ListFeatures {
                schema_size: 3.0,
                alignment: 0.0,
            },
            ListFeatures {
                schema_size: 5.0,
                alignment: 2.0,
            },
        ]);
        RankingModel::new(AnnotatorModel::new(0.9, 0.6), publication)
    }

    #[test]
    fn section_3_ranking_example() {
        // w1 = names only (2 of 3 labeled), w3 = all text nodes (covers
        // all labels). The full model must rank w1 on top even though it
        // misses a label — the schema-size prior kills w3.
        let site = flat_site();
        let labels = x_of(&site, &["NAME1", "NAME2", "zip3"]); // 1 wrong label
        let w1 = x_of(&site, &["NAME1", "NAME2", "NAME3"]);
        let w3: NodeSet = site.text_nodes().iter().copied().collect();
        let model = business_model();
        let candidates = [w1.clone(), w3.clone()];
        let ranked = model.rank(&site, &labels, candidates.iter());
        assert_eq!(ranked[0].0, 0, "w1 (names) must win: {ranked:?}");
        // The annotation term *alone* prefers w3 (it covers all labels
        // with modest over-extraction penalty at r=0.6… verify direction).
        let s1 = model.score(&site, &labels, &w1);
        let s3 = model.score(&site, &labels, &w3);
        assert!(s1.publication > s3.publication);
    }

    #[test]
    fn modes_use_their_component_only() {
        let site = flat_site();
        let labels = x_of(&site, &["NAME1", "NAME2"]);
        let x = x_of(&site, &["NAME1", "NAME2", "NAME3"]);
        let model = business_model();
        let full = model.score(&site, &labels, &x);
        let l_only = model
            .with_mode(RankingMode::AnnotationOnly)
            .score(&site, &labels, &x);
        let x_only = model
            .with_mode(RankingMode::PublicationOnly)
            .score(&site, &labels, &x);
        assert_eq!(l_only.total, full.annotation);
        assert_eq!(x_only.total, full.publication);
        assert!((full.total - (full.annotation + full.publication)).abs() < 1e-12);
    }

    #[test]
    fn empty_extraction_scores_poorly() {
        let site = flat_site();
        let labels = x_of(&site, &["NAME1", "NAME2"]);
        let empty = NodeSet::new();
        let names = x_of(&site, &["NAME1", "NAME2", "NAME3"]);
        let model = business_model();
        let ranked = model.rank(&site, &labels, [&empty, &names]);
        assert_eq!(ranked[0].0, 1);
    }

    #[test]
    fn mode_names() {
        assert_eq!(RankingMode::Full.name(), "NTW");
        assert_eq!(RankingMode::AnnotationOnly.name(), "NTW-L");
        assert_eq!(RankingMode::PublicationOnly.name(), "NTW-X");
    }

    #[test]
    fn rank_is_deterministic_on_ties() {
        let site = flat_site();
        let labels = x_of(&site, &["NAME1"]);
        let x = x_of(&site, &["NAME1"]);
        let model = business_model();
        let ranked = model.rank(&site, &labels, [&x, &x, &x]);
        let order: Vec<usize> = ranked.iter().map(|(i, _)| *i).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }
}
