//! # aw-rank — the ranking model of §6
//!
//! Scores every enumerated wrapper by `P(L | X) · P(X)` (Equation 1):
//!
//! * [`annotation`] — the noisy-annotation likelihood `P(L | X)`
//!   (Equation 4), parameterized by the annotator's `(p, r)`;
//! * [`segmentation`] — record segmentation by pre-order traversal between
//!   consecutive extraction boundaries (Figure 7);
//! * [`publication`] — the list-goodness prior `P(X)` from the schema-size
//!   and alignment features with KDE-learned distributions (§6.1);
//! * [`scorer`] — the combined model plus the NTW-L / NTW-X ablation
//!   variants of §7.3.
//!
//! Applications normally reach this crate through `aw_core::Engine`
//! (`engine.rank`, `engine.learn_sites`); the batch entry points here
//! ([`score_xpath_space`], [`score_xpath_spaces`],
//! [`sharded_extractions`]) are the engine's substrate and remain public
//! for custom pipelines.

pub mod annotation;
pub mod batch;
pub mod publication;
pub mod scorer;
pub mod segmentation;

pub use annotation::{estimate_from_counts, AnnotatorModel};
pub use batch::{
    batch_extractions, rank_xpath_space, score_xpath_space, score_xpath_spaces,
    sharded_extractions, SiteSpace,
};
pub use publication::{
    list_features, list_features_pinned, KernelOverride, ListFeatures, PublicationModel,
};
pub use scorer::{RankingMode, RankingModel, WrapperScore};
pub use segmentation::{segment_site, segment_site_typed, Segment, TEXT_TOKEN};
