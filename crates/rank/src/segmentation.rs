//! Record segmentation — Figure 7 and §6.
//!
//! To judge how "list-like" a candidate extraction `X` is, the pages are
//! viewed as pre-order token sequences (tag names, with every text node
//! replaced by the special token `#text`), and the elements of `X` are
//! used as record boundaries: segment *i* runs from the *i*-th X node
//! (inclusive) to the *(i+1)*-th (exclusive) within the same page. Segments
//! may be cyclically shifted relative to true records — harmless, since
//! only their mutual structural similarity matters.

use aw_dom::{Document, NodeKind, PageNode};
use aw_induct::{NodeSet, Site};

/// The pre-order token of a node; text nodes collapse to `#text`.
pub const TEXT_TOKEN: &str = "#text";

/// One record segment: the pre-order token sequence between two
/// consecutive extraction boundaries, with the positions of boundary-type
/// nodes marked (used by the multi-type alignment constraint).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Pre-order tokens, starting with the boundary `#text` node.
    pub tokens: Vec<String>,
    /// For each token, `Some(type_index)` if the corresponding node is an
    /// extraction of that type (0 for single-type segmentation).
    pub pins: Vec<Option<u32>>,
}

impl Segment {
    /// Number of `#text` tokens in the segment.
    pub fn text_count(&self) -> usize {
        self.tokens.iter().filter(|t| *t == TEXT_TOKEN).count()
    }

    /// Segment length in tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when the segment has no tokens (never produced by
    /// [`segment_site`]).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// Pre-order token stream of one page, with node identities.
fn page_tokens(doc: &Document) -> Vec<(aw_dom::NodeId, String)> {
    doc.preorder_all()
        .filter_map(|id| match &doc.node(id).kind {
            NodeKind::Element(e) => Some((id, e.tag.clone())),
            NodeKind::Text(_) => Some((id, TEXT_TOKEN.to_string())),
            _ => None,
        })
        .collect()
}

/// Segments every page of `site` using `x` as record boundaries
/// (single-type: all boundary pins are 0).
///
/// Pages with fewer than two boundary nodes contribute no segments.
pub fn segment_site(site: &Site, x: &NodeSet) -> Vec<Segment> {
    segment_site_typed(site, std::slice::from_ref(x))
}

/// Multi-type segmentation (Appendix A): `typed[t]` is the extraction of
/// type `t`. Boundaries are the nodes of type 0; every typed node inside a
/// segment is pinned with its type index so the alignment feature can
/// require same-type nodes to align.
pub fn segment_site_typed(site: &Site, typed: &[NodeSet]) -> Vec<Segment> {
    assert!(!typed.is_empty(), "at least one type required");
    let boundary = &typed[0];
    let mut segments = Vec::new();

    for p in 0..site.page_count() as u32 {
        let doc = site.page(p);
        let tokens = page_tokens(doc);
        // Indices in the token stream that are boundary nodes.
        let marks: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, (id, _))| boundary.contains(&PageNode::new(p, *id)))
            .map(|(i, _)| i)
            .collect();
        for w in marks.windows(2) {
            let (from, to) = (w[0], w[1]);
            let mut seg = Segment {
                tokens: Vec::with_capacity(to - from),
                pins: Vec::with_capacity(to - from),
            };
            for (id, tok) in &tokens[from..to] {
                let pn = PageNode::new(p, *id);
                let pin = typed
                    .iter()
                    .position(|set| set.contains(&pn))
                    .map(|t| t as u32);
                seg.tokens.push(tok.clone());
                seg.pins.push(pin);
            }
            segments.push(seg);
        }
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the §6 example: a flat list a1 n1 z1 p1 a2 n2 z2 p2 …
    /// rendered as <li> items so tokens are predictable.
    fn flat_site() -> Site {
        Site::from_html(&["<ul>\
             <li>addr1</li><li>NAME1</li><li>zip1</li><li>ph1</li>\
             <li>addr2</li><li>NAME2</li><li>zip2</li><li>ph2</li>\
             <li>addr3</li><li>NAME3</li><li>zip3</li><li>ph3</li>\
             </ul>"])
    }

    fn names(site: &Site) -> NodeSet {
        ["NAME1", "NAME2", "NAME3"]
            .iter()
            .flat_map(|t| site.find_text(t))
            .collect()
    }

    #[test]
    fn shifted_segments_have_equal_structure() {
        // §6: segments are cyclically shifted (n1 z1 p1 a2), (n2 z2 p2 a3)
        // but structurally identical.
        let site = flat_site();
        let segs = segment_site(&site, &names(&site));
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].tokens, segs[1].tokens);
        // Each segment: #text(name) </li><li>#text ×3 → 4 text tokens.
        assert_eq!(segs[0].text_count(), 4);
        assert_eq!(segs[0].tokens[0], TEXT_TOKEN);
        assert!(!segs[0].is_empty());
    }

    #[test]
    fn bad_list_has_irregular_segments() {
        // Boundaries at name and zip alternate: gaps of different shape.
        let site = flat_site();
        let x: NodeSet = ["NAME1", "zip1", "NAME2", "zip2"]
            .iter()
            .flat_map(|t| site.find_text(t))
            .collect();
        let segs = segment_site(&site, &x);
        assert_eq!(segs.len(), 3);
        // name→zip segment is shorter than zip→name segment.
        let lens: Vec<usize> = segs.iter().map(Segment::len).collect();
        assert!(lens[0] != lens[1] || lens[1] != lens[2], "{lens:?}");
    }

    #[test]
    fn single_boundary_pages_contribute_nothing() {
        let site = flat_site();
        let x: NodeSet = site.find_text("NAME2").into_iter().collect();
        assert!(segment_site(&site, &x).is_empty());
        assert!(segment_site(&site, &NodeSet::new()).is_empty());
    }

    #[test]
    fn segments_do_not_cross_pages() {
        let site = Site::from_html(&[
            "<li>A1</li><li>x</li><li>A2</li>",
            "<li>B1</li><li>x</li><li>B2</li>",
        ]);
        let x: NodeSet = ["A1", "A2", "B1", "B2"]
            .iter()
            .flat_map(|t| site.find_text(t))
            .collect();
        let segs = segment_site(&site, &x);
        // One segment per page (A1→A2, B1→B2); no A2→B1 segment.
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].tokens, segs[1].tokens);
    }

    #[test]
    fn typed_segmentation_pins_types() {
        let site = flat_site();
        let names = names(&site);
        let zips: NodeSet = ["zip1", "zip2", "zip3"]
            .iter()
            .flat_map(|t| site.find_text(t))
            .collect();
        let segs = segment_site_typed(&site, &[names, zips]);
        assert_eq!(segs.len(), 2);
        let seg = &segs[0];
        // First token is the name boundary (pin 0); somewhere inside, the
        // zip is pinned 1; plain text (addr, phone) is unpinned.
        assert_eq!(seg.pins[0], Some(0));
        assert!(seg.pins.contains(&Some(1)));
        let unpinned_text = seg
            .tokens
            .iter()
            .zip(&seg.pins)
            .filter(|(t, p)| *t == TEXT_TOKEN && p.is_none())
            .count();
        assert_eq!(unpinned_text, 2); // phone + next record's address
    }
}
