//! The web-publication model — `P(X)` of §6 and §6.1.
//!
//! Two domain-independent features are computed on the record segments of
//! a candidate list `X`:
//!
//! 1. **Schema size** — the number of `#text` tokens in the longest common
//!    substring between pairs of segments (≈ attributes present in every
//!    record). Aggregated as the median over sampled pairs.
//! 2. **Alignment** — the maximum pairwise edit distance between segments
//!    (0 for a perfectly repeating list).
//!
//! Their value distributions are domain-specific and learned by kernel
//! density estimation from sample sites (§6.1); `P(X)` is the product of
//! the two feature probabilities.

use crate::segmentation::Segment;
use aw_align::{edit_distance, edit_distance_pinned, longest_common_substring, KernelDensity};

/// Cap on the number of segments examined pairwise; larger segment lists
/// are down-sampled evenly (deterministically).
pub const MAX_SEGMENTS_FOR_PAIRS: usize = 24;

/// The two feature values of one candidate list on one site.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ListFeatures {
    /// Median over pairs of the text-node count of the pairwise longest
    /// common substring.
    pub schema_size: f64,
    /// Maximum pairwise edit distance.
    pub alignment: f64,
}

/// Computes the features of a segment list; `None` if fewer than two
/// segments exist (single-entity lists have no repeating structure to
/// measure — Appendix B.2).
pub fn list_features(segments: &[Segment]) -> Option<ListFeatures> {
    list_features_pinned(segments, 1)
}

/// As [`list_features`] but with the multi-type alignment constraint
/// (Appendix A): nodes of each type must align with each other.
/// `pin_indel_cost` is the penalty for dropping a typed node (use 1 for
/// single-type, where pins are all equal anyway).
pub fn list_features_pinned(segments: &[Segment], pin_indel_cost: usize) -> Option<ListFeatures> {
    if segments.len() < 2 {
        return None;
    }
    let sampled = sample_segments(segments);
    let mut schema_sizes: Vec<f64> = Vec::new();
    let mut max_align = 0.0f64;
    for i in 0..sampled.len() {
        for j in (i + 1)..sampled.len() {
            let (a, b) = (sampled[i], sampled[j]);
            let range = longest_common_substring(&a.tokens, &b.tokens);
            let texts = a.tokens[range]
                .iter()
                .filter(|t| *t == crate::segmentation::TEXT_TOKEN)
                .count();
            schema_sizes.push(texts as f64);
            let d = if pin_indel_cost <= 1 && all_same_pin(a) && all_same_pin(b) {
                edit_distance(&a.tokens, &b.tokens)
            } else {
                edit_distance_pinned(&a.tokens, &b.tokens, &a.pins, &b.pins, pin_indel_cost)
            };
            max_align = max_align.max(d as f64);
        }
    }
    Some(ListFeatures {
        schema_size: aw_align::stats::median(&schema_sizes),
        alignment: max_align,
    })
}

fn all_same_pin(seg: &Segment) -> bool {
    // Single-type segments have pins ∈ {None, Some(0)}; the pinned edit
    // distance would forbid aligning the boundary #text with an inner
    // #text, which is the desired constraint — but for speed we use the
    // plain distance when every pin pattern is the trivial single-type one.
    seg.pins.iter().all(|p| p.is_none() || *p == Some(0))
}

/// Evenly down-samples long segment lists so pairwise work stays bounded.
fn sample_segments(segments: &[Segment]) -> Vec<&Segment> {
    if segments.len() <= MAX_SEGMENTS_FOR_PAIRS {
        return segments.iter().collect();
    }
    let stride = segments.len() as f64 / MAX_SEGMENTS_FOR_PAIRS as f64;
    (0..MAX_SEGMENTS_FOR_PAIRS)
        .map(|i| &segments[(i as f64 * stride) as usize])
        .collect()
}

/// Which feature kernels participate in `P(X)` — an ablation hook for
/// the feature-level analysis (finer than the paper's NTW-X).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum KernelOverride {
    /// Both features (the paper's model).
    #[default]
    None,
    /// Drop the schema-size kernel.
    IgnoreSchema,
    /// Drop the alignment kernel.
    IgnoreAlignment,
}

/// The learned publication model: KDE distributions of the two features.
#[derive(Clone, Debug)]
pub struct PublicationModel {
    /// Density of schema sizes observed on (gold) training lists.
    pub schema: KernelDensity,
    /// Density of alignment values observed on training lists.
    pub alignment: KernelDensity,
    /// Log-probability assigned when a candidate has no measurable
    /// features (fewer than two segments).
    pub featureless_log_prob: f64,
    /// Feature-kernel ablation (default: use both).
    pub kernel_override: KernelOverride,
}

impl PublicationModel {
    /// Learns the model from per-site gold features (§6.1: "we take a
    /// small sample of websites, look at the list of segments on each
    /// website and learn the distribution").
    pub fn learn(samples: &[ListFeatures]) -> Self {
        assert!(
            !samples.is_empty(),
            "publication model needs training features"
        );
        let schema: Vec<f64> = samples.iter().map(|f| f.schema_size).collect();
        let align: Vec<f64> = samples.iter().map(|f| f.alignment).collect();
        PublicationModel {
            schema: KernelDensity::fit(&schema),
            alignment: KernelDensity::fit(&align),
            featureless_log_prob: -40.0,
            kernel_override: KernelOverride::None,
        }
    }

    /// `log P(X)` for a candidate with the given features.
    pub fn log_prob(&self, features: Option<ListFeatures>) -> f64 {
        match features {
            Some(f) => {
                let schema = match self.kernel_override {
                    KernelOverride::IgnoreSchema => 0.0,
                    _ => self.schema.log_density(f.schema_size),
                };
                let align = match self.kernel_override {
                    KernelOverride::IgnoreAlignment => 0.0,
                    _ => self.alignment.log_density(f.alignment),
                };
                schema + align
            }
            None => self.featureless_log_prob,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segmentation::segment_site;
    use aw_induct::{NodeSet, Site};

    fn flat_site() -> Site {
        Site::from_html(&["<ul>\
             <li>addr1</li><li>NAME1</li><li>zip1</li><li>ph1</li>\
             <li>addr2</li><li>NAME2</li><li>zip2</li><li>ph2</li>\
             <li>addr3</li><li>NAME3</li><li>zip3</li><li>ph3</li>\
             </ul>"])
    }

    fn x_of(site: &Site, texts: &[&str]) -> NodeSet {
        texts.iter().flat_map(|t| site.find_text(t)).collect()
    }

    #[test]
    fn good_list_features_match_section_3() {
        // X1 = names only: schema size 4 (name, addr, zip, phone per
        // record), perfect alignment.
        let site = flat_site();
        let segs = segment_site(&site, &x_of(&site, &["NAME1", "NAME2", "NAME3"]));
        let f = list_features(&segs).unwrap();
        assert_eq!(f.schema_size, 4.0);
        assert_eq!(f.alignment, 0.0);
    }

    #[test]
    fn all_text_list_has_schema_size_one() {
        // X3 = every cell: each "record" is a single cell → schema size 1,
        // still perfectly aligned (§3).
        let site = flat_site();
        let all: NodeSet = site.text_nodes().iter().copied().collect();
        let segs = segment_site(&site, &all);
        let f = list_features(&segs).unwrap();
        assert_eq!(f.schema_size, 1.0);
        assert_eq!(f.alignment, 0.0);
    }

    #[test]
    fn irregular_list_has_positive_alignment() {
        // X2-style: names and zips as boundaries → alternating gap sizes.
        let site = flat_site();
        let segs = segment_site(
            &site,
            &x_of(&site, &["NAME1", "zip1", "NAME2", "zip2", "NAME3", "zip3"]),
        );
        let f = list_features(&segs).unwrap();
        assert!(f.alignment > 0.0, "{f:?}");
    }

    #[test]
    fn featureless_when_single_segment() {
        let site = flat_site();
        let segs = segment_site(&site, &x_of(&site, &["NAME1", "NAME2"]));
        assert_eq!(segs.len(), 1);
        assert!(list_features(&segs).is_none());
    }

    #[test]
    fn model_prefers_gold_like_lists() {
        // Train on schema≈4 / align≈0; the good list must out-score both
        // the schema-1 list and an irregular list.
        let site = flat_site();
        let train = vec![
            ListFeatures {
                schema_size: 4.0,
                alignment: 0.0,
            },
            ListFeatures {
                schema_size: 4.0,
                alignment: 1.0,
            },
            ListFeatures {
                schema_size: 3.0,
                alignment: 0.0,
            },
        ];
        let model = PublicationModel::learn(&train);

        let good = list_features(&segment_site(
            &site,
            &x_of(&site, &["NAME1", "NAME2", "NAME3"]),
        ))
        .unwrap();
        let all: NodeSet = site.text_nodes().iter().copied().collect();
        let schema1 = list_features(&segment_site(&site, &all)).unwrap();
        let irregular = list_features(&segment_site(
            &site,
            &x_of(&site, &["NAME1", "zip1", "NAME2", "zip2", "NAME3", "zip3"]),
        ))
        .unwrap();

        let g = model.log_prob(Some(good));
        let s1 = model.log_prob(Some(schema1));
        let irr = model.log_prob(Some(irregular));
        assert!(g > s1, "good {g} vs schema-1 {s1}");
        assert!(g > irr, "good {g} vs irregular {irr}");
        assert!(g > model.log_prob(None));
    }

    #[test]
    fn sampling_caps_pairwise_work() {
        let seg = Segment {
            tokens: vec!["li".into(), "#text".into()],
            pins: vec![None, Some(0)],
        };
        let many: Vec<Segment> = (0..500).map(|_| seg.clone()).collect();
        let f = list_features(&many).unwrap();
        assert_eq!(f.alignment, 0.0);
        assert_eq!(f.schema_size, 1.0);
    }

    #[test]
    #[should_panic(expected = "training features")]
    fn empty_training_panics() {
        let _ = PublicationModel::learn(&[]);
    }
}
