//! Batch scoring of xpath candidate sets.
//!
//! Ranking a wrapper space means computing each candidate's extraction
//! over every page of the site, then scoring it (Equation 1). When the
//! candidates are xpaths of the fragment — the `W(L)` that `aw-enum`
//! produces for the XPATH language — their extractions share step
//! prefixes, so this module evaluates the whole set through one
//! [`BatchEvaluator`] per site instead of `|W|` independent evaluations
//! per page.

use crate::scorer::{RankingModel, WrapperScore};
use aw_dom::PageNode;
use aw_induct::{NodeSet, Site};
use aw_xpath::{BatchEvaluator, XPath};

/// The extraction of every candidate xpath over every page of `site`.
///
/// Result is aligned with `paths`; each `NodeSet` is the union over
/// pages, in the same form the inductors produce (so scores computed on
/// it are directly comparable to inductor-produced wrappers).
pub fn batch_extractions(site: &Site, paths: &[XPath]) -> Vec<NodeSet> {
    let batch = BatchEvaluator::from_xpaths(paths.iter());
    let mut out: Vec<NodeSet> = vec![NodeSet::new(); paths.len()];
    for p in 0..site.page_count() as u32 {
        for (i, nodes) in batch.evaluate(site.page(p)).into_iter().enumerate() {
            out[i].extend(nodes.into_iter().map(|id| PageNode::new(p, id)));
        }
    }
    out
}

/// Scores every candidate xpath of a wrapper space in one pass:
/// shared-prefix batch evaluation over the site's pages, then Equation 1
/// per candidate. Returns `(extraction, score)` aligned with `paths`.
pub fn score_xpath_space(
    model: &RankingModel,
    site: &Site,
    labels: &NodeSet,
    paths: &[XPath],
) -> Vec<(NodeSet, WrapperScore)> {
    batch_extractions(site, paths)
        .into_iter()
        .map(|x| {
            let score = model.score(site, labels, &x);
            (x, score)
        })
        .collect()
}

/// Ranks candidate xpaths best-first (deterministic tie-break on input
/// order), analogous to [`RankingModel::rank`] but driven by the batch
/// engine.
pub fn rank_xpath_space(
    model: &RankingModel,
    site: &Site,
    labels: &NodeSet,
    paths: &[XPath],
) -> Vec<(usize, NodeSet, WrapperScore)> {
    let mut scored: Vec<(usize, NodeSet, WrapperScore)> =
        score_xpath_space(model, site, labels, paths)
            .into_iter()
            .enumerate()
            .map(|(i, (x, s))| (i, x, s))
            .collect();
    scored.sort_by(|a, b| {
        b.2.total
            .partial_cmp(&a.2.total)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::AnnotatorModel;
    use crate::publication::{ListFeatures, PublicationModel};
    use aw_xpath::parse_xpath;

    fn dealer_site() -> Site {
        Site::from_html(&[
            "<div class='list'>\
               <tr><td><u>ALPHA FURNITURE</u><br>1 Elm St.<br>CITY, ST 38701</td></tr>\
               <tr><td><u>BETA HOME</u><br>2 Oak St.<br>TOWN, ST 38702</td></tr>\
             </div><div class='footer'>contact us</div>",
            "<div class='list'>\
               <tr><td><u>GAMMA DECOR</u><br>3 Fir St.<br>VILLE, ST 38703</td></tr>\
             </div><div class='footer'>contact us</div>",
        ])
    }

    fn model() -> RankingModel {
        RankingModel::new(
            AnnotatorModel::new(0.93, 0.5),
            PublicationModel::learn(&[
                ListFeatures {
                    schema_size: 4.0,
                    alignment: 0.0,
                },
                ListFeatures {
                    schema_size: 4.0,
                    alignment: 1.0,
                },
            ]),
        )
    }

    fn space() -> Vec<XPath> {
        [
            "//div[@class='list']/tr/td/u/text()",
            "//div[@class='list']/tr/td//text()",
            "//div//text()",
            "//text()",
        ]
        .iter()
        .map(|s| parse_xpath(s).unwrap())
        .collect()
    }

    #[test]
    fn batch_extractions_match_per_path_evaluation() {
        let site = dealer_site();
        let paths = space();
        let batched = batch_extractions(&site, &paths);
        for (path, got) in paths.iter().zip(&batched) {
            let solo: NodeSet = (0..site.page_count() as u32)
                .flat_map(|p| {
                    aw_xpath::reference::evaluate(path, site.page(p))
                        .into_iter()
                        .map(move |id| PageNode::new(p, id))
                })
                .collect();
            assert_eq!(got, &solo, "mismatch for {path}");
        }
    }

    #[test]
    fn batch_ranking_agrees_with_direct_scorer() {
        let site = dealer_site();
        let paths = space();
        // Labels: the three names (clean annotator).
        let labels: NodeSet = ["ALPHA FURNITURE", "BETA HOME", "GAMMA DECOR"]
            .iter()
            .flat_map(|t| site.find_text(t))
            .collect();
        let m = model();
        // Scores are identical to the per-candidate scorer path...
        let scored = score_xpath_space(&m, &site, &labels, &paths);
        for (x, s) in &scored {
            let direct = m.score(&site, &labels, x);
            assert!((s.total - direct.total).abs() < 1e-12);
        }
        // ...and the batch ranking equals `RankingModel::rank` over the
        // same extractions.
        let extractions: Vec<NodeSet> = scored.iter().map(|(x, _)| x.clone()).collect();
        let direct_rank = m.rank(&site, &labels, extractions.iter());
        let batch_rank = rank_xpath_space(&m, &site, &labels, &paths);
        assert_eq!(
            direct_rank.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            batch_rank.iter().map(|(i, _, _)| *i).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_space_is_fine() {
        let site = dealer_site();
        assert!(batch_extractions(&site, &[]).is_empty());
        assert!(rank_xpath_space(&model(), &site, &NodeSet::new(), &[]).is_empty());
    }
}
