//! Batch scoring of xpath candidate sets.
//!
//! Ranking a wrapper space means computing each candidate's extraction
//! over every page of the site, then scoring it (Equation 1). When the
//! candidates are xpaths of the fragment — the `W(L)` that `aw-enum`
//! produces for the XPATH language — their extractions share step
//! prefixes, so this module evaluates the whole set through one
//! [`BatchEvaluator`] per site instead of `|W|` independent evaluations
//! per page.

use crate::scorer::{RankingModel, WrapperScore};
use aw_dom::{Document, PageNode};
use aw_induct::{NodeSet, Site};
use aw_pool::Executor;
use aw_xpath::{BatchEvaluator, CompiledXPath, ShardedBatch, XPath};

/// The extraction of every candidate xpath over every page of `site`.
///
/// Result is aligned with `paths`; each `NodeSet` is the union over
/// pages, in the same form the inductors produce (so scores computed on
/// it are directly comparable to inductor-produced wrappers).
pub fn batch_extractions(site: &Site, paths: &[XPath]) -> Vec<NodeSet> {
    let batch = BatchEvaluator::from_xpaths(paths.iter());
    let mut out: Vec<NodeSet> = vec![NodeSet::new(); paths.len()];
    for p in 0..site.page_count() as u32 {
        for (i, nodes) in batch.evaluate(site.page(p)).into_iter().enumerate() {
            out[i].extend(nodes.into_iter().map(|id| PageNode::new(p, id)));
        }
    }
    out
}

/// The extraction of every site's candidate space over **that site's
/// own pages**, site-sharded and page-parallel.
///
/// One trie per site (prefix sharing is strongest within a site's
/// space); all `(site, page)` pairs are driven through the shared
/// work-stealing `exec`, so the output is deterministic regardless of
/// thread count and the call nests cleanly inside site-parallel loops
/// on the same executor. With `cache` on, each shard keeps a cross-page
/// [`aw_xpath::TemplateCache`], replaying bare traversals across pages
/// that share a template fingerprint (results are byte-identical either
/// way). `out[s]` is aligned with `spaces[s].1`, each `NodeSet` the
/// union over site `s`'s pages — exactly [`batch_extractions`] of that
/// site alone.
pub fn sharded_extractions(
    spaces: &[(&Site, &[XPath])],
    exec: &Executor,
    cache: bool,
) -> Vec<Vec<NodeSet>> {
    // Global slots are site-major: site s's paths occupy
    // offsets[s] .. offsets[s] + paths_s.
    let mut offsets = Vec::with_capacity(spaces.len());
    let mut tagged: Vec<(usize, CompiledXPath)> = Vec::new();
    for (s, (_, paths)) in spaces.iter().enumerate() {
        offsets.push(tagged.len());
        tagged.extend(paths.iter().map(|p| (s, CompiledXPath::compile(p))));
    }
    let batch = ShardedBatch::new(tagged).with_cache(cache);

    let pages: Vec<(usize, u32, &Document)> = spaces
        .iter()
        .enumerate()
        .flat_map(|(s, (site, _))| (0..site.page_count() as u32).map(move |p| (s, p, site.page(p))))
        .collect();
    let per_page = exec.map(&pages, |&(key, _, doc)| batch.evaluate_page(key, doc));

    let mut out: Vec<Vec<NodeSet>> = spaces
        .iter()
        .map(|(_, paths)| vec![NodeSet::new(); paths.len()])
        .collect();
    for (&(s, p, _), results) in pages.iter().zip(per_page) {
        for (slot, nodes) in results {
            // A page's results only name its own shard's slots.
            let local = slot as usize - offsets[s];
            out[s][local].extend(nodes.into_iter().map(|id| PageNode::new(p, id)));
        }
    }
    out
}

/// One site's candidate space for multi-site sharded scoring.
#[derive(Clone, Copy)]
pub struct SiteSpace<'a> {
    /// The site the space was enumerated on.
    pub site: &'a Site,
    /// The (noisy) labels the space is scored against.
    pub labels: &'a NodeSet,
    /// The candidate xpaths of the site's wrapper space.
    pub paths: &'a [XPath],
}

/// Scores many sites' candidate spaces in one site-sharded,
/// page-parallel pass: per-site tries for extraction (template-cached
/// when `cache` is on), then Equation 1 per candidate (also through the
/// executor). `out[s]` is aligned with `spaces[s].paths` and identical
/// to [`score_xpath_space`] run on site `s` alone.
pub fn score_xpath_spaces(
    model: &RankingModel,
    spaces: &[SiteSpace<'_>],
    exec: &Executor,
    cache: bool,
) -> Vec<Vec<(NodeSet, WrapperScore)>> {
    let groups: Vec<(&Site, &[XPath])> = spaces.iter().map(|s| (s.site, s.paths)).collect();
    let extractions = sharded_extractions(&groups, exec, cache);

    // Score site-major through the executor as well (Equation 1 walks
    // every extracted node; for big spaces it rivals extraction cost).
    let tasks: Vec<(usize, NodeSet)> = extractions
        .into_iter()
        .enumerate()
        .flat_map(|(s, xs)| xs.into_iter().map(move |x| (s, x)))
        .collect();
    let scores = exec.map(&tasks, |(s, x)| {
        model.score(spaces[*s].site, spaces[*s].labels, x)
    });

    let mut out: Vec<Vec<(NodeSet, WrapperScore)>> = spaces.iter().map(|_| Vec::new()).collect();
    for ((s, x), score) in tasks.into_iter().zip(scores) {
        out[s].push((x, score));
    }
    out
}

/// Scores every candidate xpath of a wrapper space in one pass:
/// shared-prefix batch evaluation over the site's pages, then Equation 1
/// per candidate. Returns `(extraction, score)` aligned with `paths`.
pub fn score_xpath_space(
    model: &RankingModel,
    site: &Site,
    labels: &NodeSet,
    paths: &[XPath],
) -> Vec<(NodeSet, WrapperScore)> {
    batch_extractions(site, paths)
        .into_iter()
        .map(|x| {
            let score = model.score(site, labels, &x);
            (x, score)
        })
        .collect()
}

/// Ranks candidate xpaths best-first (deterministic tie-break on input
/// order), analogous to [`RankingModel::rank`] but driven by the batch
/// engine.
pub fn rank_xpath_space(
    model: &RankingModel,
    site: &Site,
    labels: &NodeSet,
    paths: &[XPath],
) -> Vec<(usize, NodeSet, WrapperScore)> {
    let mut scored: Vec<(usize, NodeSet, WrapperScore)> =
        score_xpath_space(model, site, labels, paths)
            .into_iter()
            .enumerate()
            .map(|(i, (x, s))| (i, x, s))
            .collect();
    scored.sort_by(|a, b| {
        b.2.total
            .partial_cmp(&a.2.total)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::AnnotatorModel;
    use crate::publication::{ListFeatures, PublicationModel};
    use aw_xpath::parse_xpath;

    fn dealer_site() -> Site {
        Site::from_html(&[
            "<div class='list'>\
               <tr><td><u>ALPHA FURNITURE</u><br>1 Elm St.<br>CITY, ST 38701</td></tr>\
               <tr><td><u>BETA HOME</u><br>2 Oak St.<br>TOWN, ST 38702</td></tr>\
             </div><div class='footer'>contact us</div>",
            "<div class='list'>\
               <tr><td><u>GAMMA DECOR</u><br>3 Fir St.<br>VILLE, ST 38703</td></tr>\
             </div><div class='footer'>contact us</div>",
        ])
    }

    fn model() -> RankingModel {
        RankingModel::new(
            AnnotatorModel::new(0.93, 0.5),
            PublicationModel::learn(&[
                ListFeatures {
                    schema_size: 4.0,
                    alignment: 0.0,
                },
                ListFeatures {
                    schema_size: 4.0,
                    alignment: 1.0,
                },
            ]),
        )
    }

    fn space() -> Vec<XPath> {
        [
            "//div[@class='list']/tr/td/u/text()",
            "//div[@class='list']/tr/td//text()",
            "//div//text()",
            "//text()",
        ]
        .iter()
        .map(|s| parse_xpath(s).unwrap())
        .collect()
    }

    #[test]
    fn batch_extractions_match_per_path_evaluation() {
        let site = dealer_site();
        let paths = space();
        let batched = batch_extractions(&site, &paths);
        for (path, got) in paths.iter().zip(&batched) {
            let solo: NodeSet = (0..site.page_count() as u32)
                .flat_map(|p| {
                    aw_xpath::reference::evaluate(path, site.page(p))
                        .into_iter()
                        .map(move |id| PageNode::new(p, id))
                })
                .collect();
            assert_eq!(got, &solo, "mismatch for {path}");
        }
    }

    #[test]
    fn batch_ranking_agrees_with_direct_scorer() {
        let site = dealer_site();
        let paths = space();
        // Labels: the three names (clean annotator).
        let labels: NodeSet = ["ALPHA FURNITURE", "BETA HOME", "GAMMA DECOR"]
            .iter()
            .flat_map(|t| site.find_text(t))
            .collect();
        let m = model();
        // Scores are identical to the per-candidate scorer path...
        let scored = score_xpath_space(&m, &site, &labels, &paths);
        for (x, s) in &scored {
            let direct = m.score(&site, &labels, x);
            assert!((s.total - direct.total).abs() < 1e-12);
        }
        // ...and the batch ranking equals `RankingModel::rank` over the
        // same extractions.
        let extractions: Vec<NodeSet> = scored.iter().map(|(x, _)| x.clone()).collect();
        let direct_rank = m.rank(&site, &labels, extractions.iter());
        let batch_rank = rank_xpath_space(&m, &site, &labels, &paths);
        assert_eq!(
            direct_rank.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            batch_rank.iter().map(|(i, _, _)| *i).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_space_is_fine() {
        let site = dealer_site();
        assert!(batch_extractions(&site, &[]).is_empty());
        assert!(rank_xpath_space(&model(), &site, &NodeSet::new(), &[]).is_empty());
    }

    fn stores_site() -> Site {
        Site::from_html(&[
            "<table class='stores'><tr><td><b>OMEGA</b></td><td>9 Elm</td></tr>\
             <tr><td><b>SIGMA</b></td><td>7 Oak</td></tr></table>",
            "<table class='stores'><tr><td><b>KAPPA</b></td><td>4 Fir</td></tr></table>",
        ])
    }

    fn stores_space() -> Vec<XPath> {
        [
            "//table[@class='stores']/tr/td/b/text()",
            "//table[@class='stores']/tr/td[1]/b/text()",
            "//table//text()",
        ]
        .iter()
        .map(|s| aw_xpath::parse_xpath(s).unwrap())
        .collect()
    }

    #[test]
    fn sharded_extractions_match_per_site_batch() {
        let a = dealer_site();
        let b = stores_site();
        let pa = space();
        let pb = stores_space();
        for threads in [1, 2, 4] {
            let exec = Executor::new(threads);
            for cache in [false, true] {
                let sharded =
                    sharded_extractions(&[(&a, pa.as_slice()), (&b, pb.as_slice())], &exec, cache);
                assert_eq!(sharded.len(), 2);
                assert_eq!(
                    sharded[0],
                    batch_extractions(&a, &pa),
                    "threads {threads}, cache {cache}"
                );
                assert_eq!(
                    sharded[1],
                    batch_extractions(&b, &pb),
                    "threads {threads}, cache {cache}"
                );
            }
        }
    }

    #[test]
    fn sharded_scoring_matches_single_site_scoring() {
        let a = dealer_site();
        let b = stores_site();
        let pa = space();
        let pb = stores_space();
        let labels_a: NodeSet = ["ALPHA FURNITURE", "BETA HOME", "GAMMA DECOR"]
            .iter()
            .flat_map(|t| a.find_text(t))
            .collect();
        let labels_b: NodeSet = ["OMEGA", "SIGMA", "KAPPA"]
            .iter()
            .flat_map(|t| b.find_text(t))
            .collect();
        let m = model();
        let sharded = score_xpath_spaces(
            &m,
            &[
                SiteSpace {
                    site: &a,
                    labels: &labels_a,
                    paths: &pa,
                },
                SiteSpace {
                    site: &b,
                    labels: &labels_b,
                    paths: &pb,
                },
            ],
            &Executor::new(3),
            true,
        );
        let solo_a = score_xpath_space(&m, &a, &labels_a, &pa);
        let solo_b = score_xpath_space(&m, &b, &labels_b, &pb);
        for (got, want) in [(&sharded[0], &solo_a), (&sharded[1], &solo_b)] {
            assert_eq!(got.len(), want.len());
            for ((gx, gs), (wx, ws)) in got.iter().zip(want.iter()) {
                assert_eq!(gx, wx);
                assert!((gs.total - ws.total).abs() < 1e-12);
            }
        }
    }
}
