//! The annotation model — `P(L | X)` of §6, Equation (4).
//!
//! An annotator is characterized by `(p, r)`: every node of the true list
//! `X` enters the label set `L` with probability `r`; every node outside
//! `X` enters with probability `1 − p`. After discarding the
//! wrapper-invariant factors (the derivation above Eq. 4):
//!
//! ```text
//! P(L | X) ∝ (r / (1−p))^|L∩X| · ((1−r) / p)^|X∖L|
//! ```
//!
//! which we evaluate in log space.

/// Annotator characteristics. Not exactly precision/recall — see §6: `r`
/// is the recall, while `p` relates to (but is not) the precision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnnotatorModel {
    /// Probability that a non-list node is *not* labeled.
    pub p: f64,
    /// Probability that a list node is labeled (the recall).
    pub r: f64,
}

impl AnnotatorModel {
    /// Creates a model, clamping both parameters into `(0.005, 0.995)` so
    /// the log-odds stay finite.
    pub fn new(p: f64, r: f64) -> Self {
        AnnotatorModel {
            p: clamp(p),
            r: clamp(r),
        }
    }

    /// `ln(r / (1−p))`: the log-reward for each label the wrapper covers.
    pub fn hit_log_odds(&self) -> f64 {
        (self.r / (1.0 - self.p)).ln()
    }

    /// `ln((1−r) / p)`: the log-penalty for each extracted node that is
    /// not labeled (negative whenever `1 − r < p`, i.e. for any useful
    /// annotator).
    pub fn miss_log_odds(&self) -> f64 {
        ((1.0 - self.r) / self.p).ln()
    }

    /// `log P(L | X)` up to the wrapper-invariant constant, given the two
    /// sufficient statistics: `|L ∩ X|` and `|X \ L|`.
    pub fn log_likelihood(&self, hits: usize, unlabeled_extracted: usize) -> f64 {
        hits as f64 * self.hit_log_odds() + unlabeled_extracted as f64 * self.miss_log_odds()
    }

    /// True when `1 − p > r`, i.e. the annotator labels wrong nodes more
    /// often than right ones; §6 notes the output should be flipped then.
    pub fn is_adversarial(&self) -> bool {
        1.0 - self.p > self.r
    }
}

fn clamp(x: f64) -> f64 {
    x.clamp(0.005, 0.995)
}

/// Estimates `(p, r)` empirically from gold data: `gold` is the number of
/// true-list nodes, `non_gold` the number of remaining nodes, `tp` the
/// number of labeled gold nodes and `fp` the number of labeled non-gold
/// nodes. (How the harness learns annotator parameters from the training
/// half of a dataset, §7.)
pub fn estimate_from_counts(gold: usize, non_gold: usize, tp: usize, fp: usize) -> AnnotatorModel {
    let r = if gold == 0 {
        0.5
    } else {
        tp as f64 / gold as f64
    };
    let p = if non_gold == 0 {
        0.995
    } else {
        1.0 - fp as f64 / non_gold as f64
    };
    AnnotatorModel::new(p, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_coverage_maximizes_score() {
        // §6: assuming 1−p < r, Eq. (4) is maximized when X = L.
        let m = AnnotatorModel::new(0.95, 0.24);
        // X = L with 10 labels.
        let exact = m.log_likelihood(10, 0);
        // X ⊃ L with 5 extra nodes.
        let over = m.log_likelihood(10, 5);
        // X ⊂ L covering 7 labels.
        let under = m.log_likelihood(7, 0);
        assert!(exact > over);
        assert!(exact > under);
    }

    #[test]
    fn table_walkthrough_of_section_3() {
        // §3's w1/w2/w3 discussion: with low error probability, covering
        // more labels scores higher *on the annotation term alone*.
        // 5 labels total; X1 = column (3 hits, 2 extracted-unlabeled),
        // X2 = two columns (4 hits, 6 unlabeled), X3 = table (5 hits, 15).
        let m = AnnotatorModel::new(0.9, 0.6);
        let x1 = m.log_likelihood(3, 2);
        let x2 = m.log_likelihood(4, 6);
        let x3 = m.log_likelihood(5, 15);
        // With a high-recall annotator, the unlabeled-extracted penalty is
        // strong, so the table does NOT automatically win.
        assert!(x1 > x3, "x1={x1} x3={x3}");
        let _ = x2;
    }

    #[test]
    fn high_recall_annotator_penalizes_overextraction_harder() {
        let low_recall = AnnotatorModel::new(0.95, 0.24);
        let high_recall = AnnotatorModel::new(0.95, 0.9);
        // Penalty per unlabeled extracted node:
        assert!(high_recall.miss_log_odds() < low_recall.miss_log_odds());
    }

    #[test]
    fn adversarial_detection() {
        assert!(AnnotatorModel::new(0.3, 0.5).is_adversarial()); // 0.7 > 0.5
        assert!(!AnnotatorModel::new(0.95, 0.24).is_adversarial());
    }

    #[test]
    fn clamping_keeps_logs_finite() {
        let m = AnnotatorModel::new(1.0, 0.0);
        assert!(m.hit_log_odds().is_finite());
        assert!(m.miss_log_odds().is_finite());
        let m2 = AnnotatorModel::new(0.0, 1.0);
        assert!(m2.hit_log_odds().is_finite());
        assert!(m2.miss_log_odds().is_finite());
    }

    #[test]
    fn estimation_from_gold_counts() {
        // 100 gold nodes, 24 labeled; 1000 non-gold, 50 falsely labeled.
        let m = estimate_from_counts(100, 1000, 24, 50);
        assert!((m.r - 0.24).abs() < 1e-9);
        assert!((m.p - 0.95).abs() < 1e-9);
        // Degenerate denominators fall back to priors.
        let d = estimate_from_counts(0, 0, 0, 0);
        assert_eq!(d.r, 0.5);
        assert!(d.p > 0.99);
    }

    #[test]
    fn zero_counts_score_zero() {
        let m = AnnotatorModel::new(0.9, 0.5);
        assert_eq!(m.log_likelihood(0, 0), 0.0);
    }
}
