//! The controlled synthetic annotator of §7.4.
//!
//! "It takes the set of correct nodes as input. For each correct node, it
//! annotates it with probability p₁. Also, for each incorrect node, it
//! annotates it with probability p₂." Expected recall is p₁; expected
//! precision is `n₁p₁ / (n₁p₁ + n₂p₂)`, so any (precision, recall)
//! operating point can be dialed in — the mechanism behind Table 1.

use aw_induct::{NodeSet, Site};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The controlled annotator.
#[derive(Clone, Debug)]
pub struct SyntheticAnnotator {
    /// Probability of labeling each correct node.
    pub p1: f64,
    /// Probability of labeling each incorrect node.
    pub p2: f64,
    seed: u64,
}

impl SyntheticAnnotator {
    /// Creates the annotator; `seed` makes runs reproducible.
    pub fn new(p1: f64, p2: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p1), "p1 must be a probability");
        assert!((0.0..=1.0).contains(&p2), "p2 must be a probability");
        SyntheticAnnotator { p1, p2, seed }
    }

    /// Computes `(p1, p2)` hitting a target (precision, recall) given the
    /// correct/incorrect node counts — the inversion used to build
    /// Table 1's (p, r) grid.
    pub fn for_target(
        precision: f64,
        recall: f64,
        n_correct: usize,
        n_incorrect: usize,
        seed: u64,
    ) -> Self {
        assert!(precision > 0.0 && precision <= 1.0);
        let p1 = recall.clamp(0.0, 1.0);
        // precision = n1·p1 / (n1·p1 + n2·p2)  ⇒  p2 = n1·p1·(1−prec) / (prec·n2)
        let p2 = if n_incorrect == 0 {
            0.0
        } else {
            (n_correct as f64 * p1 * (1.0 - precision) / (precision * n_incorrect as f64))
                .clamp(0.0, 1.0)
        };
        SyntheticAnnotator::new(p1, p2, seed)
    }

    /// Annotates a site given the gold (correct) node set.
    pub fn annotate(&self, site: &Site, gold: &NodeSet) -> NodeSet {
        let mut rng = StdRng::seed_from_u64(self.seed);
        site.text_nodes()
            .iter()
            .copied()
            .filter(|n| {
                let p = if gold.contains(n) { self.p1 } else { self.p2 };
                rng.gen_bool(p)
            })
            .collect()
    }

    /// Expected precision for the given gold/non-gold counts.
    pub fn expected_precision(&self, n_correct: usize, n_incorrect: usize) -> f64 {
        let tp = n_correct as f64 * self.p1;
        let fp = n_incorrect as f64 * self.p2;
        if tp + fp == 0.0 {
            1.0
        } else {
            tp / (tp + fp)
        }
    }

    /// Expected recall (= p₁).
    pub fn expected_recall(&self) -> f64 {
        self.p1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big_site() -> (Site, NodeSet) {
        // 40 list items per page, 10 pages; gold = every 4th item.
        let page: String = (0..40)
            .map(|i| format!("<li>item {i}</li>"))
            .collect::<String>();
        let pages: Vec<String> = (0..10).map(|_| page.clone()).collect();
        let site = Site::from_html(&pages);
        let gold: NodeSet = site
            .text_nodes()
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| i % 4 == 0)
            .map(|(_, n)| n)
            .collect();
        (site, gold)
    }

    #[test]
    fn perfect_annotator() {
        let (site, gold) = big_site();
        let a = SyntheticAnnotator::new(1.0, 0.0, 7);
        assert_eq!(a.annotate(&site, &gold), gold);
        assert_eq!(a.expected_recall(), 1.0);
        assert_eq!(a.expected_precision(100, 300), 1.0);
    }

    #[test]
    fn silent_annotator() {
        let (site, gold) = big_site();
        let a = SyntheticAnnotator::new(0.0, 0.0, 7);
        assert!(a.annotate(&site, &gold).is_empty());
        assert_eq!(a.expected_precision(0, 0), 1.0);
    }

    #[test]
    fn empirical_rates_near_expectation() {
        let (site, gold) = big_site(); // 100 gold, 300 non-gold
        let a = SyntheticAnnotator::new(0.5, 0.1, 42);
        let labels = a.annotate(&site, &gold);
        let tp = labels.iter().filter(|n| gold.contains(n)).count() as f64;
        let fp = labels.len() as f64 - tp;
        let recall = tp / gold.len() as f64;
        assert!((recall - 0.5).abs() < 0.15, "recall={recall}");
        let fp_rate = fp / 300.0;
        assert!((fp_rate - 0.1).abs() < 0.08, "fp_rate={fp_rate}");
    }

    #[test]
    fn deterministic_under_same_seed() {
        let (site, gold) = big_site();
        let a = SyntheticAnnotator::new(0.3, 0.05, 99);
        assert_eq!(a.annotate(&site, &gold), a.annotate(&site, &gold));
        let b = SyntheticAnnotator::new(0.3, 0.05, 100);
        assert_ne!(a.annotate(&site, &gold), b.annotate(&site, &gold));
    }

    #[test]
    fn target_inversion_hits_operating_point() {
        // Target precision 0.5, recall 0.2 on 100 gold / 300 non-gold.
        let a = SyntheticAnnotator::for_target(0.5, 0.2, 100, 300, 1);
        assert!((a.expected_recall() - 0.2).abs() < 1e-12);
        assert!((a.expected_precision(100, 300) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn target_inversion_saturates_p2() {
        // Impossible target (precision too low for the node balance):
        // p2 clamps at 1.0.
        let a = SyntheticAnnotator::for_target(0.01, 1.0, 1000, 10, 1);
        assert_eq!(a.p2, 1.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_probability() {
        let _ = SyntheticAnnotator::new(1.5, 0.0, 0);
    }
}
