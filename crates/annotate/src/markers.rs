//! Marker-word annotator — the paper's second §1 example of cheap
//! automatic annotation: "we can identify certain names containing words
//! like '.Inc' and 'Shop' to most likely be business names."
//!
//! Labels a text node when it contains one of the marker words as a
//! token, optionally bounded by a maximum node length (long paragraphs
//! mentioning "shop" are prose, not names).

use aw_induct::{NodeSet, Site};

/// Default business-name markers, after §1.
pub const BUSINESS_MARKERS: &[&str] = &[
    "inc.",
    "inc",
    "co.",
    "llc",
    "ltd",
    "bros.",
    "shop",
    "store",
    "furniture",
    "depot",
    "warehouse",
    "gallery",
    "outlet",
    "emporium",
    "& sons",
];

/// A marker-word annotator.
#[derive(Clone, Debug)]
pub struct MarkerAnnotator {
    markers: Vec<String>,
    /// Nodes longer than this many words are never labeled.
    max_words: usize,
}

impl MarkerAnnotator {
    /// Builds an annotator from marker words (case-insensitive).
    pub fn new<S: AsRef<str>>(markers: impl IntoIterator<Item = S>) -> Self {
        MarkerAnnotator {
            markers: markers
                .into_iter()
                .map(|m| m.as_ref().to_lowercase())
                .filter(|m| !m.is_empty())
                .collect(),
            max_words: 6,
        }
    }

    /// The default business-name annotator of §1.
    pub fn business() -> Self {
        Self::new(BUSINESS_MARKERS)
    }

    /// Overrides the node-length bound (in words).
    pub fn with_max_words(mut self, max_words: usize) -> Self {
        self.max_words = max_words;
        self
    }

    /// Does this annotator label the given text?
    pub fn matches(&self, text: &str) -> bool {
        let lower = text.to_lowercase();
        let words: Vec<&str> = lower.split_whitespace().collect();
        if words.is_empty() || words.len() > self.max_words {
            return false;
        }
        self.markers.iter().any(|m| {
            if m.contains(' ') {
                lower.contains(m.as_str())
            } else {
                words
                    .iter()
                    .any(|w| w.trim_matches(|c: char| !c.is_alphanumeric() && c != '.') == m)
            }
        })
    }

    /// Labels every matching text node of a site.
    pub fn annotate(&self, site: &Site) -> NodeSet {
        site.text_nodes()
            .iter()
            .copied()
            .filter(|&n| site.text_of(n).is_some_and(|t| self.matches(t)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_marker_words() {
        let a = MarkerAnnotator::business();
        assert!(a.matches("PORTER FURNITURE"));
        assert!(a.matches("Acme Trading Co."));
        assert!(a.matches("WIDGETS INC."));
        assert!(a.matches("The Lamp Shop"));
        assert!(!a.matches("201 HWY. 30 WEST"));
        assert!(!a.matches("NEW ALBANY, MS 38652"));
    }

    #[test]
    fn long_prose_is_ignored() {
        let a = MarkerAnnotator::business();
        assert!(!a.matches(
            "Visit our furniture shop for the best deals on tables and chairs this season"
        ));
        let relaxed = MarkerAnnotator::business().with_max_words(50);
        assert!(relaxed.matches(
            "Visit our furniture shop for the best deals on tables and chairs this season"
        ));
    }

    #[test]
    fn word_boundaries_respected() {
        let a = MarkerAnnotator::new(["shop"]);
        assert!(a.matches("Main Street Shop"));
        assert!(!a.matches("photoshop tutorials"), "substring inside a word");
        assert!(a.matches("Shop, established 1912"), "punctuation trimmed");
    }

    #[test]
    fn multiword_markers_use_containment() {
        let a = MarkerAnnotator::new(["& sons"]);
        assert!(a.matches("MILLER & SONS"));
        assert!(!a.matches("MILLER & DAUGHTERS"));
    }

    #[test]
    fn annotates_site_with_partial_recall_and_noise() {
        // Names with markers get labeled; names without markers are
        // missed (recall < 1); a promo sentence short enough slips in
        // (precision < 1) — the §1 noise profile.
        let site = Site::from_html(&["<li>PORTER FURNITURE</li><li>ZENITH LIGHTS</li>\
             <li>12 Elm St</li><li>Gift Shop Open</li>"]);
        let a = MarkerAnnotator::business();
        let labels = a.annotate(&site);
        let texts: Vec<&str> = labels.iter().map(|&n| site.text_of(n).unwrap()).collect();
        assert!(texts.contains(&"PORTER FURNITURE"));
        assert!(!texts.contains(&"ZENITH LIGHTS"), "no marker → missed");
        assert!(!texts.contains(&"12 Elm St"));
        assert!(texts.contains(&"Gift Shop Open"), "marker noise");
    }

    #[test]
    fn empty_markers_label_nothing() {
        let a = MarkerAnnotator::new(Vec::<String>::new());
        assert!(!a.matches("anything at all"));
    }
}
