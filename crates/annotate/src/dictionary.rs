//! Dictionary-based annotators (§1, §7).
//!
//! The DEALERS annotator labels "a text node if it contains an exact
//! mention of a business name from our database"; the DISC annotator looks
//! for exact track names. Two matching modes cover both:
//!
//! * [`MatchMode::Exact`] — the node's whole (trimmed) text equals a
//!   dictionary entry;
//! * [`MatchMode::Contains`] — a dictionary entry occurs inside the node's
//!   text as a token-aligned substring (this is what produces the paper's
//!   characteristic false positives: "business names matching street
//!   addresses and product descriptions").

use aw_dom::PageNode;
use std::collections::HashSet;

/// How dictionary entries are matched against text nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchMode {
    /// Whole-node equality (after ASCII case folding and trimming).
    Exact,
    /// Entry appears as a word-boundary-aligned substring of the node.
    Contains,
}

/// A dictionary annotator for one type.
#[derive(Clone, Debug)]
pub struct DictionaryAnnotator {
    entries: HashSet<String>,
    mode: MatchMode,
}

impl DictionaryAnnotator {
    /// Builds an annotator from dictionary entries (case-insensitive).
    pub fn new<S: AsRef<str>>(entries: impl IntoIterator<Item = S>, mode: MatchMode) -> Self {
        DictionaryAnnotator {
            entries: entries
                .into_iter()
                .map(|s| normalize(s.as_ref()))
                .filter(|s| !s.is_empty())
                .collect(),
            mode,
        }
    }

    /// Number of dictionary entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Does this annotator label the given text?
    pub fn matches(&self, text: &str) -> bool {
        let norm = normalize(text);
        if norm.is_empty() {
            return false;
        }
        match self.mode {
            MatchMode::Exact => self.entries.contains(&norm),
            MatchMode::Contains => {
                if self.entries.contains(&norm) {
                    return true;
                }
                // Check every word-aligned window; dictionary entries are
                // typically 1–5 words, so bound the window size.
                let words: Vec<&str> = norm.split(' ').collect();
                for start in 0..words.len() {
                    for end in (start + 1)..=(start + 5).min(words.len()) {
                        if self.entries.contains(&words[start..end].join(" ")) {
                            return true;
                        }
                    }
                }
                false
            }
        }
    }

    /// Labels every matching text node of a site.
    pub fn annotate(&self, site: &aw_induct::Site) -> aw_induct::NodeSet {
        site.text_nodes()
            .iter()
            .copied()
            .filter(|&n| site.text_of(n).is_some_and(|t| self.matches(t)))
            .collect()
    }
}

/// Case folding + whitespace normalization + punctuation-trimming used for
/// dictionary keys and node text alike.
fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut in_ws = true;
    for c in s.chars() {
        if c.is_whitespace() {
            if !in_ws {
                out.push(' ');
                in_ws = true;
            }
        } else {
            for lc in c.to_lowercase() {
                out.push(lc);
            }
            in_ws = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// A PageNode set convenience used in tests and docs.
pub type Labels = std::collections::BTreeSet<PageNode>;

#[cfg(test)]
mod tests {
    use super::*;
    use aw_induct::Site;

    #[test]
    fn exact_matching() {
        let d = DictionaryAnnotator::new(["Office Depot", "BestBuy"], MatchMode::Exact);
        assert!(d.matches("office depot"));
        assert!(d.matches("  Office   DEPOT  "));
        assert!(!d.matches("Office Depot Inc"));
        assert!(!d.matches(""));
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    fn contains_matching_produces_paper_false_positives() {
        let d = DictionaryAnnotator::new(["Main Street"], MatchMode::Contains);
        // A street address containing a business-like phrase is labeled —
        // exactly the DEALERS noise source.
        assert!(d.matches("123 Main Street Suite 4"));
        assert!(!d.matches("123 Main Ave"));
    }

    #[test]
    fn contains_is_word_aligned() {
        let d = DictionaryAnnotator::new(["ACE"], MatchMode::Contains);
        assert!(d.matches("visit ACE today"));
        assert!(
            !d.matches("PLACES to go"),
            "substring inside a word must not match"
        );
    }

    #[test]
    fn annotates_site_nodes() {
        let site = Site::from_html(&[
            "<li>Office Depot</li><li>42 Elm St</li>",
            "<li>BestBuy</li><li>Office Depot</li>",
        ]);
        let d = DictionaryAnnotator::new(["Office Depot", "BestBuy"], MatchMode::Exact);
        let labels = d.annotate(&site);
        assert_eq!(labels.len(), 3);
        for n in &labels {
            let t = site.text_of(*n).unwrap();
            assert!(t == "Office Depot" || t == "BestBuy");
        }
    }

    #[test]
    fn empty_dictionary_annotates_nothing() {
        let site = Site::from_html(&["<li>anything</li>"]);
        let d = DictionaryAnnotator::new(Vec::<String>::new(), MatchMode::Contains);
        assert!(d.annotate(&site).is_empty());
        assert!(d.is_empty());
    }

    #[test]
    fn normalization() {
        assert_eq!(normalize("  A  B\tC "), "a b c");
        assert_eq!(normalize(""), "");
    }
}
