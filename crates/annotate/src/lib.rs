//! # aw-annotate — automatic annotators
//!
//! The cheap, noisy label sources that replace site-level human supervision
//! (§1, §7, Appendix A):
//!
//! * [`DictionaryAnnotator`] — exact or containment matches against a
//!   dictionary (business names, track titles, product models);
//! * [`zipcode`] — the five-digit US zipcode matcher of Appendix A;
//! * [`SyntheticAnnotator`] — the controlled `(p₁, p₂)` annotator of §7.4
//!   that dials in any precision/recall operating point (Table 1);
//! * [`MarkerAnnotator`] — the ".Inc"/"Shop" marker-word heuristic from
//!   the §1 introduction.

pub mod dictionary;
pub mod markers;
pub mod synthetic;
pub mod zipcode;

pub use dictionary::{DictionaryAnnotator, MatchMode};
pub use markers::{MarkerAnnotator, BUSINESS_MARKERS};
pub use synthetic::SyntheticAnnotator;
pub use zipcode::{annotate_zipcodes, contains_zipcode, find_zipcodes};
