//! The zipcode annotator (Appendix A): "a regular expression identifying
//! five-digit US zipcodes".
//!
//! Implemented as a hand-rolled scanner (no regex crate in the sanctioned
//! dependency set): a match is a run of exactly five ASCII digits with no
//! adjacent digit. Matching a text node means *containing* such a run —
//! which, as the paper notes, also fires on "five-digit street addresses,
//! as well as text from page headers/footers": that noise is the point.

use aw_induct::{NodeSet, Site};

/// Returns true if `text` contains a standalone five-digit run.
pub fn contains_zipcode(text: &str) -> bool {
    find_zipcodes(text).next().is_some()
}

/// Iterator over the (start, end) byte ranges of standalone five-digit
/// runs in `text`.
pub fn find_zipcodes(text: &str) -> impl Iterator<Item = (usize, usize)> + '_ {
    let bytes = text.as_bytes();
    let mut i = 0;
    std::iter::from_fn(move || {
        while i < bytes.len() {
            if bytes[i].is_ascii_digit() {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let len = i - start;
                // A 5-digit run is a zip; "38652-1234" stops at the hyphen
                // so ZIP+4 works too. A bare 9-digit run is ZIP+4 without
                // the hyphen: accept its prefix.
                if len == 5 || len == 9 {
                    return Some((start, start + 5));
                }
            } else {
                i += 1;
            }
        }
        None
    })
}

/// The zipcode annotator over a site: labels text nodes containing a
/// five-digit run.
pub fn annotate_zipcodes(site: &Site) -> NodeSet {
    site.text_nodes()
        .iter()
        .copied()
        .filter(|&n| site.text_of(n).is_some_and(contains_zipcode))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_plain_zipcodes() {
        assert!(contains_zipcode("NEW ALBANY, MS 38652"));
        assert!(contains_zipcode("38652"));
        assert!(contains_zipcode("zip: 90210."));
    }

    #[test]
    fn rejects_wrong_lengths() {
        assert!(!contains_zipcode("1234"));
        assert!(!contains_zipcode("123456"));
        assert!(!contains_zipcode("phone 662-534-3672"));
        assert!(!contains_zipcode("no digits at all"));
        assert!(!contains_zipcode(""));
    }

    #[test]
    fn zip_plus_four() {
        assert!(contains_zipcode("38652-1234"));
        let ranges: Vec<_> = find_zipcodes("38652-1234").collect();
        assert_eq!(ranges[0], (0, 5));
    }

    #[test]
    fn accepts_false_positive_street_numbers() {
        // The noise source named in Appendix A: five-digit street numbers.
        assert!(contains_zipcode("10001 Sunset Blvd"));
    }

    #[test]
    fn multiple_matches() {
        let ranges: Vec<_> = find_zipcodes("94403 and 95128").collect();
        assert_eq!(ranges, vec![(0, 5), (10, 15)]);
    }

    #[test]
    fn annotates_site() {
        let site = aw_induct::Site::from_html(&[
            "<li>ACME</li><li>SAN MATEO, CA 94403</li><li>(650) 349-3414</li>",
        ]);
        let labels = annotate_zipcodes(&site);
        assert_eq!(labels.len(), 1);
        let t = site.text_of(*labels.iter().next().unwrap()).unwrap();
        assert!(t.contains("94403"));
    }
}
