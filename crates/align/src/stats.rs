//! Small statistics helpers shared by the ranking model and the
//! evaluation harness.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Median (average of middle two for even lengths); 0.0 for empty input.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in stats input"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Population standard deviation; 0.0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Maximum of a float slice; `None` when empty.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn std_dev_basic() {
        assert_eq!(std_dev(&[5.0]), 0.0);
        let sd = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((sd - 2.0).abs() < 1e-9);
    }

    #[test]
    fn max_basic() {
        assert_eq!(max(&[1.0, 3.0, 2.0]), Some(3.0));
        assert_eq!(max(&[]), None);
    }
}
