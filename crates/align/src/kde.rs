//! Kernel density estimation for discrete-valued ranking features.
//!
//! §6.1: "since both schema size and alignment are discrete valued features,
//! we use the kernel density methods that learn a smooth distribution from
//! finite data samples." We use a Gaussian kernel with Silverman's
//! rule-of-thumb bandwidth, plus a small uniform floor so unseen values
//! never get probability zero (log-space ranking needs finite scores).

/// A one-dimensional Gaussian kernel density estimate.
#[derive(Clone, Debug)]
pub struct KernelDensity {
    samples: Vec<f64>,
    bandwidth: f64,
    /// Probability floor mixed in uniformly.
    floor: f64,
}

impl KernelDensity {
    /// Fits a KDE to `samples` with Silverman bandwidth.
    ///
    /// # Panics
    /// Panics if `samples` is empty.
    pub fn fit(samples: &[f64]) -> Self {
        Self::fit_with_floor(samples, 1e-6)
    }

    /// Fits with an explicit probability floor (mixed uniformly into every
    /// density query).
    pub fn fit_with_floor(samples: &[f64], floor: f64) -> Self {
        assert!(!samples.is_empty(), "KDE requires at least one sample");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let sd = var.sqrt();
        // Silverman's rule of thumb; clamp so discrete spikes stay smooth.
        let bandwidth = (1.06 * sd * n.powf(-0.2)).max(0.5);
        KernelDensity {
            samples: samples.to_vec(),
            bandwidth,
            floor,
        }
    }

    /// Bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Number of fitted samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were fitted (unreachable via `fit`).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Density estimate at `x` (with the uniform floor mixed in).
    pub fn density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / ((2.0 * std::f64::consts::PI).sqrt() * h);
        let sum: f64 = self
            .samples
            .iter()
            .map(|&s| {
                let z = (x - s) / h;
                norm * (-0.5 * z * z).exp()
            })
            .sum();
        (sum / self.samples.len() as f64) + self.floor
    }

    /// Natural log of [`KernelDensity::density`].
    pub fn log_density(&self, x: f64) -> f64 {
        self.density(x).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_peaks_at_samples() {
        let kde = KernelDensity::fit(&[4.0, 4.0, 4.0, 5.0, 4.0]);
        assert!(kde.density(4.0) > kde.density(8.0));
        assert!(kde.density(4.0) > kde.density(1.0));
    }

    #[test]
    fn density_is_positive_everywhere() {
        let kde = KernelDensity::fit(&[2.0]);
        for x in [-100.0, 0.0, 2.0, 50.0, 1e6] {
            assert!(kde.density(x) > 0.0, "density({x}) must be positive");
            assert!(kde.log_density(x).is_finite());
        }
    }

    #[test]
    fn roughly_integrates_to_one() {
        let kde = KernelDensity::fit_with_floor(&[0.0, 1.0, 2.0, 3.0], 0.0);
        let mut integral = 0.0;
        let step = 0.01;
        let mut x = -10.0;
        while x < 13.0 {
            integral += kde.density(x) * step;
            x += step;
        }
        assert!((integral - 1.0).abs() < 0.01, "integral = {integral}");
    }

    #[test]
    fn identical_samples_get_min_bandwidth() {
        let kde = KernelDensity::fit(&[3.0; 10]);
        assert_eq!(kde.bandwidth(), 0.5);
        assert!(kde.density(3.0) > kde.density(5.0));
    }

    #[test]
    fn bandwidth_grows_with_spread() {
        let tight = KernelDensity::fit(&[1.0, 1.1, 0.9, 1.0, 1.05]);
        let wide = KernelDensity::fit(&[0.0, 10.0, 20.0, 30.0, 40.0]);
        assert!(wide.bandwidth() > tight.bandwidth());
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_fit_panics() {
        let _ = KernelDensity::fit(&[]);
    }

    #[test]
    fn len_reported() {
        let kde = KernelDensity::fit(&[1.0, 2.0]);
        assert_eq!(kde.len(), 2);
        assert!(!kde.is_empty());
    }
}
