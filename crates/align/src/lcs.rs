//! Longest-common-substring and -subsequence over generic item slices.
//!
//! The publication model's *schema size* feature (§6.1) is "the number of
//! text nodes in the longest common substring between pairs of segments",
//! where segments are tag sequences — so the algorithms here are generic
//! over any `Eq` item type, not just bytes.

/// Length of the longest common (contiguous) substring of `a` and `b`.
///
/// Classic dynamic program, O(|a|·|b|) time, O(min) space.
pub fn longest_common_substring_len<T: Eq>(a: &[T], b: &[T]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    // Keep the shorter sequence as the DP row.
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut prev = vec![0usize; short.len() + 1];
    let mut cur = vec![0usize; short.len() + 1];
    let mut best = 0;
    for item in long {
        for (j, s) in short.iter().enumerate() {
            cur[j + 1] = if item == s { prev[j] + 1 } else { 0 };
            best = best.max(cur[j + 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    best
}

/// The longest common (contiguous) substring itself, as a range into `a`.
/// Returns the earliest-in-`a` maximal match.
pub fn longest_common_substring<T: Eq>(a: &[T], b: &[T]) -> std::ops::Range<usize> {
    if a.is_empty() || b.is_empty() {
        return 0..0;
    }
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    let mut best = 0;
    let mut best_end = 0; // exclusive end in `a`
    for (i, item) in a.iter().enumerate() {
        for (j, s) in b.iter().enumerate() {
            cur[j + 1] = if item == s { prev[j] + 1 } else { 0 };
            if cur[j + 1] > best {
                best = cur[j + 1];
                best_end = i + 1;
            }
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    best_end - best..best_end
}

/// Length of the longest common subsequence (non-contiguous) of `a` and `b`.
pub fn longest_common_subsequence_len<T: Eq>(a: &[T], b: &[T]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for item in a {
        for (j, s) in b.iter().enumerate() {
            cur[j + 1] = if item == s {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substring_basic() {
        let a: Vec<char> = "xabcdey".chars().collect();
        let b: Vec<char> = "zabcdew".chars().collect();
        assert_eq!(longest_common_substring_len(&a, &b), 5);
        let r = longest_common_substring(&a, &b);
        assert_eq!(&a[r], &['a', 'b', 'c', 'd', 'e']);
    }

    #[test]
    fn substring_no_overlap() {
        let a = [1, 2, 3];
        let b = [4, 5, 6];
        assert_eq!(longest_common_substring_len(&a, &b), 0);
        assert_eq!(longest_common_substring(&a, &b), 0..0);
    }

    #[test]
    fn substring_empty_inputs() {
        let a: [u8; 0] = [];
        assert_eq!(longest_common_substring_len(&a, b"abc"), 0);
        assert_eq!(longest_common_substring_len(b"abc", &a), 0);
    }

    #[test]
    fn substring_identical() {
        let a = b"hello";
        assert_eq!(longest_common_substring_len(a, a), 5);
        assert_eq!(longest_common_substring(a, a), 0..5);
    }

    #[test]
    fn substring_asymmetric_lengths() {
        let a = b"x";
        let b = b"yyyyxzzzz";
        assert_eq!(longest_common_substring_len(a, b), 1);
        assert_eq!(longest_common_substring_len(b, a), 1);
    }

    #[test]
    fn subsequence_basic() {
        let a: Vec<char> = "abcde".chars().collect();
        let b: Vec<char> = "axcxe".chars().collect();
        assert_eq!(longest_common_subsequence_len(&a, &b), 3); // a,c,e
    }

    #[test]
    fn subsequence_vs_substring() {
        let a: Vec<char> = "abab".chars().collect();
        let b: Vec<char> = "baba".chars().collect();
        assert_eq!(longest_common_subsequence_len(&a, &b), 3);
        assert_eq!(longest_common_substring_len(&a, &b), 3); // "aba"/"bab"
    }

    #[test]
    fn works_on_tag_sequences() {
        // The actual use: tag-name sequences of record segments.
        let s1 = ["b", "#text", "i", "#text", "br"];
        let s2 = ["b", "#text", "i", "#text", "br"];
        let s3 = ["b", "#text", "br"];
        assert_eq!(longest_common_substring_len(&s1, &s2), 5);
        assert_eq!(longest_common_substring_len(&s1, &s3), 2);
        assert_eq!(longest_common_subsequence_len(&s1, &s3), 3);
    }
}
