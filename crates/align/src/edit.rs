//! Edit distance (Levenshtein) over generic item slices.
//!
//! The publication model's *alignment* feature (§6.1) is "the maximum
//! pairwise edit distance between pairs of segments"; segments are tag
//! sequences, so distance is computed over arbitrary `Eq` items.

/// Levenshtein distance between `a` and `b` (unit costs).
pub fn edit_distance<T: Eq>(a: &[T], b: &[T]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, x) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, y) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(x != y);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Levenshtein distance with an early-exit upper bound: returns `None` when
/// the distance certainly exceeds `bound`. Used to cap the cost of pairwise
/// alignment over long record segments.
pub fn edit_distance_bounded<T: Eq>(a: &[T], b: &[T], bound: usize) -> Option<usize> {
    if a.len().abs_diff(b.len()) > bound {
        return None;
    }
    let d = edit_distance(a, b);
    (d <= bound).then_some(d)
}

/// Edit distance where some positions are *pinned*: a pinned position in `a`
/// may only align to a pinned position in `b` and vice versa. Pinning is
/// how the multi-type ranking (Appendix A) enforces "nodes corresponding to
/// each type align with each other": typed nodes are pinned with the type
/// index, untyped items are free.
///
/// `pa[i]` / `pb[j]` give `Some(type_index)` for pinned items. A
/// substitution between items with different `Some` pins, or between a
/// pinned and an unpinned item, is forbidden (infinite cost); deleting or
/// inserting a pinned item costs `pin_indel_cost` (usually larger than 1)
/// so missing typed fields are penalized.
pub fn edit_distance_pinned<T: Eq>(
    a: &[T],
    b: &[T],
    pa: &[Option<u32>],
    pb: &[Option<u32>],
    pin_indel_cost: usize,
) -> usize {
    assert_eq!(a.len(), pa.len());
    assert_eq!(b.len(), pb.len());
    const INF: usize = usize::MAX / 4;
    let indel = |pin: &Option<u32>| if pin.is_some() { pin_indel_cost } else { 1 };

    let mut prev: Vec<usize> = Vec::with_capacity(b.len() + 1);
    prev.push(0);
    for j in 0..b.len() {
        prev.push(prev[j] + indel(&pb[j]));
    }
    let mut cur = vec![0usize; b.len() + 1];
    for i in 0..a.len() {
        cur[0] = prev[0] + indel(&pa[i]);
        for j in 0..b.len() {
            let sub_allowed = pa[i] == pb[j]; // both None, or same pin
            let sub_cost = if sub_allowed {
                usize::from(a[i] != b[j])
            } else {
                INF
            };
            let sub = prev[j].saturating_add(sub_cost);
            let del = prev[j + 1] + indel(&pa[i]);
            let ins = cur[j] + indel(&pb[j]);
            cur[j + 1] = sub.min(del).min(ins);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_cases() {
        let a: Vec<char> = "kitten".chars().collect();
        let b: Vec<char> = "sitting".chars().collect();
        assert_eq!(edit_distance(&a, &b), 3);
        assert_eq!(edit_distance(&b, &a), 3);
    }

    #[test]
    fn empty_and_identical() {
        let e: [u8; 0] = [];
        assert_eq!(edit_distance(&e, b"abc"), 3);
        assert_eq!(edit_distance(b"abc", &e), 3);
        assert_eq!(edit_distance(b"abc", b"abc"), 0);
        assert_eq!(edit_distance::<u8>(&e, &e), 0);
    }

    #[test]
    fn triangle_inequality_spot_check() {
        let a = b"abcd";
        let b = b"axcd";
        let c = b"axyd";
        assert!(edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c));
    }

    #[test]
    fn bounded_accepts_and_rejects() {
        let a: Vec<char> = "kitten".chars().collect();
        let b: Vec<char> = "sitting".chars().collect();
        assert_eq!(edit_distance_bounded(&a, &b, 3), Some(3));
        assert_eq!(edit_distance_bounded(&a, &b, 2), None);
        // Length-difference fast path.
        assert_eq!(edit_distance_bounded(b"a", b"abcdef", 2), None);
    }

    #[test]
    fn pinned_reduces_to_plain_when_unpinned() {
        let a = b"abcd";
        let b = b"axcd";
        let none = vec![None; 4];
        assert_eq!(
            edit_distance_pinned(a, b, &none, &none, 3),
            edit_distance(a, b)
        );
    }

    #[test]
    fn pinned_forbids_cross_type_alignment() {
        // a = [NAME, x], b = [x, NAME]: the pinned NAMEs cannot swap for
        // free; they must align to each other, costing 2 indels of x.
        let a = ["NAME", "x"];
        let b = ["x", "NAME"];
        let pa = [Some(0), None];
        let pb = [None, Some(0)];
        assert_eq!(edit_distance_pinned(&a, &b, &pa, &pb, 5), 2);
        // Unpinned, the same sequences are distance 2 as well (sub+sub),
        // but with different pins the forced path is insert+delete of 'x'.
        let pa2 = [Some(0), None];
        let pb2 = [None, Some(1)];
        // NAME(0) must be deleted (cost 5) and NAME(1) inserted (cost 5).
        assert_eq!(edit_distance_pinned(&a, &b, &pa2, &pb2, 5), 10);
    }

    #[test]
    fn pinned_missing_field_costs_indel() {
        let a = ["NAME", "t", "ZIP"];
        let b = ["NAME", "t"];
        let pa = [Some(0), None, Some(1)];
        let pb = [Some(0), None];
        assert_eq!(edit_distance_pinned(&a, &b, &pa, &pb, 4), 4);
    }
}
