//! # aw-align — sequence alignment and density estimation
//!
//! Algorithmic substrate for two parts of the VLDB 2011 framework:
//!
//! * the **LR (WIEN) inductor** needs longest common prefixes/suffixes of
//!   label contexts ([`affix`]);
//! * the **web-publication model** (§6.1) needs the longest common
//!   substring between record segments (schema size), pairwise edit
//!   distance (alignment), and kernel density estimation over those
//!   discrete features ([`lcs`], [`edit`], [`kde`]).

pub mod affix;
pub mod edit;
pub mod kde;
pub mod lcs;
pub mod stats;

pub use affix::{common_prefix, common_prefix_len, common_suffix, common_suffix_len};
pub use edit::{edit_distance, edit_distance_bounded, edit_distance_pinned};
pub use kde::KernelDensity;
pub use lcs::{
    longest_common_subsequence_len, longest_common_substring, longest_common_substring_len,
};
