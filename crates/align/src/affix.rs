//! Common prefixes and suffixes of string collections.
//!
//! The LR (WIEN) wrapper language learns, from a set of labeled occurrences,
//! the **longest common string preceding** and **following** each example
//! (§5). Those are exactly the longest common *suffix of the left contexts*
//! and the longest common *prefix of the right contexts*.

/// Longest common prefix of all strings in `items`, as a byte length.
/// Returns the full length of the first item when `items` has one element,
/// and 0 when `items` is empty.
pub fn common_prefix_len<S: AsRef<str>>(items: &[S]) -> usize {
    let mut iter = items.iter();
    let Some(first) = iter.next() else { return 0 };
    let mut prefix = first.as_ref().len();
    for s in iter {
        prefix = prefix.min(mismatch_forward(first.as_ref(), s.as_ref()));
        if prefix == 0 {
            break;
        }
    }
    prefix
}

/// Longest common suffix of all strings in `items`, as a byte length.
pub fn common_suffix_len<S: AsRef<str>>(items: &[S]) -> usize {
    let mut iter = items.iter();
    let Some(first) = iter.next() else { return 0 };
    let mut suffix = first.as_ref().len();
    for s in iter {
        suffix = suffix.min(mismatch_backward(first.as_ref(), s.as_ref()));
        if suffix == 0 {
            break;
        }
    }
    suffix
}

/// Number of equal leading bytes of `a` and `b`, truncated to a char
/// boundary of `a`.
fn mismatch_forward(a: &str, b: &str) -> usize {
    let n = a
        .as_bytes()
        .iter()
        .zip(b.as_bytes())
        .take_while(|(x, y)| x == y)
        .count();
    floor_char_boundary(a, n)
}

/// Number of equal trailing bytes of `a` and `b`, adjusted to a char
/// boundary of `a`.
fn mismatch_backward(a: &str, b: &str) -> usize {
    let n = a
        .as_bytes()
        .iter()
        .rev()
        .zip(b.as_bytes().iter().rev())
        .take_while(|(x, y)| x == y)
        .count();
    // Ensure a.len()-n is a char boundary.
    let mut k = n;
    while k > 0 && !a.is_char_boundary(a.len() - k) {
        k -= 1;
    }
    k
}

fn floor_char_boundary(s: &str, mut i: usize) -> usize {
    i = i.min(s.len());
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

/// The longest common suffix string of the given left-contexts.
pub fn common_suffix<S: AsRef<str>>(items: &[S]) -> String {
    let n = common_suffix_len(items);
    items
        .first()
        .map(|s| {
            let s = s.as_ref();
            s[s.len() - n..].to_string()
        })
        .unwrap_or_default()
}

/// The longest common prefix string of the given right-contexts.
pub fn common_prefix<S: AsRef<str>>(items: &[S]) -> String {
    let n = common_prefix_len(items);
    items
        .first()
        .map(|s| s.as_ref()[..n].to_string())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_basic() {
        assert_eq!(common_prefix(&["<td><u>", "<td><u>", "<td><u>"]), "<td><u>");
        assert_eq!(common_prefix(&["abcx", "abcy", "abcz"]), "abc");
        assert_eq!(common_prefix(&["abc", "xbc"]), "");
    }

    #[test]
    fn suffix_basic() {
        assert_eq!(common_suffix(&["x</u>", "y</u>"]), "</u>");
        assert_eq!(common_suffix(&["abc", "bc", "c"]), "c");
        assert_eq!(common_suffix(&["abc", "abd"]), "");
    }

    #[test]
    fn single_and_empty_collections() {
        assert_eq!(common_prefix(&["hello"]), "hello");
        assert_eq!(common_suffix(&["hello"]), "hello");
        let empty: [&str; 0] = [];
        assert_eq!(common_prefix(&empty), "");
        assert_eq!(common_suffix(&empty), "");
    }

    #[test]
    fn empty_string_member() {
        assert_eq!(common_prefix(&["abc", ""]), "");
        assert_eq!(common_suffix(&["", "abc"]), "");
    }

    #[test]
    fn utf8_boundaries_respected() {
        // 'é' is 2 bytes; make sure we never split it.
        assert_eq!(common_prefix(&["café!", "café?"]), "café");
        assert_eq!(common_suffix(&["1né", "2né"]), "né");
        // Differ in the middle of a multibyte char.
        assert_eq!(common_prefix(&["é", "è"]), ""); // share first byte 0xc3
    }

    #[test]
    fn prefix_of_identical_strings() {
        assert_eq!(common_prefix(&["same", "same"]), "same");
        assert_eq!(common_suffix(&["same", "same"]), "same");
    }
}
