//! # aw-pool — the workspace's parallel execution primitives
//!
//! Two primitives, one contract: apply a function to every item of a
//! slice on all cores, returning outputs **in input order**, bit-for-bit
//! identical at every thread count.
//!
//! * [`Executor`] — a **persistent work-stealing pool** (per-worker
//!   deques, chunked claiming, a shared injector) that nested parallel
//!   loops feed cooperatively. This is what the engine, the xpath
//!   batch/shard layers, rule-set replay and the experiment harness
//!   route through ([`Executor::global`] by default): site-level and
//!   page-level work items interleave in one pool instead of nested
//!   thread teams oversubscribing each other. See the [`executor`]
//!   module docs for the execution model.
//! * [`WorkPool`] — the original single-shot primitive: every `map`
//!   spawns a team of scoped threads that exits before the call returns.
//!   Kept as the zero-state option for flat, one-level loops and as the
//!   simplest possible reference implementation of the ordering
//!   contract; prefer [`Executor`] anywhere two layers might both be
//!   parallel.
//!
//! Shared design notes:
//!
//! * **Chunked claiming** — workers claim *chunks* of consecutive items
//!   from one atomic counter, several chunks per thread, so uneven task
//!   costs (pages differ wildly in size) still balance while touching the
//!   counter `O(chunks)` times instead of `O(items)`.
//! * **Deterministic** — output order never depends on thread count or
//!   scheduling. The `WorkPool` stitches per-thread `(chunk, results)`
//!   pairs back in input order; the `Executor` writes results into a
//!   slot-per-item buffer.
//! * **Thread-count policy** — `auto()` on either primitive honours the
//!   `AW_THREADS` environment variable; invalid values (0, non-numeric)
//!   are rejected with a clear error ([`env_threads`] /
//!   [`parse_threads`] expose the validation for CLI flags).

pub mod executor;

pub use executor::{env_threads, parse_threads, Executor, ThreadsError};

use std::sync::atomic::{AtomicUsize, Ordering};

/// How many chunks each thread gets on average; >1 so uneven per-item
/// costs rebalance, small enough that claiming stays cheap.
const CHUNKS_PER_THREAD: usize = 8;

/// A thread-count policy for order-preserving parallel maps over scoped
/// threads, spawned per call.
///
/// Prefer [`Executor`] for anything that might nest — a `WorkPool::map`
/// inside another parallel loop spawns its own thread team and
/// oversubscribes the machine, which is exactly what the executor's
/// shared deques avoid.
#[derive(Clone, Copy, Debug)]
pub struct WorkPool {
    threads: usize,
}

impl WorkPool {
    /// A pool using all available cores (the `AW_THREADS` environment
    /// variable overrides the count — handy for scaling experiments and
    /// CI determinism runs).
    ///
    /// # Panics
    ///
    /// On an invalid `AW_THREADS` value (0, non-numeric); validate with
    /// [`env_threads`] first to surface the error gracefully.
    pub fn auto() -> WorkPool {
        let threads = env_threads()
            .unwrap_or_else(|e| panic!("{e}"))
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            });
        WorkPool { threads }
    }

    /// A pool with an explicit thread count (clamped to ≥ 1).
    pub fn with_threads(threads: usize) -> WorkPool {
        WorkPool {
            threads: threads.max(1),
        }
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, preserving input order in the output.
    ///
    /// Items are processed in chunks claimed dynamically by `threads`
    /// scoped workers; a panicking `f` is re-raised on the caller with
    /// the first failing worker's payload.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let threads = self.threads.min(items.len());
        if threads <= 1 {
            return items.iter().map(&f).collect();
        }
        let chunk = items.len().div_ceil(threads * CHUNKS_PER_THREAD).max(1);
        let n_chunks = items.len().div_ceil(chunk);
        let next = AtomicUsize::new(0);

        let mut produced: Vec<(usize, Vec<R>)> = Vec::with_capacity(n_chunks);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut mine: Vec<(usize, Vec<R>)> = Vec::new();
                        loop {
                            let c = next.fetch_add(1, Ordering::Relaxed);
                            if c >= n_chunks {
                                break;
                            }
                            let lo = c * chunk;
                            let hi = (lo + chunk).min(items.len());
                            mine.push((c, items[lo..hi].iter().map(&f).collect()));
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(part) => produced.extend(part),
                    // Re-raise the first failing worker's panic (the
                    // scope would re-raise anyway, with a poorer payload).
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
        });

        produced.sort_unstable_by_key(|&(c, _)| c);
        let mut out = Vec::with_capacity(items.len());
        for (_, part) in produced {
            out.extend(part);
        }
        out
    }
}

impl Default for WorkPool {
    fn default() -> Self {
        WorkPool::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..5000).collect();
        let out = WorkPool::auto().map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn identical_across_thread_counts() {
        let items: Vec<u64> = (0..997).collect(); // prime length: ragged chunks
        let expected: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 0xA5).collect();
        for threads in [1, 2, 3, 5, 8, 64] {
            let out = WorkPool::with_threads(threads).map(&items, |&x| x.wrapping_mul(x) ^ 0xA5);
            assert_eq!(out, expected, "thread count {threads}");
        }
    }

    #[test]
    fn uneven_task_sizes_stress() {
        // Task cost varies by four orders of magnitude, with the heavy
        // spikes clustered at the front (the worst case for static
        // splitting): dynamic chunk claiming must still return exact,
        // ordered results.
        let items: Vec<u64> = (0..600)
            .map(|i| if i % 97 == 0 { 40_000 } else { i % 13 })
            .collect();
        let work = |&n: &u64| -> u64 {
            let mut acc = 0u64;
            for k in 0..n {
                acc = acc.wrapping_add(k).rotate_left(1);
            }
            acc
        };
        let expected: Vec<u64> = items.iter().map(work).collect();
        for threads in [2, 4, 7] {
            assert_eq!(
                WorkPool::with_threads(threads).map(&items, work),
                expected,
                "thread count {threads}"
            );
        }
    }

    #[test]
    fn empty_and_single() {
        let out: Vec<u32> = WorkPool::auto().map(&Vec::<u32>::new(), |&x| x);
        assert!(out.is_empty());
        assert_eq!(WorkPool::auto().map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn thread_count_clamps_to_one() {
        let pool = WorkPool::with_threads(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.map(&[1, 2, 3], |&x: &i32| x), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic]
    fn propagates_panics() {
        let items: Vec<u32> = (0..64).collect();
        let _ = WorkPool::with_threads(4).map(&items, |&x| {
            if x == 13 {
                panic!("boom");
            }
            x
        });
    }
}
