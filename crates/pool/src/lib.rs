//! # aw-pool — a chunked work pool on scoped threads
//!
//! The one parallel primitive the workspace needs: apply a function to
//! every item of a slice on all cores, returning outputs **in input
//! order**. Used for page-parallel batch xpath evaluation
//! (`aw_xpath::ShardedBatch`), sharded wrapper-space scoring
//! (`aw_rank::score_xpath_spaces`), rule-set replay over a crawl
//! (`aw_core::LearnedRuleSet::apply_pages`) and the experiment harness
//! (`aw_eval::par_map`).
//!
//! Design notes:
//!
//! * **Chunked claiming** — workers claim *chunks* of consecutive items
//!   from one atomic counter, several chunks per thread, so uneven task
//!   costs (pages differ wildly in size) still balance while touching the
//!   counter `O(chunks)` times instead of `O(items)`.
//! * **Per-thread outputs, stitched in order** — each worker accumulates
//!   `(chunk index, results)` pairs privately and hands them back through
//!   its join handle; the caller sorts by chunk index and flattens.
//!   There is no shared output `Mutex` at all (the previous
//!   implementation locked a `Mutex<Vec<Option<R>>>` once per item).
//! * **Deterministic** — output order never depends on thread count or
//!   scheduling; `WorkPool::with_threads(1)` and
//!   `WorkPool::with_threads(64)` return identical vectors.
//!
//! The pool holds no OS resources: it is a thread-count policy, and every
//! [`WorkPool::map`] call spawns scoped threads that exit before the call
//! returns (panics from the closure are re-raised on the caller).

use std::sync::atomic::{AtomicUsize, Ordering};

/// How many chunks each thread gets on average; >1 so uneven per-item
/// costs rebalance, small enough that claiming stays cheap.
const CHUNKS_PER_THREAD: usize = 8;

/// A thread-count policy for order-preserving parallel maps.
#[derive(Clone, Copy, Debug)]
pub struct WorkPool {
    threads: usize,
}

impl WorkPool {
    /// A pool using all available cores (the `AW_THREADS` environment
    /// variable overrides the count when set to a positive integer —
    /// handy for scaling experiments and CI determinism runs).
    pub fn auto() -> WorkPool {
        let threads = std::env::var("AW_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            });
        WorkPool { threads }
    }

    /// A pool with an explicit thread count (clamped to ≥ 1).
    pub fn with_threads(threads: usize) -> WorkPool {
        WorkPool {
            threads: threads.max(1),
        }
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, preserving input order in the output.
    ///
    /// Items are processed in chunks claimed dynamically by `threads`
    /// scoped workers; a panicking `f` is re-raised on the caller with
    /// the first failing worker's payload.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let threads = self.threads.min(items.len());
        if threads <= 1 {
            return items.iter().map(&f).collect();
        }
        let chunk = items.len().div_ceil(threads * CHUNKS_PER_THREAD).max(1);
        let n_chunks = items.len().div_ceil(chunk);
        let next = AtomicUsize::new(0);

        let mut produced: Vec<(usize, Vec<R>)> = Vec::with_capacity(n_chunks);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut mine: Vec<(usize, Vec<R>)> = Vec::new();
                        loop {
                            let c = next.fetch_add(1, Ordering::Relaxed);
                            if c >= n_chunks {
                                break;
                            }
                            let lo = c * chunk;
                            let hi = (lo + chunk).min(items.len());
                            mine.push((c, items[lo..hi].iter().map(&f).collect()));
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(part) => produced.extend(part),
                    // Re-raise the first failing worker's panic (the
                    // scope would re-raise anyway, with a poorer payload).
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
        });

        produced.sort_unstable_by_key(|&(c, _)| c);
        let mut out = Vec::with_capacity(items.len());
        for (_, part) in produced {
            out.extend(part);
        }
        out
    }
}

impl Default for WorkPool {
    fn default() -> Self {
        WorkPool::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..5000).collect();
        let out = WorkPool::auto().map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn identical_across_thread_counts() {
        let items: Vec<u64> = (0..997).collect(); // prime length: ragged chunks
        let expected: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 0xA5).collect();
        for threads in [1, 2, 3, 5, 8, 64] {
            let out = WorkPool::with_threads(threads).map(&items, |&x| x.wrapping_mul(x) ^ 0xA5);
            assert_eq!(out, expected, "thread count {threads}");
        }
    }

    #[test]
    fn uneven_task_sizes_stress() {
        // Task cost varies by four orders of magnitude, with the heavy
        // spikes clustered at the front (the worst case for static
        // splitting): dynamic chunk claiming must still return exact,
        // ordered results.
        let items: Vec<u64> = (0..600)
            .map(|i| if i % 97 == 0 { 40_000 } else { i % 13 })
            .collect();
        let work = |&n: &u64| -> u64 {
            let mut acc = 0u64;
            for k in 0..n {
                acc = acc.wrapping_add(k).rotate_left(1);
            }
            acc
        };
        let expected: Vec<u64> = items.iter().map(work).collect();
        for threads in [2, 4, 7] {
            assert_eq!(
                WorkPool::with_threads(threads).map(&items, work),
                expected,
                "thread count {threads}"
            );
        }
    }

    #[test]
    fn empty_and_single() {
        let out: Vec<u32> = WorkPool::auto().map(&Vec::<u32>::new(), |&x| x);
        assert!(out.is_empty());
        assert_eq!(WorkPool::auto().map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn thread_count_clamps_to_one() {
        let pool = WorkPool::with_threads(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.map(&[1, 2, 3], |&x: &i32| x), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic]
    fn propagates_panics() {
        let items: Vec<u32> = (0..64).collect();
        let _ = WorkPool::with_threads(4).map(&items, |&x| {
            if x == 13 {
                panic!("boom");
            }
            x
        });
    }
}
