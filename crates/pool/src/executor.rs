//! The shared work-stealing executor.
//!
//! [`WorkPool`](crate::WorkPool) spawns a fresh team of scoped threads on
//! every `map` call, which is fine for one flat loop but wrong for the
//! workspace's real shape: the harness maps over *sites* while the xpath
//! layer maps over each site's *pages*. Nesting scoped pools
//! oversubscribes the machine (every outer worker spawns its own inner
//! team), and the historical workaround — parallelize only one level —
//! leaves cores idle whenever the two levels are unevenly sized.
//!
//! An [`Executor`] owns one persistent team of workers and lets *both*
//! levels feed it:
//!
//! * **Per-worker deques + stealing** — each worker owns a deque; a
//!   nested [`Executor::map`] issued from a worker pushes its task
//!   handles onto that worker's own deque (newest first, so the
//!   innermost batch drains first), and idle peers steal the oldest
//!   handles from the front. Calls from threads outside the pool go
//!   through a shared injector queue.
//! * **Chunked claiming** — a task handle is not one item but a ticket
//!   into a *batch*: whoever picks it up claims chunks of consecutive
//!   items from the batch's atomic cursor until the batch is drained
//!   (the same dynamic load balancing as `WorkPool`, minus the thread
//!   spawning).
//! * **Cooperative blocking** — the thread that called `map` claims
//!   chunks of its own batch first, then *helps* with other queued work
//!   while the last stolen chunks finish elsewhere; a worker is never
//!   parked while any batch has runnable work.
//! * **Determinism** — results are written into a slot-per-item buffer,
//!   so output order is the input order for every thread count and every
//!   steal schedule; `Executor::new(1)` and `Executor::new(64)` return
//!   identical vectors.
//!
//! One executor is meant to be shared by a whole process
//! ([`Executor::global`]); the engine, the rank/xpath batch layers and
//! the experiment harness all route their parallelism through it, so
//! site-level and page-level work items interleave in one pool instead
//! of competing thread teams.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// How many chunks each thread gets on average; >1 so uneven per-item
/// costs rebalance, small enough that claiming stays cheap.
const CHUNKS_PER_THREAD: usize = 8;

/// An invalid thread-count setting (`AW_THREADS` or `--threads`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadsError {
    value: String,
}

impl std::fmt::Display for ThreadsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid thread count {:?}: expected a positive integer \
             (set AW_THREADS or --threads to 1 or more)",
            self.value
        )
    }
}

impl std::error::Error for ThreadsError {}

/// Parses a thread-count setting: a positive integer, or an error that
/// names the offending value (`"0"` and non-numeric strings are both
/// rejected — silently falling back to `auto` hid typos for too long).
pub fn parse_threads(value: &str) -> Result<usize, ThreadsError> {
    match value.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(ThreadsError {
            value: value.to_string(),
        }),
    }
}

/// Reads the `AW_THREADS` environment variable: `Ok(None)` when unset,
/// `Ok(Some(n))` for a valid positive integer, and a [`ThreadsError`]
/// for anything else (0, negative, non-numeric, non-unicode).
pub fn env_threads() -> Result<Option<usize>, ThreadsError> {
    match std::env::var("AW_THREADS") {
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(v)) => Err(ThreadsError {
            value: v.to_string_lossy().into_owned(),
        }),
        Ok(v) => parse_threads(&v).map(Some),
    }
}

/// The machine's thread count when nothing overrides it.
fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

thread_local! {
    /// `(shared-state address, worker index)` when the current thread is
    /// an executor worker — how a nested `map` finds its own deque.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// A persistent work-stealing thread pool with order-preserving maps.
///
/// Cheap to clone (all clones share the same workers); the worker
/// threads exit when the last clone is dropped. See the [module
/// docs](self) for the execution model.
#[derive(Clone)]
pub struct Executor {
    inner: Arc<Inner>,
}

struct Inner {
    shared: Arc<Shared>,
    threads: usize,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

struct Shared {
    /// Per-worker deques: the owner pushes and pops at the back (newest
    /// first), thieves steal the oldest handle from the front.
    deques: Vec<Mutex<VecDeque<Arc<Batch>>>>,
    /// Submissions from threads outside the pool.
    injector: Mutex<VecDeque<Arc<Batch>>>,
    /// Count of queued task handles; guards the parking decision.
    queued: Mutex<usize>,
    wake: Condvar,
    shutdown: AtomicBool,
}

impl Executor {
    /// An executor with an explicit thread count (clamped to ≥ 1): the
    /// calling thread participates in every `map`, so `threads - 1`
    /// workers are spawned. `Executor::new(1)` spawns nothing and maps
    /// sequentially.
    pub fn new(threads: usize) -> Executor {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            deques: (1..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            queued: Mutex::new(0),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..threads - 1)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("aw-exec-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawn executor worker")
            })
            .collect();
        Executor {
            inner: Arc::new(Inner {
                shared,
                threads,
                handles: Mutex::new(handles),
            }),
        }
    }

    /// An executor using all available cores, with `AW_THREADS`
    /// overriding the count.
    ///
    /// # Panics
    ///
    /// On an invalid `AW_THREADS` value — use [`Executor::try_auto`] to
    /// surface the error instead.
    pub fn auto() -> Executor {
        Executor::try_auto().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`Executor::auto`], but an invalid `AW_THREADS` value is
    /// returned as a [`ThreadsError`] rather than panicking.
    pub fn try_auto() -> Result<Executor, ThreadsError> {
        Ok(Executor::new(
            env_threads()?.unwrap_or_else(default_threads),
        ))
    }

    /// The process-wide shared executor (built on first use, honouring
    /// `AW_THREADS`). This is the pool every layer should default to:
    /// routing nested parallelism through one executor is what prevents
    /// site-level and page-level loops from oversubscribing each other.
    ///
    /// # Panics
    ///
    /// On first use with an invalid `AW_THREADS` value (validate with
    /// [`env_threads`] first to report the error gracefully).
    pub fn global() -> &'static Executor {
        static GLOBAL: OnceLock<Executor> = OnceLock::new();
        GLOBAL.get_or_init(Executor::auto)
    }

    /// The configured thread count (workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// Applies `f` to every item, preserving input order in the output.
    ///
    /// The calling thread participates; idle workers steal chunks. Safe
    /// to call from inside another `map` on the same executor — the
    /// nested batch is queued on the calling worker's own deque and
    /// drained by the whole team, not by a fresh set of threads. A
    /// panicking `f` is re-raised on the caller after the batch drains.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let len = items.len();
        let shared = &self.inner.shared;
        let workers = shared.deques.len();
        if workers == 0 || len <= 1 {
            return items.iter().map(&f).collect();
        }
        let chunk = len.div_ceil(self.inner.threads * CHUNKS_PER_THREAD).max(1);
        let n_chunks = len.div_ceil(chunk);
        if n_chunks <= 1 {
            return items.iter().map(&f).collect();
        }

        let mut results: Vec<Option<R>> = std::iter::repeat_with(|| None).take(len).collect();
        // SAFETY CONTRACT: the batch erases `items`, `results` and `f`
        // to raw pointers so task handles can sit in 'static deques.
        // This function does not return (or unwind) until `pending`
        // reaches zero, i.e. until no thread will touch those pointers
        // again; stale handles left in the deques only ever observe the
        // exhausted chunk cursor.
        let batch = Arc::new(Batch {
            items: items.as_ptr().cast(),
            results: results.as_mut_ptr().cast(),
            f: (&raw const f).cast(),
            len,
            chunk,
            n_chunks,
            run: run_chunk::<T, R, F>,
            next: AtomicUsize::new(0),
            pending: AtomicUsize::new(n_chunks),
            panic: Mutex::new(None),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
        });

        let me = current_worker(shared);
        // The caller claims chunks too, so peers only need handles for
        // what they could possibly steal.
        shared.push(me, workers.min(n_chunks - 1), &batch);

        // Claim chunks of this batch until its cursor drains...
        batch.work();
        // ...then help with whatever else is queued (other batches,
        // nested batches of this one) while stolen chunks finish; with
        // nothing left to help with, park until the last stolen chunk
        // completes (its runner never needs this thread — every chunk
        // still pending has already been claimed by a live runner).
        while batch.pending.load(Ordering::Acquire) > 0 {
            match shared.find_task(me) {
                Some(task) => task.work(),
                None => {
                    let mut guard = batch.done_lock.lock().unwrap();
                    while batch.pending.load(Ordering::Acquire) > 0 {
                        guard = batch.done.wait(guard).unwrap();
                    }
                }
            }
        }

        let payload = batch.panic.lock().unwrap().take();
        if let Some(p) = payload {
            resume_unwind(p);
        }
        results
            .into_iter()
            .map(|r| r.expect("every chunk executed"))
            .collect()
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("threads", &self.inner.threads)
            .finish()
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::auto()
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        {
            let _guard = self.shared.queued.lock().unwrap();
            self.shared.shutdown.store(true, Ordering::Release);
            self.shared.wake.notify_all();
        }
        for h in self.handles.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

/// `Some(index)` when the current thread is a worker of `shared`'s pool.
fn current_worker(shared: &Arc<Shared>) -> Option<usize> {
    WORKER
        .get()
        .and_then(|(addr, idx)| (addr == Arc::as_ptr(shared) as usize).then_some(idx))
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    WORKER.set(Some((Arc::as_ptr(&shared) as usize, index)));
    loop {
        if let Some(task) = shared.find_task(Some(index)) {
            task.work();
            continue;
        }
        let mut queued = shared.queued.lock().unwrap();
        while *queued == 0 {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            queued = shared.wake.wait(queued).unwrap();
        }
    }
}

impl Shared {
    /// Pops a task handle: own deque first (newest — the innermost
    /// nested batch), then the injector, then steal the oldest from a
    /// peer.
    fn find_task(&self, me: Option<usize>) -> Option<Arc<Batch>> {
        if let Some(i) = me {
            if let Some(t) = self.deques[i].lock().unwrap().pop_back() {
                self.note_popped();
                return Some(t);
            }
        }
        if let Some(t) = self.injector.lock().unwrap().pop_front() {
            self.note_popped();
            return Some(t);
        }
        let n = self.deques.len();
        let start = me.map_or(0, |i| i + 1);
        for k in 0..n {
            let j = (start + k) % n;
            if Some(j) == me {
                continue;
            }
            if let Some(t) = self.deques[j].lock().unwrap().pop_front() {
                self.note_popped();
                return Some(t);
            }
        }
        None
    }

    fn note_popped(&self) {
        let mut q = self.queued.lock().unwrap();
        *q = q.saturating_sub(1);
    }

    /// Queues `copies` handles to `task` — on the calling worker's own
    /// deque, or on the injector for outside threads — and wakes
    /// sleepers.
    fn push(&self, me: Option<usize>, copies: usize, task: &Arc<Batch>) {
        if copies == 0 {
            return;
        }
        {
            let mut dq = match me {
                Some(i) => self.deques[i].lock().unwrap(),
                None => self.injector.lock().unwrap(),
            };
            for _ in 0..copies {
                dq.push_back(Arc::clone(task));
            }
            // Count the handles while still holding the deque lock. If
            // the increment landed after the lock was released, a racing
            // pop could decrement first, `note_popped`'s saturation at
            // zero would swallow that decrement, and `queued` would
            // overstate forever — workers then spin on the phantom count
            // instead of parking (a livelock that can starve the mapping
            // thread outright on single-CPU hosts). The deque→queued
            // nesting matches `find_task`/`note_popped`.
            let mut q = self.queued.lock().unwrap();
            *q += copies;
        }
        if copies == 1 {
            self.wake.notify_one();
        } else {
            self.wake.notify_all();
        }
    }
}

/// One `map` call's type-erased execution state. A handle in a deque is
/// a *ticket* into the batch: [`Batch::work`] claims chunks from the
/// cursor until none remain, so extra handles are harmless (they observe
/// an exhausted cursor and return).
struct Batch {
    items: *const (),
    results: *mut (),
    f: *const (),
    len: usize,
    chunk: usize,
    n_chunks: usize,
    /// Monomorphized chunk runner restoring the erased types.
    run: unsafe fn(&Batch, usize),
    /// Chunk-claim cursor.
    next: AtomicUsize,
    /// Chunks not yet finished; `map` returns when this hits zero.
    pending: AtomicUsize,
    /// First panic payload out of `f`, re-raised on the mapping caller.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Parking spot for the mapping caller while the final stolen
    /// chunks run elsewhere (predicate: `pending` == 0).
    done_lock: Mutex<()>,
    done: Condvar,
}

// SAFETY: the raw pointers refer to the mapping caller's stack, which
// outlives all chunk executions (`map` blocks until `pending` == 0), and
// chunks write disjoint result slots. The pointee types are constrained
// `T: Sync`, `R: Send`, `F: Sync` by `Executor::map`.
unsafe impl Send for Batch {}
unsafe impl Sync for Batch {}

impl Batch {
    /// Claims and runs chunks until the cursor is exhausted.
    fn work(&self) {
        loop {
            let c = self.next.fetch_add(1, Ordering::Relaxed);
            if c >= self.n_chunks {
                return;
            }
            // SAFETY: `c` was claimed exactly once and is in range; the
            // batch's pointers are live because `pending` has not
            // reached zero yet (this chunk counts toward it).
            let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { (self.run)(self, c) }));
            if let Err(p) = outcome {
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(p);
                }
            }
            if self.pending.fetch_sub(1, Ordering::Release) == 1 {
                // Last chunk done: wake the possibly-parked mapping
                // caller. Taking the lock orders this with its
                // check-then-wait, so the wakeup cannot be lost.
                let _guard = self.done_lock.lock().unwrap();
                self.done.notify_all();
            }
        }
    }
}

/// Runs chunk `c`: the `(T, R, F)` monomorphization restoring the types
/// erased in [`Batch`].
///
/// # Safety
///
/// Must only be called with the `Batch` built by `Executor::map` for
/// this same `(T, R, F)`, with `c < n_chunks` claimed exactly once.
unsafe fn run_chunk<T, R, F>(batch: &Batch, c: usize)
where
    F: Fn(&T) -> R,
{
    // SAFETY: pointers and length come from the live slice/buffer/closure
    // of the owning `map` call (see the safety contract there).
    unsafe {
        let items = std::slice::from_raw_parts(batch.items as *const T, batch.len);
        let results = batch.results as *mut Option<R>;
        let f = &*(batch.f as *const F);
        let lo = c * batch.chunk;
        let hi = (lo + batch.chunk).min(batch.len);
        for (i, item) in items[lo..hi].iter().enumerate() {
            *results.add(lo + i) = Some(f(item));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..5000).collect();
        let out = Executor::new(4).map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    /// Hammers the push/pop interleaving with many tiny maps. A stale
    /// `queued` count (handles popped before their increment landed —
    /// the decrement saturates at zero and the count overstates forever)
    /// leaves workers spinning instead of parking and can starve the
    /// mapping thread outright; the watchdog turns that wedge into a
    /// test failure instead of a hung suite.
    #[test]
    fn rapid_small_maps_never_wedge() {
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let pool = Executor::new(3);
            for i in 0..20_000usize {
                let items: Vec<usize> = (0..7).collect();
                let out = pool.map(&items, |&x| x + i);
                assert_eq!(out[6], 6 + i);
            }
            tx.send(()).unwrap();
        });
        rx.recv_timeout(std::time::Duration::from_secs(120))
            .expect("executor wedged: rapid small maps did not complete");
    }

    #[test]
    fn identical_across_thread_counts() {
        let items: Vec<u64> = (0..997).collect(); // prime length: ragged chunks
        let expected: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 0xA5).collect();
        for threads in [1, 2, 3, 5, 8] {
            let exec = Executor::new(threads);
            let out = exec.map(&items, |&x| x.wrapping_mul(x) ^ 0xA5);
            assert_eq!(out, expected, "thread count {threads}");
        }
    }

    #[test]
    fn nested_maps_run_on_the_same_team() {
        // Sites × pages through ONE executor: the nested call must not
        // deadlock, must not spawn a second team, and must stay
        // deterministic.
        let exec = Executor::new(4);
        let sites: Vec<u64> = (0..40).collect();
        let expected: Vec<u64> = sites
            .iter()
            .map(|&s| (0..37).map(|p| s * 1000 + p).sum())
            .collect();
        let got = exec.map(&sites, |&s| {
            let pages: Vec<u64> = (0..37).map(|p| s * 1000 + p).collect();
            exec.map(&pages, |&p| p).into_iter().sum::<u64>()
        });
        assert_eq!(got, expected);
    }

    #[test]
    fn deeply_nested_maps_terminate() {
        let exec = Executor::new(3);
        let outer: Vec<u64> = (0..6).collect();
        let got = exec.map(&outer, |&a| {
            let mid: Vec<u64> = (0..5).map(|b| a * 10 + b).collect();
            exec.map(&mid, |&m| {
                let inner: Vec<u64> = (0..4).map(|c| m * 10 + c).collect();
                exec.map(&inner, |&x| x + 1).into_iter().sum::<u64>()
            })
            .into_iter()
            .sum::<u64>()
        });
        let expected: Vec<u64> = outer
            .iter()
            .map(|&a| {
                (0..5)
                    .map(|b| (0..4).map(|c| (a * 10 + b) * 10 + c + 1).sum::<u64>())
                    .sum()
            })
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn uneven_task_sizes_stress() {
        let items: Vec<u64> = (0..600)
            .map(|i| if i % 97 == 0 { 40_000 } else { i % 13 })
            .collect();
        let work = |&n: &u64| -> u64 {
            let mut acc = 0u64;
            for k in 0..n {
                acc = acc.wrapping_add(k).rotate_left(1);
            }
            acc
        };
        let expected: Vec<u64> = items.iter().map(work).collect();
        for threads in [2, 4, 7] {
            assert_eq!(
                Executor::new(threads).map(&items, work),
                expected,
                "thread count {threads}"
            );
        }
    }

    #[test]
    fn empty_and_single() {
        let exec = Executor::new(4);
        let out: Vec<u32> = exec.map(&Vec::<u32>::new(), |&x| x);
        assert!(out.is_empty());
        assert_eq!(exec.map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn thread_count_clamps_to_one() {
        let exec = Executor::new(0);
        assert_eq!(exec.threads(), 1);
        assert_eq!(exec.map(&[1, 2, 3], |&x: &i32| x), vec![1, 2, 3]);
    }

    #[test]
    fn executor_is_reusable_across_calls() {
        let exec = Executor::new(3);
        for round in 0..50u64 {
            let items: Vec<u64> = (0..64).collect();
            let out = exec.map(&items, |&x| x + round);
            assert_eq!(out, items.iter().map(|x| x + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn clones_share_workers_and_drop_cleanly() {
        let exec = Executor::new(4);
        let other = exec.clone();
        assert_eq!(other.threads(), 4);
        let items: Vec<u32> = (0..100).collect();
        assert_eq!(exec.map(&items, |&x| x), other.map(&items, |&x| x),);
        drop(other);
        // Workers stay alive for the surviving clone.
        assert_eq!(exec.map(&[1u32, 2], |&x| x * 3), vec![3, 6]);
    }

    #[test]
    #[should_panic]
    fn propagates_panics() {
        let items: Vec<u32> = (0..64).collect();
        let _ = Executor::new(4).map(&items, |&x| {
            if x == 13 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn survives_a_propagated_panic() {
        let exec = Executor::new(4);
        let items: Vec<u32> = (0..64).collect();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            exec.map(&items, |&x| {
                if x == 13 {
                    panic!("boom");
                }
                x
            })
        }));
        assert!(caught.is_err());
        // The team is intact and later maps are exact.
        assert_eq!(exec.map(&items, |&x| x), items);
    }

    #[test]
    fn parse_threads_validates() {
        assert_eq!(parse_threads("4"), Ok(4));
        assert_eq!(parse_threads(" 2 "), Ok(2));
        assert!(parse_threads("0").is_err());
        assert!(parse_threads("-3").is_err());
        assert!(parse_threads("abc").is_err());
        assert!(parse_threads("").is_err());
        let msg = parse_threads("zero").unwrap_err().to_string();
        assert!(
            msg.contains("zero") && msg.contains("positive integer"),
            "{msg}"
        );
    }

    #[test]
    fn concurrent_external_maps_do_not_interfere() {
        let exec = Executor::new(4);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let exec = exec.clone();
                scope.spawn(move || {
                    let items: Vec<u64> = (0..300).collect();
                    let out = exec.map(&items, |&x| x * t);
                    assert_eq!(out, items.iter().map(|x| x * t).collect::<Vec<_>>());
                });
            }
        });
    }
}
