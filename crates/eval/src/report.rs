//! JSON export of experiment results, for regenerating plots or diffing
//! runs. Every experiment result type in [`crate::experiments`] derives
//! `serde::Serialize` and can be written with [`write_json`].

use serde::Serialize;
use std::path::Path;

/// Serializes `value` as pretty JSON into `path`, creating parent
/// directories as needed.
pub fn write_json<T: Serialize>(path: impl AsRef<Path>, value: &T) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, json)
}

/// Serializes `value` to a JSON string (pretty).
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("experiment results are serializable")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PrF1;

    #[test]
    fn writes_and_rereads_json() {
        let dir = std::env::temp_dir().join("aw_report_test");
        let path = dir.join("sub").join("score.json");
        let score = PrF1::new(0.5, 1.0);
        write_json(&path, &score).unwrap();
        let raw = std::fs::read_to_string(&path).unwrap();
        assert!(raw.contains("\"precision\": 0.5"));
        assert!(raw.contains("\"f1\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn to_json_renders() {
        let s = to_json(&PrF1::PERFECT);
        assert!(s.contains("1.0"));
    }
}
