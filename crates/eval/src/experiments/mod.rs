//! Experiment runners, one module per paper figure/table.
//!
//! | Module | Paper content |
//! |---|---|
//! | [`calls`] | Fig. 2(a)/(b) — enumeration inductor-call counts |
//! | [`timing`] | Fig. 2(c) — enumeration wall-clock time |
//! | [`accuracy`] | Fig. 2(d)–(g), 3(c) — NAIVE vs NTW accuracy |
//! | [`variants`] | Fig. 2(h)/(i) — NTW / NTW-L / NTW-X ablation |
//! | [`table1`] | Table 1 — accuracy vs annotator (p, r) grid |
//! | [`multitype`] | Fig. 3(a)/(b) — multi-type extraction |
//! | [`single_entity`] | App. B.2 — single-entity extraction |
//! | [`ablations`] | design-choice sweeps (context cap, label cap, features) |
//! | [`generalization`] | portable-rule quality on pages unseen at learning time |
//! | [`churn`] | site churn vs. the self-healing serving loop (§7's wrapper-lifetime premise) |

pub mod ablations;
pub mod accuracy;
pub mod calls;
pub mod churn;
pub mod generalization;
pub mod multitype;
pub mod single_entity;
pub mod table1;
pub mod timing;
pub mod variants;
