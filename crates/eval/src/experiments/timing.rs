//! Figure 2(c): wall-clock running time of TopDown vs BottomUp
//! enumeration for XPATH wrappers, per website.

use crate::parallel::executor;
use aw_enum::{bottom_up, top_down};
use aw_induct::{NodeSet, XPathInductor};
use aw_sitegen::GeneratedSite;
use serde::Serialize;
use std::time::Instant;

/// Per-site enumeration timings (seconds).
#[derive(Clone, Debug, Serialize)]
pub struct TimingRow {
    /// Site id.
    pub site: usize,
    /// Label count after capping.
    pub labels: usize,
    /// TopDown wall-clock seconds.
    pub top_down_secs: f64,
    /// BottomUp wall-clock seconds.
    pub bottom_up_secs: f64,
}

/// The full figure.
#[derive(Clone, Debug, Serialize)]
pub struct TimingResult {
    /// Rows sorted by ascending TopDown time.
    pub rows: Vec<TimingRow>,
}

/// Runs the experiment (XPATH wrappers, as in the paper's Figure 2(c)).
pub fn run<F>(sites: &[GeneratedSite], labels_of: F) -> TimingResult
where
    F: Fn(&GeneratedSite) -> NodeSet + Sync,
{
    let mut rows: Vec<TimingRow> = executor()
        .map(sites, |gs| {
            let labels = super::calls::cap_labels_pub(labels_of(gs), super::calls::LABEL_CAP);
            if labels.is_empty() {
                return None;
            }
            let ind = XPathInductor::new(&gs.site);
            let t0 = Instant::now();
            let td = top_down(&ind, &labels);
            let top_down_secs = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let bu = bottom_up(&ind, &labels);
            let bottom_up_secs = t1.elapsed().as_secs_f64();
            debug_assert_eq!(td.extraction_set(), bu.extraction_set());
            Some(TimingRow {
                site: gs.id,
                labels: labels.len(),
                top_down_secs,
                bottom_up_secs,
            })
        })
        .into_iter()
        .flatten()
        .collect();
    rows.sort_by(|a, b| a.top_down_secs.total_cmp(&b.top_down_secs));
    TimingResult { rows }
}

impl std::fmt::Display for TimingResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Enumeration running time for XPATH (seconds per website)"
        )?;
        writeln!(
            f,
            "{:>6} {:>5} {:>12} {:>12}",
            "site", "|L|", "TopDown", "BottomUp"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6} {:>5} {:>12.6} {:>12.6}",
                r.site, r.labels, r.top_down_secs, r.bottom_up_secs
            )?;
        }
        let med = |v: Vec<f64>| aw_align::stats::median(&v);
        writeln!(
            f,
            "median: TopDown={:.6}s BottomUp={:.6}s (ratio {:.1}x)",
            med(self.rows.iter().map(|r| r.top_down_secs).collect()),
            med(self.rows.iter().map(|r| r.bottom_up_secs).collect()),
            med(self
                .rows
                .iter()
                .map(|r| r.bottom_up_secs / r.top_down_secs.max(1e-9))
                .collect()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aw_annotate::{DictionaryAnnotator, MatchMode};
    use aw_sitegen::{generate_dealers, DealersConfig};

    #[test]
    fn timing_rows_produced() {
        let ds = generate_dealers(&DealersConfig::small(4, 31));
        let annotator = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
        let result = run(&ds.sites, |s| annotator.annotate(&s.site));
        assert!(!result.rows.is_empty());
        for r in &result.rows {
            assert!(r.top_down_secs >= 0.0 && r.bottom_up_secs >= 0.0);
        }
        assert!(result.to_string().contains("BottomUp"));
    }
}
