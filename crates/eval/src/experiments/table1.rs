//! Table 1: NTW accuracy (F1) as a function of the annotator's
//! precision `p` and recall `r`, using the controlled synthetic annotator
//! of §7.4 on DEALERS with XPATH wrappers.

use crate::harness::{evaluate, learn_model, split_half, Method};
use crate::parallel::executor;
use aw_annotate::SyntheticAnnotator;
use aw_core::WrapperLanguage;
use aw_sitegen::GeneratedSite;
use serde::Serialize;

/// The paper's grid.
pub const PRECISIONS: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];
/// Recall axis of the grid.
pub const RECALLS: [f64; 6] = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3];

/// One cell of the grid.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct GridCell {
    /// Target annotator precision.
    pub p: f64,
    /// Target annotator recall.
    pub r: f64,
    /// Mean F1 of NTW on the test half.
    pub f1: f64,
}

/// The full table.
#[derive(Clone, Debug, Serialize)]
pub struct Table1Result {
    /// Cells in row-major (p, then r) order.
    pub cells: Vec<GridCell>,
}

impl Table1Result {
    /// Looks up the cell for `(p, r)`.
    pub fn cell(&self, p: f64, r: f64) -> Option<&GridCell> {
        self.cells
            .iter()
            .find(|c| (c.p - p).abs() < 1e-9 && (c.r - r).abs() < 1e-9)
    }
}

/// Runs the grid. `seed` feeds the synthetic annotator.
pub fn run(sites: &[GeneratedSite], seed: u64) -> Table1Result {
    // Global gold/non-gold balance determines (p1, p2) per target.
    let gold_n: usize = sites.iter().map(|s| s.gold().len()).sum();
    let non_gold_n: usize = sites
        .iter()
        .map(|s| s.site.text_nodes().len() - s.gold().len())
        .sum();

    let grid: Vec<(f64, f64)> = PRECISIONS
        .iter()
        .flat_map(|&p| RECALLS.iter().map(move |&r| (p, r)))
        .collect();

    let cells = executor().map(&grid, |&(p, r)| {
        let annotator = SyntheticAnnotator::for_target(
            p,
            r,
            gold_n / sites.len().max(1),
            non_gold_n / sites.len().max(1),
            seed ^ ((p * 100.0) as u64) << 8 ^ (r * 100.0) as u64,
        );
        let labels_of = |s: &GeneratedSite| annotator.annotate(&s.site, s.gold());
        let (train, test) = split_half(sites);
        let model = learn_model(&train, labels_of);
        let outcome = evaluate(
            &test,
            labels_of,
            WrapperLanguage::XPath,
            Method::Ntw,
            &model,
        );
        GridCell {
            p,
            r,
            f1: outcome.mean.f1,
        }
    });
    Table1Result { cells }
}

impl std::fmt::Display for Table1Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Accuracy of NTW as a function of annotator (rows: p, cols: r)"
        )?;
        write!(f, "{:>6}", "p\\r")?;
        for r in RECALLS {
            write!(f, " {r:>6.2}")?;
        }
        writeln!(f)?;
        for p in PRECISIONS {
            write!(f, "{p:>6.1}")?;
            for r in RECALLS {
                match self.cell(p, r) {
                    Some(c) => write!(f, " {:>6.2}", c.f1)?,
                    None => write!(f, " {:>6}", "-")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aw_sitegen::{generate_dealers, DealersConfig};

    #[test]
    fn accuracy_grows_with_annotator_quality() {
        // Tiny grid sanity check on a reduced dataset: the (0.9, 0.3)
        // corner must beat the (0.1, 0.05) corner.
        let ds = generate_dealers(&DealersConfig::small(12, 61));
        let result = run(&ds.sites, 99);
        assert_eq!(result.cells.len(), 30);
        let worst = result.cell(0.1, 0.05).unwrap().f1;
        let best = result.cell(0.9, 0.3).unwrap().f1;
        assert!(best > worst, "best {best} vs worst {worst}");
        assert!(best > 0.6, "best corner too weak: {best}");
        let rendered = result.to_string();
        assert!(rendered.contains("p\\r"));
    }
}
