//! Figures 2(a) and 2(b): number of inductor calls made by TopDown,
//! BottomUp and Naive enumeration, per website.

use crate::parallel::executor;
use aw_core::WrapperLanguage;
use aw_enum::{bottom_up, naive_call_count, top_down};
use aw_induct::{LrInductor, NodeSet, XPathInductor};
use aw_sitegen::GeneratedSite;
use serde::Serialize;

/// Per-site call counts.
#[derive(Clone, Debug, Serialize)]
pub struct CallsRow {
    /// Site id.
    pub site: usize,
    /// Number of (possibly subsampled) labels.
    pub labels: usize,
    /// TopDown calls (Theorem 3: exactly k).
    pub top_down: usize,
    /// BottomUp calls (Theorem 2: ≤ k·|L|).
    pub bottom_up: usize,
    /// Naive calls (2^|L| − 1, computed analytically).
    pub naive: u64,
    /// Wrapper-space size k.
    pub k: usize,
}

/// The full figure: one row per site, x-axis ordered by TopDown calls
/// (as in the paper's plots).
#[derive(Clone, Debug, Serialize)]
pub struct CallsResult {
    /// Wrapper language used.
    pub language: String,
    /// Rows sorted by ascending TopDown calls.
    pub rows: Vec<CallsRow>,
}

/// Cap on labels fed to enumeration (keeps BottomUp tractable on
/// label-rich sites; the paper's sites have comparable label counts).
pub const LABEL_CAP: usize = 24;

/// Runs the experiment for one wrapper language.
pub fn run<F>(sites: &[GeneratedSite], labels_of: F, language: WrapperLanguage) -> CallsResult
where
    F: Fn(&GeneratedSite) -> NodeSet + Sync,
{
    let mut rows: Vec<CallsRow> = executor()
        .map(sites, |gs| {
            let labels = cap_labels(labels_of(gs), LABEL_CAP);
            if labels.is_empty() {
                return None;
            }
            let (td, bu, k) = match language {
                WrapperLanguage::XPath => {
                    let ind = XPathInductor::new(&gs.site);
                    let td = top_down(&ind, &labels);
                    let bu = bottom_up(&ind, &labels);
                    (td.inductor_calls, bu.inductor_calls, td.len())
                }
                WrapperLanguage::Lr => {
                    let ind = LrInductor::new(&gs.site);
                    let td = top_down(&ind, &labels);
                    let bu = bottom_up(&ind, &labels);
                    (td.inductor_calls, bu.inductor_calls, td.len())
                }
                WrapperLanguage::Table => {
                    let ind = aw_induct::DomTableInductor::new(&gs.site);
                    let td = top_down(&ind, &labels);
                    let bu = bottom_up(&ind, &labels);
                    (td.inductor_calls, bu.inductor_calls, td.len())
                }
                WrapperLanguage::Hlrt => unimplemented!("HLRT has no feature-based form"),
            };
            Some(CallsRow {
                site: gs.id,
                labels: labels.len(),
                top_down: td,
                bottom_up: bu,
                naive: naive_call_count(labels.len()),
                k,
            })
        })
        .into_iter()
        .flatten()
        .collect();
    rows.sort_by_key(|r| r.top_down);
    CallsResult {
        language: language.name().to_string(),
        rows,
    }
}

/// Evenly subsamples a label set down to `cap` (shared with the timing
/// experiment so Figures 2(a–c) use identical inputs).
pub(crate) fn cap_labels_pub(labels: NodeSet, cap: usize) -> NodeSet {
    cap_labels(labels, cap)
}

fn cap_labels(labels: NodeSet, cap: usize) -> NodeSet {
    if labels.len() <= cap {
        return labels;
    }
    let items: Vec<_> = labels.into_iter().collect();
    let stride = items.len() as f64 / cap as f64;
    (0..cap)
        .map(|i| items[(i as f64 * stride) as usize])
        .collect()
}

impl std::fmt::Display for CallsResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "# of wrapper calls for {} (one row per website)",
            self.language
        )?;
        writeln!(
            f,
            "{:>6} {:>7} {:>9} {:>10} {:>14} {:>5}",
            "site", "|L|", "TopDown", "BottomUp", "Naive", "k"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6} {:>7} {:>9} {:>10} {:>14} {:>5}",
                r.site, r.labels, r.top_down, r.bottom_up, r.naive, r.k
            )?;
        }
        let med = |v: Vec<f64>| aw_align::stats::median(&v);
        writeln!(
            f,
            "median: TopDown={:.0} BottomUp={:.0} Naive={:.0}",
            med(self.rows.iter().map(|r| r.top_down as f64).collect()),
            med(self.rows.iter().map(|r| r.bottom_up as f64).collect()),
            med(self.rows.iter().map(|r| r.naive as f64).collect()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aw_annotate::{DictionaryAnnotator, MatchMode};
    use aw_sitegen::{generate_dealers, DealersConfig};

    #[test]
    fn calls_ordered_naive_worst() {
        let ds = generate_dealers(&DealersConfig::small(6, 17));
        let annotator = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
        let result = run(
            &ds.sites,
            |s| annotator.annotate(&s.site),
            WrapperLanguage::XPath,
        );
        assert!(!result.rows.is_empty());
        for r in &result.rows {
            assert!(r.top_down as u64 <= r.naive, "TopDown ≤ Naive: {r:?}");
            // BottomUp's k·|L| bound only undercuts 2^|L| once |L| grows.
            if r.labels >= 7 {
                assert!(r.bottom_up as u64 <= r.naive, "BottomUp ≤ Naive: {r:?}");
            }
            assert!(r.top_down >= r.k, "at least k calls: {r:?}");
            assert!(r.bottom_up <= r.k * r.labels, "Theorem 2: {r:?}");
        }
        // Sorted by TopDown.
        let tds: Vec<usize> = result.rows.iter().map(|r| r.top_down).collect();
        let mut sorted = tds.clone();
        sorted.sort_unstable();
        assert_eq!(tds, sorted);
        // Display renders.
        assert!(result.to_string().contains("TopDown"));
    }

    #[test]
    fn lr_variant_runs() {
        let ds = generate_dealers(&DealersConfig::small(3, 23));
        let annotator = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
        let result = run(
            &ds.sites,
            |s| annotator.annotate(&s.site),
            WrapperLanguage::Lr,
        );
        assert_eq!(result.language, "LR");
        for r in &result.rows {
            assert!(r.k >= 1);
        }
    }

    #[test]
    fn label_capping() {
        let many: NodeSet = (0..100u32)
            .map(|i| aw_dom::PageNode::new(0, aw_dom::NodeId(i)))
            .collect();
        assert_eq!(cap_labels(many.clone(), 24).len(), 24);
        assert_eq!(cap_labels(many.clone(), 200), many);
    }
}
