//! Figures 3(a) and 3(b): multi-type (name + zipcode) extraction on
//! DEALERS — NAIVE vs NTW, and joint vs single-type per-field accuracy.

use crate::harness::{learn_annotator, learn_model, split_half, Method};
use crate::metrics::{macro_average, prf1, PrF1};
use crate::parallel::executor;
use aw_annotate::{annotate_zipcodes, DictionaryAnnotator};
use aw_core::{assemble_records, learn_multi_type, Engine, MultiTypeModel, NtwConfig};
use aw_induct::{NodeSet, Site, WrapperInductor, XPathInductor};
use aw_sitegen::{DealersDataset, GeneratedSite};
use serde::Serialize;

/// Record-level and per-field scores for one method.
#[derive(Clone, Debug, Serialize)]
pub struct MultiTypeOutcomeRow {
    /// NAIVE or NTW.
    pub method: Method,
    /// Record-level P/R/F (a record counts when both fields are right).
    pub records: PrF1,
    /// Field-level score for names.
    pub names: PrF1,
    /// Field-level score for zipcodes.
    pub zips: PrF1,
}

/// The Figure 3(a)/3(b) bundle.
#[derive(Clone, Debug, Serialize)]
pub struct MultiTypeResult {
    /// NAIVE and NTW record/field scores (Figure 3a).
    pub rows: Vec<MultiTypeOutcomeRow>,
    /// Single-type extraction baselines per field (Figure 3b): F1 of
    /// names and zips when each type is learned alone with NTW.
    pub single_names: PrF1,
    /// Single-type zips baseline.
    pub single_zips: PrF1,
}

/// Runs the multi-type experiment on a DEALERS dataset.
pub fn run(ds: &DealersDataset) -> MultiTypeResult {
    let name_annot =
        DictionaryAnnotator::new(ds.dictionary.iter(), aw_annotate::MatchMode::Contains);
    let name_labels = |s: &GeneratedSite| name_annot.annotate(&s.site);
    let zip_labels = |s: &GeneratedSite| annotate_zipcodes(&s.site);

    let (train, test) = split_half(&ds.sites);
    // Models: full ranking model on names; per-type annotators; shared
    // publication model (record segments are the same object).
    let name_model = learn_model(&train, name_labels);
    let zip_annotator = learn_annotator(&train, 1, zip_labels);
    let mt_model = MultiTypeModel {
        annotators: vec![name_model.annotator, zip_annotator],
        publication: name_model.publication.clone(),
        pin_indel_cost: 3,
    };

    // NTW multi-type.
    let ntw_scores: Vec<(PrF1, PrF1, PrF1)> = executor().map(&test, |gs| {
        let labels = [name_labels(gs), zip_labels(gs)];
        let out = learn_multi_type(&gs.site, &labels, &mt_model, &NtwConfig::default());
        match out.best() {
            Some(best) => score_records(gs, &best.extractions[0], &best.extractions[1]),
            None => (PrF1::ZERO, PrF1::ZERO, PrF1::ZERO),
        }
    });

    // NAIVE multi-type: φ on all labels per type, then assembly.
    let naive_scores: Vec<(PrF1, PrF1, PrF1)> = executor().map(&test, |gs| {
        let inductor = XPathInductor::new(&gs.site);
        let x0 = inductor.extract(&name_labels(gs));
        let x1 = inductor.extract(&zip_labels(gs));
        score_records(gs, &x0, &x1)
    });

    // Single-type baselines (Figure 3b), each through its own Engine.
    let name_engine = Engine::builder(name_model.clone()).build();
    let single_names = macro_average(&executor().map(&test, |gs| {
        let extraction = name_engine
            .learn(&gs.site, &name_labels(gs))
            .ok()
            .and_then(|out| out.best().map(|w| w.extraction.clone()))
            .unwrap_or_default();
        prf1(&extraction, &gs.gold_types[0])
    }));
    let zip_model = learn_model_for_zips(&train, zip_labels);
    let zip_engine = Engine::builder(zip_model).build();
    let single_zips = macro_average(&executor().map(&test, |gs| {
        let extraction = zip_engine
            .learn(&gs.site, &zip_labels(gs))
            .ok()
            .and_then(|out| out.best().map(|w| w.extraction.clone()))
            .unwrap_or_default();
        prf1(&extraction, &gs.gold_types[1])
    }));

    let collect = |method, scores: Vec<(PrF1, PrF1, PrF1)>| MultiTypeOutcomeRow {
        method,
        records: macro_average(&scores.iter().map(|s| s.0).collect::<Vec<_>>()),
        names: macro_average(&scores.iter().map(|s| s.1).collect::<Vec<_>>()),
        zips: macro_average(&scores.iter().map(|s| s.2).collect::<Vec<_>>()),
    };
    MultiTypeResult {
        rows: vec![
            collect(Method::Naive, naive_scores),
            collect(Method::Ntw, ntw_scores),
        ],
        single_names,
        single_zips,
    }
}

/// Like `learn_model` but with the zip gold type.
fn learn_model_for_zips<F>(train: &[&GeneratedSite], labels_of: F) -> aw_rank::RankingModel
where
    F: Fn(&GeneratedSite) -> NodeSet,
{
    use aw_rank::{list_features, segment_site, ListFeatures, PublicationModel, RankingModel};
    let annotator = learn_annotator(train, 1, &labels_of);
    let mut features = Vec::new();
    for site in train {
        if let Some(f) = list_features(&segment_site(&site.site, &site.gold_types[1])) {
            features.push(f);
        }
    }
    let publication = if features.is_empty() {
        PublicationModel::learn(&[ListFeatures {
            schema_size: 3.0,
            alignment: 0.0,
        }])
    } else {
        PublicationModel::learn(&features)
    };
    RankingModel::new(annotator, publication)
}

/// Scores a candidate pair: record-level (assembled pairs vs gold pairs)
/// plus per-field node scores.
fn score_records(gs: &GeneratedSite, x0: &NodeSet, x1: &NodeSet) -> (PrF1, PrF1, PrF1) {
    let records = assemble_records(&gs.site, x0, x1);
    let gold_records = gold_record_pairs(&gs.site, &gs.gold_types[0], &gs.gold_types[1]);
    let extracted: std::collections::BTreeSet<_> = records
        .iter()
        .filter_map(|r| r.secondary.map(|s| (r.primary, s)))
        .collect();
    let record_score = if extracted.is_empty() || gold_records.is_empty() {
        if gold_records.is_empty() && extracted.is_empty() {
            PrF1::PERFECT
        } else {
            PrF1::ZERO
        }
    } else {
        let tp = extracted.intersection(&gold_records).count() as f64;
        PrF1::new(tp / extracted.len() as f64, tp / gold_records.len() as f64)
    };
    (
        record_score,
        prf1(x0, &gs.gold_types[0]),
        prf1(x1, &gs.gold_types[1]),
    )
}

fn gold_record_pairs(
    site: &Site,
    names: &NodeSet,
    zips: &NodeSet,
) -> std::collections::BTreeSet<(aw_dom::PageNode, aw_dom::PageNode)> {
    assemble_records(site, names, zips)
        .into_iter()
        .filter_map(|r| r.secondary.map(|s| (r.primary, s)))
        .collect()
}

impl std::fmt::Display for MultiTypeResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Multi-type (name + zipcode) extraction on DEALERS")?;
        writeln!(
            f,
            "{:>6} {:>10} {:>8} {:>8}   (record-level)",
            "method", "Precision", "Recall", "F1"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:>6} {:>10.3} {:>8.3} {:>8.3}",
                row.method.name(),
                row.records.precision,
                row.records.recall,
                row.records.f1
            )?;
        }
        writeln!(f, "\nMulti-type vs single-type per-field F1 (Figure 3b)")?;
        writeln!(f, "{:>8} {:>8} {:>8}", "field", "MULTI", "SINGLE")?;
        let multi = &self.rows[1];
        writeln!(
            f,
            "{:>8} {:>8.3} {:>8.3}",
            "Name", multi.names.f1, self.single_names.f1
        )?;
        writeln!(
            f,
            "{:>8} {:>8.3} {:>8.3}",
            "Zipcode", multi.zips.f1, self.single_zips.f1
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aw_sitegen::{generate_dealers, DealersConfig};

    #[test]
    fn figure_3a_shape_on_sample() {
        let ds = generate_dealers(&DealersConfig::small(14, 71));
        let result = run(&ds);
        let naive = &result.rows[0];
        let ntw = &result.rows[1];
        assert_eq!(naive.method, Method::Naive);
        // The paper's headline: NAIVE's record F1 collapses, NTW's is high.
        assert!(
            ntw.records.f1 > naive.records.f1 + 0.2,
            "NTW {:?} vs NAIVE {:?}",
            ntw.records,
            naive.records
        );
        assert!(ntw.names.f1 > 0.6, "{:?}", ntw.names);
        assert!(result.to_string().contains("SINGLE"));
    }
}
