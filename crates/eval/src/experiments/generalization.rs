//! Wrapper generalization: the production story behind the paper's
//! deployment ("our system is used in production in Yahoo!").
//!
//! A wrapper is learned from labels on the pages available at training
//! time, then its *portable rule* is applied to pages crawled later. This
//! experiment splits each website's pages: labels come only from the
//! first `train_pages`, extraction quality is measured only on the rest.

use crate::metrics::{macro_average, prf1, PrF1};
use crate::parallel::executor;
use aw_core::{Engine, WrapperLanguage};
use aw_dom::PageNode;
use aw_induct::{NodeSet, Site};
use aw_rank::RankingModel;
use aw_sitegen::GeneratedSite;
use serde::Serialize;

/// Result of the generalization experiment.
#[derive(Clone, Debug, Serialize)]
pub struct GeneralizationResult {
    /// Wrapper language.
    pub language: String,
    /// Pages used for learning, per site.
    pub train_pages: usize,
    /// Extraction quality on the held-out pages.
    pub held_out: PrF1,
    /// Extraction quality on the training pages (for contrast).
    pub train: PrF1,
    /// Number of sites evaluated.
    pub sites: usize,
}

/// Runs the experiment (over the test half of a dataset, like
/// [`crate::harness::evaluate`]).
pub fn run<F>(
    sites: &[&GeneratedSite],
    labels_of: F,
    language: WrapperLanguage,
    model: &RankingModel,
    train_pages: usize,
) -> GeneralizationResult
where
    F: Fn(&GeneratedSite) -> NodeSet + Sync,
{
    let engine = Engine::builder(model.clone()).language(language).build();
    let scores: Vec<(PrF1, PrF1)> = executor()
        .map(sites, |gs| {
            let total_pages = gs.site.page_count();
            if total_pages <= train_pages {
                return None;
            }
            // Labels restricted to the training pages.
            let labels: NodeSet = labels_of(gs)
                .into_iter()
                .filter(|n| (n.page as usize) < train_pages)
                .collect();
            if labels.is_empty() {
                return Some((PrF1::ZERO, PrF1::ZERO));
            }

            // Learn on a site view containing only the training pages.
            let train_htmls: Vec<String> = (0..train_pages)
                .map(|p| aw_dom::serialize(gs.site.page(p as u32)))
                .collect();
            let train_site = Site::from_html(&train_htmls);
            // Node ids are preserved by re-parsing the serialized pages
            // (serialize∘parse is a fixpoint for parsed documents), so labels
            // carry over directly.
            let Ok(out) = engine.learn(&train_site, &labels) else {
                return Some((PrF1::ZERO, PrF1::ZERO));
            };
            let Some(best) = out.best() else {
                return Some((PrF1::ZERO, PrF1::ZERO));
            };
            // Compile the portable serving artifact once per site (xpath
            // rules carry their batch trie), then replay it over every page.
            let wrapper = best.compile();

            // Score on training pages and held-out pages separately.
            let score_on = |range: std::ops::Range<usize>| {
                let mut extracted = NodeSet::new();
                let mut gold = NodeSet::new();
                for p in range {
                    extracted.extend(
                        wrapper
                            .extract(gs.site.page(p as u32))
                            .into_iter()
                            .map(|id| PageNode::new(p as u32, id)),
                    );
                    gold.extend(gs.gold().iter().copied().filter(|n| n.page as usize == p));
                }
                prf1(&extracted, &gold)
            };
            Some((score_on(train_pages..total_pages), score_on(0..train_pages)))
        })
        .into_iter()
        .flatten()
        .collect();

    GeneralizationResult {
        language: language.name().to_string(),
        train_pages,
        held_out: macro_average(&scores.iter().map(|s| s.0).collect::<Vec<_>>()),
        train: macro_average(&scores.iter().map(|s| s.1).collect::<Vec<_>>()),
        sites: scores.len(),
    }
}

impl std::fmt::Display for GeneralizationResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Wrapper generalization ({}, learned on {} page(s)/site, {} sites)",
            self.language, self.train_pages, self.sites
        )?;
        writeln!(
            f,
            "{:>10} {:>10} {:>8} {:>8}",
            "pages", "Precision", "Recall", "F1"
        )?;
        writeln!(
            f,
            "{:>10} {:>10.3} {:>8.3} {:>8.3}",
            "train", self.train.precision, self.train.recall, self.train.f1
        )?;
        writeln!(
            f,
            "{:>10} {:>10.3} {:>8.3} {:>8.3}",
            "held-out", self.held_out.precision, self.held_out.recall, self.held_out.f1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{learn_model, split_half};
    use aw_annotate::{DictionaryAnnotator, MatchMode};
    use aw_sitegen::{generate_dealers, DealersConfig};

    #[test]
    fn rules_generalize_to_unseen_pages() {
        let ds = generate_dealers(&DealersConfig {
            sites: 14,
            pages_per_site: 6,
            ..DealersConfig::small(14, 0x6E4)
        });
        let annot = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
        let labels_of = |s: &GeneratedSite| annot.annotate(&s.site);
        let (train, test) = split_half(&ds.sites);
        let model = learn_model(&train, labels_of);
        let result = run(&test, labels_of, WrapperLanguage::XPath, &model, 3);
        assert!(result.sites > 0);
        assert!(result.held_out.f1 > 0.85, "{result}");
        // Held-out quality close to train quality: same script, so rules
        // transfer (the wrapper premise of §1).
        assert!(
            (result.train.f1 - result.held_out.f1).abs() < 0.15,
            "{result}"
        );
        assert!(result.to_string().contains("held-out"));
    }
}
