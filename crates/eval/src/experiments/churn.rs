//! Site churn vs. self-healing serving: what the robustness loop buys.
//!
//! The paper's deployment premise is that sites drift and wrappers are
//! cheap to relearn (§7 measures wrapper lifetime against site churn).
//! This experiment makes that trade concrete on a scripted
//! [`TemplateEvolution`]: every epoch is scored twice —
//!
//! * **frozen** — the epoch-0 wrapper applied as-is (what a deployment
//!   without health signals serves forever);
//! * **healed** — whatever wrapper the self-healing service
//!   ([`aw_core::ExtractionService`] + [`aw_core::RelearnController`])
//!   is serving after the epoch's traffic has flowed through it.
//!
//! On benign epochs both stay high (relearning must not be *needed*);
//! on breaking epochs the frozen wrapper collapses while the healed
//! path degrades, relearns from retained request pages, swaps, and
//! recovers.

use crate::metrics::{prf1, PrF1};
use aw_annotate::{DictionaryAnnotator, MatchMode};
use aw_core::{
    CompiledWrapper, Engine, ExtractRequest, ExtractionService, HealthThresholds,
    RelearnController, WrapperLanguage, WrapperRegistry,
};
use aw_dom::PageNode;
use aw_induct::NodeSet;
use aw_rank::RankingModel;
use aw_sitegen::{epoch_html, EvolutionEpoch, TemplateEvolution};
use serde::Serialize;
use std::sync::Arc;

/// One epoch's scores.
#[derive(Clone, Debug, Serialize)]
pub struct EpochOutcome {
    /// Epoch index (0 = the template the wrapper was learned on).
    pub epoch: usize,
    /// Whether the epoch's mutations were benign for a correct wrapper.
    pub survivable: bool,
    /// Extraction quality of the frozen epoch-0 wrapper.
    pub frozen: PrF1,
    /// Extraction quality of the self-healing service's current wrapper
    /// after this epoch's traffic.
    pub healed: PrF1,
    /// Whether a relearn swapped a new wrapper in during this epoch.
    pub relearned: bool,
}

/// Result of the churn experiment.
#[derive(Clone, Debug, Serialize)]
pub struct ChurnResult {
    /// Wrapper language.
    pub language: String,
    /// Per-epoch outcomes, in order.
    pub epochs: Vec<EpochOutcome>,
    /// Total relearn passes attempted.
    pub relearns: usize,
    /// Total relearn passes that swapped a new wrapper in.
    pub swaps: usize,
}

/// Scores a wrapper against an epoch's hidden gold labels.
fn score_on(wrapper: &CompiledWrapper, epoch: &EvolutionEpoch) -> PrF1 {
    let generated = &epoch.site;
    let mut extracted = NodeSet::new();
    for p in 0..generated.site.page_count() {
        extracted.extend(
            wrapper
                .extract(generated.site.page(p as u32))
                .into_iter()
                .map(|id| PageNode::new(p as u32, id)),
        );
    }
    prf1(&extracted, generated.gold())
}

/// Runs the experiment over one scripted evolution.
pub fn run(evolution: &TemplateEvolution, model: &RankingModel) -> ChurnResult {
    let dataset = evolution.run();
    let language = WrapperLanguage::XPath;
    let engine = Engine::builder(model.clone())
        .language(language)
        .annotator(DictionaryAnnotator::new(
            dataset.dictionary.iter(),
            MatchMode::Contains,
        ))
        .build();

    // Deploy the epoch-0 wrapper twice: one copy frozen for the
    // counterfactual, one serving inside the self-healing loop.
    let site0 = &dataset.epochs[0].site.site;
    let labels = engine.annotate(site0).expect("dictionary hits epoch 0");
    let ranked = engine.learn(site0, &labels).expect("epoch 0 learns");
    let best = ranked.best().expect("nonempty wrapper space");
    let frozen = best.compile();
    let deployed = best.compile();

    let registry = Arc::new(WrapperRegistry::new());
    registry.insert("churn", deployed);
    let service = ExtractionService::new(Arc::clone(&registry)).with_thresholds(HealthThresholds {
        window: 8,
        min_window: 4,
        baseline_pages: 4,
        retain_pages: 16,
        ..HealthThresholds::default()
    });
    let controller = Arc::new(RelearnController::new(&service, engine));
    let service = service.with_relearn(Arc::clone(&controller));

    let (mut relearns, mut swaps) = (0, 0);
    let epochs = dataset
        .epochs
        .iter()
        .map(|epoch| {
            // Two passes of the epoch's pages: enough traffic for the
            // sliding window to cross a threshold when the wrapper broke.
            let pages = epoch_html(epoch);
            for _ in 0..2 {
                for html in &pages {
                    service
                        .handle(&ExtractRequest::single("churn", html.clone()))
                        .expect("site stays registered");
                }
            }
            let outcome = controller.run_pending();
            relearns += outcome.attempted;
            swaps += outcome.swapped;
            EpochOutcome {
                epoch: epoch.index,
                survivable: epoch.survivable,
                frozen: score_on(&frozen, epoch),
                healed: score_on(&registry.get("churn").expect("registered"), epoch),
                relearned: outcome.swapped > 0,
            }
        })
        .collect();

    ChurnResult {
        language: language.name().to_string(),
        epochs,
        relearns,
        swaps,
    }
}

impl std::fmt::Display for ChurnResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Site churn vs self-healing serving ({}, {} epochs, {} relearn(s), {} swap(s))",
            self.language,
            self.epochs.len(),
            self.relearns,
            self.swaps
        )?;
        writeln!(
            f,
            "{:>6} {:>10} {:>10} {:>10} {:>10}",
            "epoch", "churn", "frozen F1", "healed F1", "relearned"
        )?;
        for e in &self.epochs {
            writeln!(
                f,
                "{:>6} {:>10} {:>10.3} {:>10.3} {:>10}",
                e.epoch,
                if e.survivable { "benign" } else { "breaking" },
                e.frozen.f1,
                e.healed.f1,
                if e.relearned { "yes" } else { "" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aw_rank::{AnnotatorModel, ListFeatures, PublicationModel};

    fn model() -> RankingModel {
        RankingModel::new(
            AnnotatorModel::new(0.9, 0.3),
            PublicationModel::learn(&[
                ListFeatures {
                    schema_size: 3.0,
                    alignment: 0.0,
                },
                ListFeatures {
                    schema_size: 4.0,
                    alignment: 1.0,
                },
            ]),
        )
    }

    #[test]
    fn healing_recovers_what_the_frozen_wrapper_loses() {
        let result = run(&TemplateEvolution::small(7), &model());
        assert_eq!(result.epochs.len(), 3);
        // Epoch 0: both perfect, no relearn.
        assert!(result.epochs[0].frozen.f1 > 0.99, "{result}");
        assert!(result.epochs[0].healed.f1 > 0.99, "{result}");
        assert!(!result.epochs[0].relearned);
        // Benign epoch: the frozen wrapper survives — healing not needed.
        assert!(result.epochs[1].frozen.f1 > 0.99, "{result}");
        assert!(!result.epochs[1].relearned, "benign churn must not relearn");
        // Breaking epoch: frozen collapses, the healed path recovers.
        assert!(result.epochs[2].frozen.f1 < 0.01, "{result}");
        assert!(result.epochs[2].healed.f1 > 0.99, "{result}");
        assert!(result.epochs[2].relearned, "breaking churn must relearn");
        assert_eq!(result.swaps, 1, "{result}");
        assert!(result.to_string().contains("breaking"));
    }
}
