//! Figures 2(h) and 2(i): ranking-component ablation — NTW vs NTW-L
//! (annotation term only) vs NTW-X (publication term only).

use crate::harness::{evaluate, learn_model, split_half, EvalOutcome, Method};
use aw_core::WrapperLanguage;
use aw_induct::NodeSet;
use aw_sitegen::GeneratedSite;
use serde::Serialize;

/// The ablation figure.
#[derive(Clone, Debug, Serialize)]
pub struct VariantsResult {
    /// Dataset name.
    pub dataset: String,
    /// Wrapper language.
    pub language: String,
    /// NTW, NTW-L, NTW-X in that order.
    pub outcomes: Vec<EvalOutcome>,
}

/// Runs the three variants.
pub fn run<F>(
    dataset: &str,
    sites: &[GeneratedSite],
    labels_of: F,
    language: WrapperLanguage,
) -> VariantsResult
where
    F: Fn(&GeneratedSite) -> NodeSet + Sync,
{
    let (train, test) = split_half(sites);
    let model = learn_model(&train, &labels_of);
    let outcomes = [Method::Ntw, Method::NtwL, Method::NtwX]
        .into_iter()
        .map(|m| evaluate(&test, &labels_of, language, m, &model))
        .collect();
    VariantsResult {
        dataset: dataset.to_string(),
        language: language.name().to_string(),
        outcomes,
    }
}

impl std::fmt::Display for VariantsResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} ranking variants on {} (accuracy = F1)",
            self.language, self.dataset
        )?;
        writeln!(f, "{:>8} {:>9}", "variant", "Accuracy")?;
        for o in &self.outcomes {
            writeln!(f, "{:>8} {:>9.3}", o.method.name(), o.mean.f1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aw_annotate::{DictionaryAnnotator, MatchMode};
    use aw_sitegen::{generate_dealers, DealersConfig};

    #[test]
    fn full_ranking_at_least_matches_components() {
        let ds = generate_dealers(&DealersConfig::small(16, 53));
        let annot = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
        let res = run(
            "DEALERS",
            &ds.sites,
            |s| annot.annotate(&s.site),
            WrapperLanguage::XPath,
        );
        assert_eq!(res.outcomes.len(), 3);
        let full = res.outcomes[0].mean.f1;
        let l_only = res.outcomes[1].mean.f1;
        let x_only = res.outcomes[2].mean.f1;
        // §7.3: no single component accounts for full accuracy; allow a
        // small sampling slack on the reduced dataset.
        assert!(full + 0.05 >= l_only, "full {full} vs L {l_only}");
        assert!(full + 0.05 >= x_only, "full {full} vs X {x_only}");
        assert!(res.to_string().contains("NTW-X"));
    }
}
