//! Figures 2(d)–2(g) and 3(c): precision / recall / F1 of NAIVE vs NTW
//! for a (wrapper language, dataset) pair.

use crate::harness::{evaluate, learn_model, split_half, EvalOutcome, Method};
use aw_core::WrapperLanguage;
use aw_induct::NodeSet;
use aw_sitegen::GeneratedSite;
use serde::Serialize;

/// The figure: a bar group per method.
#[derive(Clone, Debug, Serialize)]
pub struct AccuracyResult {
    /// Dataset name.
    pub dataset: String,
    /// Wrapper language.
    pub language: String,
    /// Learned annotator parameters (reported for the record).
    pub annotator_p: f64,
    /// Learned annotator recall.
    pub annotator_r: f64,
    /// One outcome per method.
    pub outcomes: Vec<EvalOutcome>,
}

/// Runs NAIVE vs NTW (plus any extra methods) on a dataset.
pub fn run<F>(
    dataset: &str,
    sites: &[GeneratedSite],
    labels_of: F,
    language: WrapperLanguage,
    methods: &[Method],
) -> AccuracyResult
where
    F: Fn(&GeneratedSite) -> NodeSet + Sync,
{
    let (train, test) = split_half(sites);
    let model = learn_model(&train, &labels_of);
    let outcomes = methods
        .iter()
        .map(|&m| evaluate(&test, &labels_of, language, m, &model))
        .collect();
    AccuracyResult {
        dataset: dataset.to_string(),
        language: language.name().to_string(),
        annotator_p: model.annotator.p,
        annotator_r: model.annotator.r,
        outcomes,
    }
}

impl std::fmt::Display for AccuracyResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Accuracy of {} on {} (annotator p={:.2} r={:.2}, {} test sites)",
            self.language,
            self.dataset,
            self.annotator_p,
            self.annotator_r,
            self.outcomes.first().map_or(0, |o| o.per_site.len()),
        )?;
        writeln!(
            f,
            "{:>8} {:>10} {:>8} {:>8}",
            "method", "Precision", "Recall", "F1"
        )?;
        for o in &self.outcomes {
            writeln!(
                f,
                "{:>8} {:>10.3} {:>8.3} {:>8.3}",
                o.method.name(),
                o.mean.precision,
                o.mean.recall,
                o.mean.f1
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aw_annotate::{DictionaryAnnotator, MatchMode};
    use aw_sitegen::{generate_dealers, DealersConfig};

    #[test]
    fn figure_2d_shape_on_sample() {
        // NAIVE: recall ≈ 1, low precision. NTW: precision ≈ 1 with small
        // recall loss (the §7.2 shape) — on a reduced DEALERS sample.
        let ds = generate_dealers(&DealersConfig::small(20, 41));
        let annot = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
        let res = run(
            "DEALERS",
            &ds.sites,
            |s| annot.annotate(&s.site),
            WrapperLanguage::XPath,
            &[Method::Naive, Method::Ntw],
        );
        let naive = &res.outcomes[0].mean;
        let ntw = &res.outcomes[1].mean;
        assert!(naive.recall > 0.9, "NAIVE recall {naive:?}");
        assert!(
            ntw.precision > naive.precision,
            "NTW {ntw:?} vs NAIVE {naive:?}"
        );
        assert!(ntw.f1 > naive.f1);
        assert!(res.to_string().contains("NAIVE"));
    }
}
