//! Ablations of the reproduction's own design choices (beyond the paper's
//! §7.3 component ablation):
//!
//! * **LR context cap** — the byte bound on learned delimiters / feature
//!   positions (§5 leaves it at "document length"; we cap it);
//! * **enumeration label cap** — labels fed to the generate step;
//! * **publication features** — schema-size-only vs alignment-only vs
//!   both (a finer cut than NTW-X);
//! * **annotator parameters** — learned `(p, r)` vs fixed defaults.

use crate::harness::{evaluate, learn_model, split_half, Method};
use crate::metrics::{macro_average, prf1, PrF1};
use crate::parallel::executor;
use aw_core::{learn_with_feature_based, NtwConfig, WrapperLanguage};
use aw_induct::{LrInductor, NodeSet};
use aw_rank::{AnnotatorModel, KernelOverride, RankingModel};
use aw_sitegen::GeneratedSite;
use serde::Serialize;

/// One row of a parameter sweep.
#[derive(Clone, Debug, Serialize)]
pub struct SweepRow {
    /// The swept parameter's value.
    pub value: f64,
    /// Mean F1 on the test half.
    pub f1: f64,
    /// Mean inductor calls per site.
    pub mean_calls: f64,
}

/// A named sweep.
#[derive(Clone, Debug, Serialize)]
pub struct SweepResult {
    /// What is being swept.
    pub parameter: String,
    /// Rows in sweep order.
    pub rows: Vec<SweepRow>,
}

impl std::fmt::Display for SweepResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "ablation: {}", self.parameter)?;
        writeln!(f, "{:>10} {:>8} {:>12}", "value", "F1", "calls/site")?;
        for r in &self.rows {
            writeln!(f, "{:>10} {:>8.3} {:>12.1}", r.value, r.f1, r.mean_calls)?;
        }
        Ok(())
    }
}

/// Sweeps the LR context cap.
pub fn lr_context_cap<F>(sites: &[GeneratedSite], labels_of: F, caps: &[usize]) -> SweepResult
where
    F: Fn(&GeneratedSite) -> NodeSet + Sync,
{
    let (train, test) = split_half(sites);
    let model = learn_model(&train, &labels_of);
    let rows = caps
        .iter()
        .map(|&cap| {
            let scored: Vec<(PrF1, usize)> = executor().map(&test, |gs| {
                let labels = labels_of(gs);
                if labels.is_empty() {
                    return (PrF1::ZERO, 0);
                }
                let inductor = LrInductor::with_context_cap(&gs.site, cap);
                let out = learn_with_feature_based(
                    &inductor,
                    &gs.site,
                    &labels,
                    &model,
                    &NtwConfig::default(),
                );
                let ext = out.best().map(|w| w.extraction.clone()).unwrap_or_default();
                (prf1(&ext, gs.gold()), out.inductor_calls)
            });
            SweepRow {
                value: cap as f64,
                f1: macro_average(&scored.iter().map(|s| s.0).collect::<Vec<_>>()).f1,
                mean_calls: scored.iter().map(|s| s.1 as f64).sum::<f64>()
                    / scored.len().max(1) as f64,
            }
        })
        .collect();
    SweepResult {
        parameter: "LR context cap (bytes)".into(),
        rows,
    }
}

/// Sweeps the enumeration label cap (XPATH wrappers).
pub fn enumeration_label_cap<F>(
    sites: &[GeneratedSite],
    labels_of: F,
    caps: &[usize],
) -> SweepResult
where
    F: Fn(&GeneratedSite) -> NodeSet + Sync,
{
    let (train, test) = split_half(sites);
    let model = learn_model(&train, &labels_of);
    let rows = caps
        .iter()
        .map(|&cap| {
            let config = NtwConfig {
                max_enumeration_labels: cap,
                ..Default::default()
            };
            let scored: Vec<(PrF1, usize)> = executor().map(&test, |gs| {
                let labels = labels_of(gs);
                if labels.is_empty() {
                    return (PrF1::ZERO, 0);
                }
                let inductor = aw_induct::XPathInductor::new(&gs.site);
                let out = learn_with_feature_based(&inductor, &gs.site, &labels, &model, &config);
                let ext = out.best().map(|w| w.extraction.clone()).unwrap_or_default();
                (prf1(&ext, gs.gold()), out.inductor_calls)
            });
            SweepRow {
                value: cap as f64,
                f1: macro_average(&scored.iter().map(|s| s.0).collect::<Vec<_>>()).f1,
                mean_calls: scored.iter().map(|s| s.1 as f64).sum::<f64>()
                    / scored.len().max(1) as f64,
            }
        })
        .collect();
    SweepResult {
        parameter: "enumeration label cap".into(),
        rows,
    }
}

/// Compares publication-feature subsets (both / schema only / alignment
/// only) at full NTW ranking.
pub fn publication_features<F>(sites: &[GeneratedSite], labels_of: F) -> SweepResult
where
    F: Fn(&GeneratedSite) -> NodeSet + Sync,
{
    let (train, test) = split_half(sites);
    let base = learn_model(&train, &labels_of);
    let variants: [(&str, KernelOverride); 3] = [
        ("both", KernelOverride::None),
        ("schema-only", KernelOverride::IgnoreAlignment),
        ("align-only", KernelOverride::IgnoreSchema),
    ];
    let rows = variants
        .iter()
        .enumerate()
        .map(|(i, (_, ov))| {
            let mut model = base.clone();
            model.publication.kernel_override = *ov;
            let out = evaluate(
                &test,
                &labels_of,
                WrapperLanguage::XPath,
                Method::Ntw,
                &model,
            );
            SweepRow {
                value: i as f64,
                f1: out.mean.f1,
                mean_calls: 0.0,
            }
        })
        .collect();
    SweepResult {
        parameter: "publication features (0=both, 1=schema-only, 2=align-only)".into(),
        rows,
    }
}

/// Compares learned annotator parameters against fixed defaults.
pub fn annotator_parameters<F>(sites: &[GeneratedSite], labels_of: F) -> SweepResult
where
    F: Fn(&GeneratedSite) -> NodeSet + Sync,
{
    let (train, test) = split_half(sites);
    let learned = learn_model(&train, &labels_of);
    let fixed_sets: [(f64, f64); 3] = [(0.9, 0.3), (0.99, 0.1), (0.7, 0.7)];
    let mut rows = vec![{
        let out = evaluate(
            &test,
            &labels_of,
            WrapperLanguage::XPath,
            Method::Ntw,
            &learned,
        );
        SweepRow {
            value: 0.0,
            f1: out.mean.f1,
            mean_calls: 0.0,
        }
    }];
    for (i, (p, r)) in fixed_sets.iter().enumerate() {
        let model = RankingModel::new(AnnotatorModel::new(*p, *r), learned.publication.clone());
        let out = evaluate(
            &test,
            &labels_of,
            WrapperLanguage::XPath,
            Method::Ntw,
            &model,
        );
        rows.push(SweepRow {
            value: (i + 1) as f64,
            f1: out.mean.f1,
            mean_calls: 0.0,
        });
    }
    SweepResult {
        parameter: "annotator params (0=learned, 1=(.9,.3), 2=(.99,.1), 3=(.7,.7))".into(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aw_annotate::{DictionaryAnnotator, MatchMode};
    use aw_sitegen::{generate_dealers, DealersConfig};

    fn setup() -> (aw_sitegen::DealersDataset, DictionaryAnnotator) {
        let ds = generate_dealers(&DealersConfig::small(12, 0xAB1A));
        let annot = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
        (ds, annot)
    }

    #[test]
    fn lr_cap_sweep_runs_and_tiny_cap_hurts() {
        let (ds, annot) = setup();
        let result = lr_context_cap(&ds.sites, |s| annot.annotate(&s.site), &[2, 64]);
        assert_eq!(result.rows.len(), 2);
        // A 2-byte cap leaves LR with delimiters like ">" only.
        assert!(result.rows[0].f1 <= result.rows[1].f1 + 1e-9, "{result}");
    }

    #[test]
    fn label_cap_sweep_trades_calls_for_quality() {
        let (ds, annot) = setup();
        let result = enumeration_label_cap(&ds.sites, |s| annot.annotate(&s.site), &[2, 16]);
        assert!(result.rows[0].mean_calls <= result.rows[1].mean_calls);
        assert!(result.to_string().contains("label cap"));
    }

    #[test]
    fn publication_feature_variants_run() {
        let (ds, annot) = setup();
        let result = publication_features(&ds.sites, |s| annot.annotate(&s.site));
        assert_eq!(result.rows.len(), 3);
        for row in &result.rows {
            assert!(row.f1 > 0.3, "{result}");
        }
    }

    #[test]
    fn annotator_parameter_variants_run() {
        let (ds, annot) = setup();
        let result = annotator_parameters(&ds.sites, |s| annot.annotate(&s.site));
        assert_eq!(result.rows.len(), 4);
        // Learned parameters should be competitive with any fixed guess.
        let learned = result.rows[0].f1;
        assert!(learned >= 0.7, "{result}");
    }
}
