//! Appendix B.2: single-entity extraction — album titles on DISC.
//!
//! The annotator is "very noisy" (titles recur as title tracks and inside
//! reviews); the framework enumerates, filters wrappers that extract more
//! than one node per page, and keeps the label-coverage maximizers. The
//! paper reports that this learns a correct wrapper on every website, with
//! occasional ties between multiple correct title locations.

use crate::parallel::executor;
use aw_annotate::{DictionaryAnnotator, MatchMode};
use aw_core::{learn_single_entity, NtwConfig};
use aw_induct::NodeSet;
use aw_sitegen::DiscDataset;
use serde::Serialize;

/// Per-site outcome of the single-entity experiment.
#[derive(Clone, Debug, Serialize)]
pub struct SingleEntityRow {
    /// Site id.
    pub site: usize,
    /// Number of noisy title labels.
    pub labels: usize,
    /// Number of tied top wrappers.
    pub tied_wrappers: usize,
    /// True when every tied top wrapper extracts only correct title nodes
    /// (one per page).
    pub all_correct: bool,
}

/// The experiment result.
#[derive(Clone, Debug, Serialize)]
pub struct SingleEntityResult {
    /// Per-site rows.
    pub rows: Vec<SingleEntityRow>,
    /// Fraction of sites where a correct wrapper was learned.
    pub success_rate: f64,
}

/// Runs the experiment on a DISC dataset.
pub fn run(ds: &DiscDataset) -> SingleEntityResult {
    let annotator = DictionaryAnnotator::new(ds.title_dictionary.iter(), MatchMode::Exact);
    let rows: Vec<SingleEntityRow> = executor().map(&ds.sites, |gs| {
        let labels: NodeSet = annotator.annotate(&gs.site);
        let out = learn_single_entity(&gs.site, &labels, &NtwConfig::default());
        let title_gold = &gs.gold_types[aw_sitegen::disc::TYPE_TITLE];
        let all_correct = !out.best.is_empty()
            && out
                .best
                .iter()
                .all(|w| w.extraction.iter().all(|n| title_gold.contains(n)));
        SingleEntityRow {
            site: gs.id,
            labels: labels.len(),
            tied_wrappers: out.best.len(),
            all_correct,
        }
    });
    let success = rows.iter().filter(|r| r.all_correct).count() as f64 / rows.len().max(1) as f64;
    SingleEntityResult {
        rows,
        success_rate: success,
    }
}

impl std::fmt::Display for SingleEntityResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Single-entity extraction (album titles) on DISC")?;
        writeln!(
            f,
            "{:>6} {:>8} {:>6} {:>9}",
            "site", "labels", "ties", "correct"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6} {:>8} {:>6} {:>9}",
                r.site, r.labels, r.tied_wrappers, r.all_correct
            )?;
        }
        writeln!(f, "success rate: {:.2}", self.success_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aw_sitegen::{generate_disc, DiscConfig};

    #[test]
    fn learns_correct_title_wrappers() {
        let ds = generate_disc(&DiscConfig::small(6, 81));
        let result = run(&ds);
        assert_eq!(result.rows.len(), 6);
        // The paper reports success on all sites; allow one miss on the
        // reduced sample.
        assert!(
            result.success_rate >= 0.8,
            "success {} rows {:?}",
            result.success_rate,
            result.rows
        );
        // Ties between multiple correct locations occur (crumb + heading).
        assert!(result.to_string().contains("success rate"));
    }
}
