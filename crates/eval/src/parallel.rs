//! Parallel execution facade for the experiment harness.
//!
//! The implementation lives in [`aw_pool`] (a dependency-free crate low
//! enough in the workspace graph that the xpath/rank/core layers use it
//! too); this module re-exports [`WorkPool`] and keeps the historical
//! [`par_map`] entry point (330 sites × enumeration is embarrassingly
//! parallel).

pub use aw_pool::WorkPool;

/// Applies `f` to every item on all available cores, preserving order.
///
/// Equivalent to `WorkPool::auto().map(items, f)`: chunked dynamic
/// scheduling with per-thread outputs stitched in input order (no shared
/// output lock), deterministic across thread counts.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    WorkPool::auto().map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..500).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(&Vec::<u32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    #[should_panic]
    fn propagates_panics() {
        let items: Vec<u32> = (0..64).collect();
        let _ = par_map(&items, |&x| {
            if x == 13 {
                panic!("boom");
            }
            x
        });
    }
}
