//! Parallel execution facade for the experiment harness.
//!
//! The implementation lives in [`aw_pool`] (a dependency-free crate low
//! enough in the workspace graph that the xpath/rank/core layers use it
//! too). Since the work-stealing refactor the harness maps over sites
//! through [`executor`] — the process-global [`Executor`] — so the
//! page-parallel stages nested under each site (batch xpath evaluation,
//! rule replay) feed the *same* worker team instead of spawning
//! competing scoped pools. The historical per-site entry point
//! [`par_map`] survives as a deprecated facade over it.

pub use aw_pool::{Executor, WorkPool};

/// The process-global work-stealing executor the harness maps through
/// (honours `AW_THREADS`; see [`Executor::global`]).
pub fn executor() -> &'static Executor {
    Executor::global()
}

/// Applies `f` to every item on all available cores, preserving order.
#[deprecated(
    note = "use aw_eval::executor().map(..) — the shared work-stealing executor \
            replaces the per-call site-only pool"
)]
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    executor().map(items, f)
}

#[cfg(test)]
mod tests {
    // The deprecated facade must stay behaviourally identical to the
    // executor it delegates to.
    #![allow(deprecated)]

    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..500).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn facade_matches_direct_executor_use() {
        let items: Vec<u64> = (0..777).collect();
        let via_facade = par_map(&items, |&x| x.rotate_left(3) ^ 0x5A);
        let via_executor = executor().map(&items, |&x| x.rotate_left(3) ^ 0x5A);
        let sequential: Vec<u64> = items.iter().map(|&x| x.rotate_left(3) ^ 0x5A).collect();
        assert_eq!(via_facade, via_executor);
        assert_eq!(via_facade, sequential);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(&Vec::<u32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    #[should_panic]
    fn propagates_panics() {
        let items: Vec<u32> = (0..64).collect();
        let _ = par_map(&items, |&x| {
            if x == 13 {
                panic!("boom");
            }
            x
        });
    }
}
