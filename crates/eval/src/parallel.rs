//! Tiny scoped parallel map used by the harness (330 sites × enumeration
//! is embarrassingly parallel).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on all available cores, preserving order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len());
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let out: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(&items[i]);
                    out.lock().expect("no poisoned worker")[i] = Some(r);
                })
            })
            .collect();
        // Surface worker panics (scope would re-raise anyway; this keeps
        // the panic payload of the *first* failing worker).
        for h in handles {
            if let Err(panic) = h.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });
    out.into_inner()
        .expect("no poisoned worker")
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..500).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(&Vec::<u32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    #[should_panic]
    fn propagates_panics() {
        let items: Vec<u32> = (0..64).collect();
        let _ = par_map(&items, |&x| {
            if x == 13 {
                panic!("boom");
            }
            x
        });
    }
}
