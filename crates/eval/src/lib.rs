//! # aw-eval — evaluation harness and experiment reproduction
//!
//! Reproduces the evaluation of §7 and the appendices: precision/recall
//! metrics, the half-split train/test protocol ("the p and r of the
//! annotators are learned from a sample of half the websites"), and one
//! runner per paper figure/table (see [`experiments`]). Sites are
//! evaluated in parallel through the process-global work-stealing
//! [`Executor`] ([`executor`]), which the nested page-parallel stages
//! share — no per-site scoped pools.

pub mod experiments;
pub mod harness;
pub mod metrics;
pub mod parallel;
pub mod report;

pub use harness::{evaluate, learn_annotator, learn_model, split_half, EvalOutcome, Method};
pub use metrics::{macro_average, prf1, PrF1};
#[allow(deprecated)]
pub use parallel::par_map;
pub use parallel::{executor, Executor, WorkPool};
pub use report::{to_json, write_json};
