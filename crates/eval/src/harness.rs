//! The evaluation harness: train/test protocol of §7.
//!
//! "For each domain, the probability distribution of the two features,
//! namely, schema size and alignment, and the p and r of the annotators
//! are learned from a sample of half the websites." We train on the
//! even-indexed half and evaluate on the odd-indexed half.

use crate::metrics::{macro_average, prf1, PrF1};
use crate::parallel::executor;
use aw_core::{Engine, NtwConfig, WrapperLanguage};
use aw_induct::NodeSet;
use aw_rank::{
    estimate_from_counts, list_features, segment_site, AnnotatorModel, ListFeatures,
    PublicationModel, RankingMode, RankingModel,
};
use aw_sitegen::GeneratedSite;
use serde::Serialize;

/// The extraction method being evaluated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Method {
    /// Run the inductor once on all (noisy) labels.
    Naive,
    /// The noise-tolerant framework, full ranking.
    Ntw,
    /// NTW with only the annotation term (§7.3).
    NtwL,
    /// NTW with only the publication term (§7.3).
    NtwX,
}

impl Method {
    /// Display name as used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            Method::Naive => "NAIVE",
            Method::Ntw => "NTW",
            Method::NtwL => "NTW-L",
            Method::NtwX => "NTW-X",
        }
    }

    /// The ranking mode, for NTW variants.
    pub fn mode(self) -> Option<RankingMode> {
        match self {
            Method::Naive => None,
            Method::Ntw => Some(RankingMode::Full),
            Method::NtwL => Some(RankingMode::AnnotationOnly),
            Method::NtwX => Some(RankingMode::PublicationOnly),
        }
    }
}

/// Splits a dataset into (train, test) halves by site parity.
pub fn split_half(sites: &[GeneratedSite]) -> (Vec<&GeneratedSite>, Vec<&GeneratedSite>) {
    let train = sites.iter().step_by(2).collect();
    let test = sites.iter().skip(1).step_by(2).collect();
    (train, test)
}

/// Learns the ranking model from training sites: annotator `(p, r)` from
/// label/gold counts, publication distributions from gold-list features.
pub fn learn_model<F>(train: &[&GeneratedSite], labels_of: F) -> RankingModel
where
    F: Fn(&GeneratedSite) -> NodeSet,
{
    let (mut tp, mut fp, mut gold_n, mut non_gold_n) = (0usize, 0usize, 0usize, 0usize);
    let mut features: Vec<ListFeatures> = Vec::new();
    for site in train {
        let labels = labels_of(site);
        let gold = site.gold();
        gold_n += gold.len();
        non_gold_n += site.site.text_nodes().len() - gold.len();
        for l in &labels {
            if gold.contains(l) {
                tp += 1;
            } else {
                fp += 1;
            }
        }
        if let Some(f) = list_features(&segment_site(&site.site, gold)) {
            features.push(f);
        }
    }
    let annotator = estimate_from_counts(gold_n, non_gold_n, tp, fp);
    let publication = if features.is_empty() {
        PublicationModel::learn(&[ListFeatures {
            schema_size: 3.0,
            alignment: 0.0,
        }])
    } else {
        PublicationModel::learn(&features)
    };
    RankingModel::new(annotator, publication)
}

/// Learns only the annotator model (used by the multi-type harness for
/// the secondary type).
pub fn learn_annotator<F>(train: &[&GeneratedSite], ty: usize, labels_of: F) -> AnnotatorModel
where
    F: Fn(&GeneratedSite) -> NodeSet,
{
    let (mut tp, mut fp, mut gold_n, mut non_gold_n) = (0usize, 0usize, 0usize, 0usize);
    for site in train {
        let labels = labels_of(site);
        let gold = &site.gold_types[ty];
        gold_n += gold.len();
        non_gold_n += site.site.text_nodes().len() - gold.len();
        for l in &labels {
            if gold.contains(l) {
                tp += 1;
            } else {
                fp += 1;
            }
        }
    }
    estimate_from_counts(gold_n, non_gold_n, tp, fp)
}

/// Per-method evaluation outcome over a set of sites.
#[derive(Clone, Debug, Serialize)]
pub struct EvalOutcome {
    /// Which method produced this outcome.
    pub method: Method,
    /// Wrapper language.
    pub language: String,
    /// Per-site scores (test half, site order).
    pub per_site: Vec<PrF1>,
    /// Macro-averaged precision/recall/F1 — the figure bars.
    pub mean: PrF1,
}

/// Evaluates one method over the test sites.
///
/// One [`Engine`] is built per call (language + ranking mode baked in)
/// and shared across the site-parallel map; NAIVE rides the same engine
/// through [`Engine::naive`].
pub fn evaluate<F>(
    test: &[&GeneratedSite],
    labels_of: F,
    language: WrapperLanguage,
    method: Method,
    model: &RankingModel,
) -> EvalOutcome
where
    F: Fn(&GeneratedSite) -> NodeSet + Sync,
{
    // NAIVE never ranks, so the mode default is irrelevant for it.
    let config = NtwConfig {
        mode: method.mode().unwrap_or(RankingMode::Full),
        ..Default::default()
    };
    let engine = Engine::builder(model.clone())
        .language(language)
        .config(config)
        .build();
    let per_site = executor().map(test, |site| {
        let labels = labels_of(site);
        let extraction = match method {
            Method::Naive => engine
                .naive(&site.site, &labels)
                .map(|w| w.extraction)
                .unwrap_or_default(),
            _ => engine
                .learn(&site.site, &labels)
                .ok()
                .and_then(|ranked| ranked.best().map(|w| w.extraction.clone()))
                .unwrap_or_default(),
        };
        prf1(&extraction, site.gold())
    });
    EvalOutcome {
        method,
        language: language.name().to_string(),
        mean: macro_average(&per_site),
        per_site,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aw_annotate::{DictionaryAnnotator, MatchMode};
    use aw_sitegen::{generate_dealers, DealersConfig};

    #[test]
    fn split_is_disjoint_and_covering() {
        let ds = generate_dealers(&DealersConfig::small(7, 1));
        let (train, test) = split_half(&ds.sites);
        assert_eq!(train.len(), 4);
        assert_eq!(test.len(), 3);
        let ids: std::collections::HashSet<usize> =
            train.iter().chain(&test).map(|s| s.id).collect();
        assert_eq!(ids.len(), 7);
    }

    #[test]
    fn model_learning_recovers_annotator_params() {
        let ds = generate_dealers(&DealersConfig::small(30, 2));
        let annotator = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
        let (train, _) = split_half(&ds.sites);
        let model = learn_model(&train, |s| annotator.annotate(&s.site));
        assert!(
            (0.1..=0.45).contains(&model.annotator.r),
            "r = {}",
            model.annotator.r
        );
        assert!(model.annotator.p > 0.9, "p = {}", model.annotator.p);
        // Publication model learned real features.
        assert!(model.publication.schema.len() > 5);
    }

    #[test]
    fn ntw_beats_naive_on_dealers_sample() {
        let ds = generate_dealers(&DealersConfig::small(16, 3));
        let annotator = DictionaryAnnotator::new(ds.dictionary.iter(), MatchMode::Contains);
        let labels_of = |s: &GeneratedSite| annotator.annotate(&s.site);
        let (train, test) = split_half(&ds.sites);
        let model = learn_model(&train, labels_of);
        let ntw = evaluate(
            &test,
            labels_of,
            WrapperLanguage::XPath,
            Method::Ntw,
            &model,
        );
        let naive = evaluate(
            &test,
            labels_of,
            WrapperLanguage::XPath,
            Method::Naive,
            &model,
        );
        assert!(
            ntw.mean.f1 > naive.mean.f1,
            "NTW {:?} vs NAIVE {:?}",
            ntw.mean,
            naive.mean
        );
        assert!(ntw.mean.precision > naive.mean.precision);
    }

    #[test]
    fn method_metadata() {
        assert_eq!(Method::Naive.name(), "NAIVE");
        assert_eq!(Method::Ntw.mode(), Some(RankingMode::Full));
        assert_eq!(Method::Naive.mode(), None);
        assert_eq!(Method::NtwL.name(), "NTW-L");
        assert_eq!(Method::NtwX.mode(), Some(RankingMode::PublicationOnly));
    }
}
