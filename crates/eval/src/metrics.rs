//! Precision / recall / F1 against gold node sets.

use aw_induct::NodeSet;
use serde::Serialize;

/// Precision, recall and their harmonic mean.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct PrF1 {
    /// |extraction ∩ gold| / |extraction|.
    pub precision: f64,
    /// |extraction ∩ gold| / |gold|.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl PrF1 {
    /// The perfect score.
    pub const PERFECT: PrF1 = PrF1 {
        precision: 1.0,
        recall: 1.0,
        f1: 1.0,
    };

    /// The zero score (failed extraction).
    pub const ZERO: PrF1 = PrF1 {
        precision: 0.0,
        recall: 0.0,
        f1: 0.0,
    };

    /// Builds from raw precision/recall.
    pub fn new(precision: f64, recall: f64) -> Self {
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        PrF1 {
            precision,
            recall,
            f1,
        }
    }
}

/// Scores an extraction against gold.
///
/// Conventions: empty gold + empty extraction is perfect; an empty
/// extraction against nonempty gold (no wrapper learned) is zero.
pub fn prf1(extraction: &NodeSet, gold: &NodeSet) -> PrF1 {
    match (extraction.is_empty(), gold.is_empty()) {
        (true, true) => PrF1::PERFECT,
        (true, false) | (false, true) => PrF1::ZERO,
        (false, false) => {
            let tp = extraction.iter().filter(|n| gold.contains(n)).count() as f64;
            PrF1::new(tp / extraction.len() as f64, tp / gold.len() as f64)
        }
    }
}

/// Macro-average over per-site scores (the paper reports dataset-level
/// precision/recall bars; macro averaging weights each website equally,
/// matching "learn a wrapper for each of the 330 websites").
pub fn macro_average(scores: &[PrF1]) -> PrF1 {
    if scores.is_empty() {
        return PrF1::ZERO;
    }
    let n = scores.len() as f64;
    let p = scores.iter().map(|s| s.precision).sum::<f64>() / n;
    let r = scores.iter().map(|s| s.recall).sum::<f64>() / n;
    // Report the mean F1 of sites (not F1 of means) — a site that failed
    // outright should drag the aggregate down symmetrically.
    let f1 = scores.iter().map(|s| s.f1).sum::<f64>() / n;
    PrF1 {
        precision: p,
        recall: r,
        f1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aw_dom::{NodeId, PageNode};

    fn nodes(ids: &[u32]) -> NodeSet {
        ids.iter().map(|&i| PageNode::new(0, NodeId(i))).collect()
    }

    #[test]
    fn exact_match_is_perfect() {
        let g = nodes(&[1, 2, 3]);
        assert_eq!(prf1(&g, &g), PrF1::PERFECT);
    }

    #[test]
    fn over_extraction_hurts_precision_only() {
        let gold = nodes(&[1, 2]);
        let ext = nodes(&[1, 2, 3, 4]);
        let s = prf1(&ext, &gold);
        assert_eq!(s.precision, 0.5);
        assert_eq!(s.recall, 1.0);
        assert!((s.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn under_extraction_hurts_recall_only() {
        let gold = nodes(&[1, 2, 3, 4]);
        let ext = nodes(&[1]);
        let s = prf1(&ext, &gold);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 0.25);
    }

    #[test]
    fn disjoint_is_zero() {
        let s = prf1(&nodes(&[9]), &nodes(&[1]));
        assert_eq!(s, PrF1::new(0.0, 0.0));
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn empty_conventions() {
        assert_eq!(prf1(&nodes(&[]), &nodes(&[])), PrF1::PERFECT);
        assert_eq!(prf1(&nodes(&[]), &nodes(&[1])), PrF1::ZERO);
        assert_eq!(prf1(&nodes(&[1]), &nodes(&[])), PrF1::ZERO);
    }

    #[test]
    fn macro_average_weights_sites_equally() {
        let avg = macro_average(&[PrF1::PERFECT, PrF1::ZERO]);
        assert_eq!(avg.precision, 0.5);
        assert_eq!(avg.recall, 0.5);
        assert_eq!(avg.f1, 0.5);
        assert_eq!(macro_average(&[]), PrF1::ZERO);
    }
}
