//! The reference interpreter: a direct, tree-walking implementation of
//! the fragment semantics.
//!
//! This is the original `evaluate` of this crate, kept verbatim in
//! behavior as the differential-testing oracle for the compiled engines
//! ([`crate::indexed`], [`crate::batch`]). It stays deliberately simple —
//! string tag comparisons, a pre-order walk per `//` step — with one
//! algorithmic fix: `[k]` positions are computed **once per parent**
//! rather than once per candidate node, which removes the accidental
//! O(siblings²) behavior the naive formulation had on wide rows.
//!
//! Semantics follow XPath 1.0 restricted to the fragment:
//!
//! * a path is absolute (anchored at the document root);
//! * `/test` selects matching children of each context node;
//! * `//test` selects matching descendants of each context node;
//! * `[@a='v']` keeps elements with that attribute value;
//! * `[k]` keeps a node if it is the k-th child *among same-test
//!   siblings* of its parent (so `td[2]` is the second `td` child, as in
//!   the paper's Equation (3));
//! * results are deduplicated and returned in document order.

use crate::ast::{Axis, NodeTest, Predicate, Step, XPath};
use aw_dom::{Document, NodeId};
use std::collections::HashMap;

/// Evaluates `path` on `doc`, returning matching nodes in document order.
pub fn evaluate(path: &XPath, doc: &Document) -> Vec<NodeId> {
    let mut context: Vec<NodeId> = vec![doc.root()];
    for step in &path.steps {
        context = apply_step(doc, &context, step);
        if context.is_empty() {
            break;
        }
    }
    context
}

/// Per-step memo: parent → 1-based position of each test-matching child.
/// Filled lazily, once per distinct parent encountered by the step.
type PositionCache = HashMap<NodeId, HashMap<NodeId, usize>>;

fn apply_step(doc: &Document, context: &[NodeId], step: &Step) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = Vec::new();
    let mut positions: PositionCache = HashMap::new();
    for &ctx in context {
        match step.axis {
            Axis::Child => {
                select_from(
                    doc,
                    doc.children(ctx).iter().copied(),
                    step,
                    &mut positions,
                    &mut out,
                );
            }
            Axis::Descendant => {
                // Descendants of ctx, excluding ctx itself.
                let iter = doc.preorder(ctx).skip(1);
                select_from(doc, iter, step, &mut positions, &mut out);
            }
        }
    }
    // Document order + dedup. Arena ids are allocated in document order for
    // parsed/built documents, so sorting by id is sorting by position.
    out.sort_unstable();
    out.dedup();
    out
}

fn select_from(
    doc: &Document,
    candidates: impl Iterator<Item = NodeId>,
    step: &Step,
    positions: &mut PositionCache,
    out: &mut Vec<NodeId>,
) {
    for id in candidates {
        if matches_test(doc, id, &step.test)
            && step
                .predicates
                .iter()
                .all(|p| matches_pred(doc, id, step, positions, p))
        {
            out.push(id);
        }
    }
}

fn matches_test(doc: &Document, id: NodeId, test: &NodeTest) -> bool {
    match test {
        NodeTest::Tag(t) => doc.tag(id) == Some(t.as_str()),
        NodeTest::AnyElement => doc.is_element(id),
        NodeTest::Text => doc.is_text(id),
    }
}

fn matches_pred(
    doc: &Document,
    id: NodeId,
    step: &Step,
    positions: &mut PositionCache,
    pred: &Predicate,
) -> bool {
    match pred {
        Predicate::Attr { name, value } => doc.attr(id, name) == Some(value.as_str()),
        Predicate::Position(k) => {
            let Some(parent) = doc.parent(id) else {
                return false;
            };
            let by_child = positions.entry(parent).or_insert_with(|| {
                let mut map = HashMap::new();
                let mut pos = 0;
                for &sib in doc.children(parent) {
                    if matches_test(doc, sib, &step.test) {
                        pos += 1;
                        map.insert(sib, pos);
                    }
                }
                map
            });
            by_child.get(&id) == Some(k)
        }
    }
}
