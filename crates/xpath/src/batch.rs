//! Shared-prefix batch evaluation of wrapper candidate sets.
//!
//! The wrapper space `W(L)` of §4 holds up to `2^k` structurally-similar
//! xpaths: most candidates share long step prefixes (they were induced
//! from overlapping label subsets of one site). Evaluating each candidate
//! from the document root repeats the shared prefix work once per
//! candidate; a [`BatchEvaluator`] instead arranges the compiled steps in
//! a prefix trie and walks it depth-first, so every distinct step prefix
//! is evaluated **once per document** and its intermediate context
//! node-set is reused by all candidates below it.
//!
//! The trie is **predicate-aware**: edges are keyed by the step's
//! `(axis, node test)` pair only, and steps differing just in their
//! `[k]` / `[@a='v']` predicates become *variants* of one trie node.
//! Enumerated spaces are full of such pairs (`u` vs `u[1]`, `text()` vs
//! `text()[2]`), so the expensive part — traversing children or probing
//! posting lists — runs once per node, and each variant fans out with an
//! integer-only predicate filter over the shared bare node-set.
//!
//! The evaluator is built once per candidate set and applied to any
//! number of pages — compile cost and trie construction amortize across
//! a whole site. For a multi-site candidate set, shard it per site first
//! ([`crate::ShardedBatch`]): prefix sharing is strongest within one
//! site's space.
//!
//! ## Cross-page template replay
//!
//! Pages of one site are instances of one rendering script: dealer pages
//! differ in *text* and per-record *attribute values*, not in skeleton.
//! The evaluator therefore keeps a [`TemplateCache`] keyed by
//! [`aw_dom::DocIndex::template_fingerprint`]. The first page of a
//! template evaluates normally; the second *records* every trie node's
//! bare node-set and every variant's selection (in pre-order rank space,
//! which matching fingerprints make transferable); later pages *replay*
//! the recorded sets instead of traversing:
//!
//! * bare `(axis, test)` node-sets and `[k]` position selections are
//!   structure-determined, so they transfer verbatim (ranks are remapped
//!   to this page's `NodeId`s at materialization);
//! * `[@a='v']` selections are **re-filtered per page** (the fingerprint
//!   ignores attribute values) over the cached bare set — integer
//!   compares only — and the subtrie below stays on the replay path only
//!   while the re-filtered selection matches the recording, falling back
//!   to fresh traversal from that point otherwise.
//!
//! Replay output is byte-identical to cache-off evaluation — enforced by
//! `tests/xpath_differential.rs` across engines and thread counts.

use crate::ast::{Axis, XPath};
use crate::compile::{CompiledPred, CompiledTest, CompiledXPath};
use crate::indexed::{
    apply_step_bare, apply_step_with, filter_resolved, materialize, resolve_preds,
};
use aw_dom::{DocIndex, Document, NodeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One predicate list under a trie node: candidates whose step here has
/// exactly these predicates, plus the subtrie that follows them.
#[derive(Debug)]
struct Variant {
    /// The step's predicates (often empty), in source order.
    predicates: Vec<CompiledPred>,
    /// Child trie nodes (indices into the arena).
    children: Vec<u32>,
    /// Indices of input paths that end at this variant.
    terminals: Vec<u32>,
    /// Dense evaluator-wide variant index (slot in a
    /// [`Trace::selected`]).
    gid: u32,
}

/// A trie node: one shared `(axis, test)` application plus its predicate
/// variants.
#[derive(Debug)]
struct TrieNode {
    /// Axis of the shared step.
    axis: Axis,
    /// Node test of the shared step.
    test: CompiledTest,
    /// Distinct predicate lists observed for this `(axis, test)` edge.
    variants: Vec<Variant>,
}

/// The per-template record of one page's evaluation, in pre-order rank
/// space (transferable between same-fingerprint pages).
#[derive(Debug)]
struct Trace {
    /// Bare `(axis, test)` node-set per trie node; `None` for nodes the
    /// recording never reached (their prefix selected nothing — which a
    /// matching skeleton reproduces).
    bare: Vec<Option<Arc<Vec<u32>>>>,
    /// Post-predicate selection per variant (indexed by `Variant::gid`).
    selected: Vec<Option<Arc<Vec<u32>>>>,
}

/// Per-fingerprint cache state.
#[derive(Debug)]
enum Entry {
    /// Seen once — recording starts on the next page of this template,
    /// so one-shot templates never pay the recording overhead.
    Pending,
    /// Recorded; later pages replay.
    Ready(Arc<Trace>),
}

/// What [`TemplateCache::lookup`] decided for a page.
enum Lookup {
    /// Evaluate normally (first sight of the template, or cache full).
    Bypass,
    /// Evaluate while recording a [`Trace`], then store it.
    Record,
    /// Replay the recorded trace.
    Replay(Arc<Trace>),
}

/// The cross-page result cache of one [`BatchEvaluator`].
///
/// Keyed by `(node count, template fingerprint)`; traces index this
/// evaluator's trie arena, so a cache is never shared between
/// evaluators. Interior-mutable and thread-safe: page-parallel
/// evaluation through `aw_pool::Executor` shares it freely (whichever
/// page records first, replays are byte-identical, so results never
/// depend on scheduling).
#[derive(Debug)]
pub struct TemplateCache {
    /// Maximum tracked templates; beyond it new fingerprints bypass (a
    /// serving process that meets unbounded distinct templates must not
    /// grow without limit).
    capacity: usize,
    state: Mutex<HashMap<(u32, u64), Entry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TemplateCache {
    fn new(capacity: usize) -> TemplateCache {
        TemplateCache {
            capacity,
            state: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn lookup(&self, key: (u32, u64)) -> Lookup {
        let mut state = self.state.lock().unwrap();
        match state.get(&key) {
            Some(Entry::Ready(trace)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Lookup::Replay(Arc::clone(trace))
            }
            Some(Entry::Pending) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Lookup::Record
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                if state.len() < self.capacity {
                    state.insert(key, Entry::Pending);
                }
                Lookup::Bypass
            }
        }
    }

    fn store(&self, key: (u32, u64), trace: Trace) {
        self.state
            .lock()
            .unwrap()
            .insert(key, Entry::Ready(Arc::new(trace)));
    }

    /// `(replayed pages, other pages)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// Default [`TemplateCache`] capacity (distinct templates tracked per
/// evaluator). One evaluator serves one site's candidate set, and real
/// sites render from a handful of scripts, so this is generous.
pub const DEFAULT_TEMPLATE_CAPACITY: usize = 64;

/// Evaluates a fixed set of xpaths against documents with shared-prefix
/// memoization.
#[derive(Debug)]
pub struct BatchEvaluator {
    paths: usize,
    /// Children/terminals of the empty prefix (the document root).
    root: Variant,
    /// Trie arena.
    nodes: Vec<TrieNode>,
    /// Total variant count (gid space of the traces).
    n_variants: u32,
    /// Cross-page template replay cache; `None` when disabled.
    cache: Option<TemplateCache>,
}

impl BatchEvaluator {
    /// Builds an evaluator from compiled paths, with the cross-page
    /// [`TemplateCache`] enabled (disable with
    /// [`BatchEvaluator::with_cache`]).
    pub fn new(paths: &[CompiledXPath]) -> BatchEvaluator {
        let mut root = Variant {
            predicates: Vec::new(),
            children: Vec::new(),
            terminals: Vec::new(),
            gid: 0, // the root variant has no step; its gid is never read
        };
        let mut n_variants: u32 = 0;
        let mut nodes: Vec<TrieNode> = Vec::new();
        for (i, path) in paths.iter().enumerate() {
            // `at` addresses the variant whose subtrie we extend next;
            // `None` is the root (empty prefix).
            let mut at: Option<(usize, usize)> = None;
            for step in &path.steps {
                let found = {
                    let children: &[u32] = match at {
                        None => &root.children,
                        Some((n, v)) => &nodes[n].variants[v].children,
                    };
                    children.iter().copied().find(|&c| {
                        let node = &nodes[c as usize];
                        node.axis == step.axis && node.test == step.test
                    })
                };
                let node_i = match found {
                    Some(c) => c as usize,
                    None => {
                        let c = nodes.len();
                        nodes.push(TrieNode {
                            axis: step.axis,
                            test: step.test,
                            variants: Vec::new(),
                        });
                        match at {
                            None => root.children.push(c as u32),
                            Some((n, v)) => nodes[n].variants[v].children.push(c as u32),
                        }
                        c
                    }
                };
                let var_i = match nodes[node_i]
                    .variants
                    .iter()
                    .position(|v| v.predicates == step.predicates)
                {
                    Some(v) => v,
                    None => {
                        nodes[node_i].variants.push(Variant {
                            predicates: step.predicates.clone(),
                            children: Vec::new(),
                            terminals: Vec::new(),
                            gid: n_variants,
                        });
                        n_variants += 1;
                        nodes[node_i].variants.len() - 1
                    }
                };
                at = Some((node_i, var_i));
            }
            match at {
                None => root.terminals.push(i as u32),
                Some((n, v)) => nodes[n].variants[v].terminals.push(i as u32),
            }
        }
        BatchEvaluator {
            paths: paths.len(),
            root,
            nodes,
            n_variants,
            cache: Some(TemplateCache::new(DEFAULT_TEMPLATE_CAPACITY)),
        }
    }

    /// Enables or disables the cross-page [`TemplateCache`] (enabled by
    /// default; disabling also discards any recorded traces).
    pub fn with_cache(mut self, enabled: bool) -> BatchEvaluator {
        self.set_cache(enabled);
        self
    }

    /// In-place form of [`BatchEvaluator::with_cache`].
    pub fn set_cache(&mut self, enabled: bool) {
        self.cache = enabled.then(|| TemplateCache::new(DEFAULT_TEMPLATE_CAPACITY));
    }

    /// The template cache, when enabled.
    pub fn template_cache(&self) -> Option<&TemplateCache> {
        self.cache.as_ref()
    }

    /// Convenience constructor compiling ASTs first.
    pub fn from_xpaths<'a, I: IntoIterator<Item = &'a XPath>>(paths: I) -> BatchEvaluator {
        let compiled: Vec<CompiledXPath> = paths.into_iter().map(CompiledXPath::compile).collect();
        BatchEvaluator::new(&compiled)
    }

    /// Number of input paths.
    pub fn len(&self) -> usize {
        self.paths
    }

    /// True when built from no paths.
    pub fn is_empty(&self) -> bool {
        self.paths == 0
    }

    /// Number of distinct `(prefix, axis, test)` applications — the
    /// traversal work the trie performs per document. Predicate-aware
    /// merging makes this lower than the number of distinct full steps.
    pub fn distinct_steps(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct `(prefix, full step)` pairs — what
    /// [`Self::distinct_steps`] counted before predicate variants shared
    /// their bare application. The gap to `distinct_steps` is the work
    /// predicate-aware merging saves.
    pub fn distinct_variants(&self) -> usize {
        self.nodes.iter().map(|n| n.variants.len()).sum()
    }

    /// Evaluates every path against `doc`.
    ///
    /// Returns one node list per input path, aligned with the order the
    /// paths were given in; each list is sorted in document order and
    /// deduplicated, byte-identical to what
    /// [`crate::reference::evaluate`] returns for that path alone —
    /// whether the page evaluated fresh, recorded a template trace, or
    /// replayed one (see the [module docs](self)).
    pub fn evaluate(&self, doc: &Document) -> Vec<Vec<NodeId>> {
        // Not `is_empty()`: that is true for root-only documents, which still
        // evaluate (to nothing or to the root for the empty path). Only a
        // zero-node `Document::default()` lacks the root entirely.
        #[allow(clippy::len_zero)]
        if doc.len() == 0 {
            return vec![Vec::new(); self.paths];
        }
        let idx = doc.index();
        if let Some(cache) = &self.cache {
            let key = (doc.len() as u32, idx.template_fingerprint());
            match cache.lookup(key) {
                Lookup::Replay(trace) => return self.evaluate_replay(doc, idx, &trace),
                Lookup::Record => {
                    let (results, trace) = self.evaluate_recording(doc, idx);
                    cache.store(key, trace);
                    return results;
                }
                Lookup::Bypass => {}
            }
        }
        self.evaluate_plain(doc, idx)
    }

    /// The direct evaluation path (no trace involved).
    fn evaluate_plain(&self, doc: &Document, idx: &DocIndex) -> Vec<Vec<NodeId>> {
        let mut results: Vec<Vec<NodeId>> = vec![Vec::new(); self.paths];
        let root_ctx: Vec<u32> = vec![idx.rank_of(doc.root())];
        for &t in &self.root.terminals {
            results[t as usize] = materialize(idx, &root_ctx);
        }

        // Depth-first over the trie, carrying the context node-set of the
        // prefix evaluated so far. Each (prefix → bare context) pair is
        // computed exactly once per document.
        let mut stack: Vec<(u32, Vec<u32>)> = Vec::with_capacity(self.root.children.len());
        for &c in &self.root.children {
            stack.push((c, root_ctx.clone()));
        }
        while let Some((node_i, ctx)) = stack.pop() {
            let node = &self.nodes[node_i as usize];
            // With a single predicate variant there is nothing to share:
            // use the fused path (predicates checked during collection,
            // no intermediate bare node-set) — otherwise a lone
            // `//div[@class=..]` would materialize every div first.
            let mut bare: Vec<u32> = if node.variants.len() == 1 {
                Vec::new()
            } else {
                let b = apply_step_bare(doc, idx, &ctx, node.axis, &node.test);
                if b.is_empty() {
                    // Empty context propagates to every candidate below;
                    // their results stay empty without further work.
                    continue;
                }
                b
            };
            let last = node.variants.len() - 1;
            for (vi, variant) in node.variants.iter().enumerate() {
                let selected: Vec<u32> = if node.variants.len() == 1 {
                    match resolve_preds(idx, &variant.predicates) {
                        Some(preds) => {
                            apply_step_with(doc, idx, &ctx, node.axis, &node.test, &preds)
                        }
                        // An attribute value absent from this document.
                        None => Vec::new(),
                    }
                } else if variant.predicates.is_empty() {
                    if vi == last {
                        std::mem::take(&mut bare)
                    } else {
                        bare.clone()
                    }
                } else {
                    match resolve_preds(idx, &variant.predicates) {
                        Some(preds) => filter_resolved(idx, &node.test, &preds, &bare),
                        // An attribute value absent from this document.
                        None => Vec::new(),
                    }
                };
                if selected.is_empty() {
                    continue;
                }
                for &t in &variant.terminals {
                    results[t as usize] = materialize(idx, &selected);
                }
                if let Some((&last_child, rest)) = variant.children.split_last() {
                    for &c in rest {
                        stack.push((c, selected.clone()));
                    }
                    stack.push((last_child, selected));
                }
            }
        }
        results
    }

    /// Evaluates while recording a [`Trace`]: every trie node's bare set
    /// and every variant's selection, as sharable `Arc`s in rank space.
    ///
    /// Unlike [`BatchEvaluator::evaluate_plain`], single-variant nodes
    /// give up their fused collect-and-filter path here — the bare set
    /// must exist to be recorded. That one-page cost is what replays
    /// amortize away.
    fn evaluate_recording(&self, doc: &Document, idx: &DocIndex) -> (Vec<Vec<NodeId>>, Trace) {
        let mut results: Vec<Vec<NodeId>> = vec![Vec::new(); self.paths];
        let mut trace = Trace {
            bare: vec![None; self.nodes.len()],
            selected: vec![None; self.n_variants as usize],
        };
        let root_ctx: Arc<Vec<u32>> = Arc::new(vec![idx.rank_of(doc.root())]);
        for &t in &self.root.terminals {
            results[t as usize] = materialize(idx, &root_ctx);
        }
        let mut stack: Vec<(u32, Arc<Vec<u32>>)> = self
            .root
            .children
            .iter()
            .map(|&c| (c, Arc::clone(&root_ctx)))
            .collect();
        while let Some((node_i, ctx)) = stack.pop() {
            let node = &self.nodes[node_i as usize];
            let bare = Arc::new(apply_step_bare(doc, idx, &ctx, node.axis, &node.test));
            trace.bare[node_i as usize] = Some(Arc::clone(&bare));
            if bare.is_empty() {
                // Empty context propagates to every candidate below; the
                // unreached subtrie stays `None` in the trace, which a
                // matching skeleton reproduces on replay.
                continue;
            }
            for variant in &node.variants {
                let selected: Arc<Vec<u32>> = if variant.predicates.is_empty() {
                    Arc::clone(&bare)
                } else {
                    Arc::new(match resolve_preds(idx, &variant.predicates) {
                        Some(preds) => filter_resolved(idx, &node.test, &preds, &bare),
                        // An attribute value absent from this document.
                        None => Vec::new(),
                    })
                };
                trace.selected[variant.gid as usize] = Some(Arc::clone(&selected));
                if selected.is_empty() {
                    continue;
                }
                for &t in &variant.terminals {
                    results[t as usize] = materialize(idx, &selected);
                }
                for &c in &variant.children {
                    stack.push((c, Arc::clone(&selected)));
                }
            }
        }
        (results, trace)
    }

    /// Evaluates by replaying a recorded [`Trace`] onto a page with the
    /// same template fingerprint.
    ///
    /// Matching fingerprints guarantee identical rank topology, so bare
    /// node-sets and position-predicate selections transfer verbatim
    /// (ranks are remapped to this page's `NodeId`s at
    /// materialization). Attribute predicates are re-filtered per page
    /// over the cached bare set; the subtrie below one keeps replaying
    /// only while the fresh selection equals the recorded one, and
    /// otherwise falls back to fresh traversal from that point.
    fn evaluate_replay(&self, doc: &Document, idx: &DocIndex, trace: &Trace) -> Vec<Vec<NodeId>> {
        /// Context of a pending trie node during replay.
        enum Ctx {
            /// Context equals the recording's — consume the trace.
            Trusted,
            /// An attribute re-filter diverged upstream — traverse.
            Fresh(Arc<Vec<u32>>),
        }

        let mut results: Vec<Vec<NodeId>> = vec![Vec::new(); self.paths];
        let root_ctx: Vec<u32> = vec![idx.rank_of(doc.root())];
        for &t in &self.root.terminals {
            results[t as usize] = materialize(idx, &root_ctx);
        }
        let mut stack: Vec<(u32, Ctx)> = self
            .root
            .children
            .iter()
            .map(|&c| (c, Ctx::Trusted))
            .collect();
        while let Some((node_i, ctx)) = stack.pop() {
            let node = &self.nodes[node_i as usize];
            match ctx {
                Ctx::Trusted => {
                    // `None` = the recording never reached this node; a
                    // matching skeleton cannot reach it either.
                    let Some(bare) = trace.bare[node_i as usize].as_ref() else {
                        continue;
                    };
                    if bare.is_empty() {
                        continue;
                    }
                    for variant in &node.variants {
                        let has_attr = variant
                            .predicates
                            .iter()
                            .any(|p| matches!(p, CompiledPred::Attr { .. }));
                        if !has_attr {
                            // Bare or position-only selections are
                            // structure-determined: transfer verbatim.
                            let Some(selected) = trace.selected[variant.gid as usize].as_ref()
                            else {
                                continue;
                            };
                            if selected.is_empty() {
                                continue;
                            }
                            for &t in &variant.terminals {
                                results[t as usize] = materialize(idx, selected);
                            }
                            for &c in &variant.children {
                                stack.push((c, Ctx::Trusted));
                            }
                        } else {
                            // The fingerprint ignores attribute values:
                            // re-filter on this page (integer compares
                            // over the shared bare set).
                            let fresh: Vec<u32> = match resolve_preds(idx, &variant.predicates) {
                                Some(preds) => filter_resolved(idx, &node.test, &preds, bare),
                                None => Vec::new(),
                            };
                            let agrees = trace.selected[variant.gid as usize]
                                .as_deref()
                                .is_some_and(|recorded| *recorded == fresh);
                            if fresh.is_empty() {
                                continue;
                            }
                            for &t in &variant.terminals {
                                results[t as usize] = materialize(idx, &fresh);
                            }
                            if agrees {
                                for &c in &variant.children {
                                    stack.push((c, Ctx::Trusted));
                                }
                            } else {
                                let shared = Arc::new(fresh);
                                for &c in &variant.children {
                                    stack.push((c, Ctx::Fresh(Arc::clone(&shared))));
                                }
                            }
                        }
                    }
                }
                Ctx::Fresh(ctx) => {
                    let bare = apply_step_bare(doc, idx, &ctx, node.axis, &node.test);
                    if bare.is_empty() {
                        continue;
                    }
                    for variant in &node.variants {
                        let selected: Vec<u32> = if variant.predicates.is_empty() {
                            bare.clone()
                        } else {
                            match resolve_preds(idx, &variant.predicates) {
                                Some(preds) => filter_resolved(idx, &node.test, &preds, &bare),
                                None => Vec::new(),
                            }
                        };
                        if selected.is_empty() {
                            continue;
                        }
                        for &t in &variant.terminals {
                            results[t as usize] = materialize(idx, &selected);
                        }
                        let shared = Arc::new(selected);
                        for &c in &variant.children {
                            stack.push((c, Ctx::Fresh(Arc::clone(&shared))));
                        }
                    }
                }
            }
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_xpath;
    use crate::reference;
    use aw_dom::parse;

    fn dealer_page() -> aw_dom::Document {
        parse(
            "<div class='dealerlinks'>\
               <tr><td><u>PORTER FURNITURE</u><br>201 HWY<br>NEW ALBANY, MS 38652</td></tr>\
               <tr><td><u>WOODLAND FURNITURE</u><br>123 Main St.<br>WOODLAND, MS 3977</td></tr>\
             </div><div class='footer'>contact us</div>",
        )
    }

    /// A wrapper-space-shaped candidate set: common prefix, diverging
    /// suffixes (what enumeration actually produces).
    fn candidate_set() -> Vec<XPath> {
        [
            "//div[@class='dealerlinks']/tr/td/u/text()",
            "//div[@class='dealerlinks']/tr/td/u[1]/text()[1]",
            "//div[@class='dealerlinks']/tr/td//text()",
            "//div[@class='dealerlinks']/tr/td/text()",
            "//div[@class='dealerlinks']/tr/td/text()[2]",
            "//div/tr/td/u/text()",
            "//div//text()",
            "//text()",
        ]
        .iter()
        .map(|s| parse_xpath(s).unwrap())
        .collect()
    }

    #[test]
    fn batch_matches_reference_per_path() {
        let doc = dealer_page();
        let paths = candidate_set();
        let batch = BatchEvaluator::from_xpaths(&paths);
        let results = batch.evaluate(&doc);
        assert_eq!(results.len(), paths.len());
        for (path, got) in paths.iter().zip(&results) {
            assert_eq!(got, &reference::evaluate(path, &doc), "mismatch for {path}");
        }
    }

    #[test]
    fn trie_shares_prefixes_and_merges_predicates() {
        let paths = candidate_set();
        let batch = BatchEvaluator::from_xpaths(&paths);
        let total_steps: usize = paths.iter().map(|p| p.steps.len()).sum();
        assert!(
            batch.distinct_steps() < total_steps,
            "no sharing: {} trie nodes for {} total steps",
            batch.distinct_steps(),
            total_steps
        );
        // The five rules sharing `//div[@class=..]/tr/td` contribute that
        // prefix once: 30 total steps collapse to 17 distinct full steps
        // (the predicate variants), and predicate-aware merging shares
        // the bare application of `//div`↔`//div[@class=..]`, `u`↔`u[1]`
        // and `text()`↔`text()[2]`, leaving 14 traversals.
        assert_eq!(batch.distinct_variants(), 17);
        assert_eq!(batch.distinct_steps(), 14);
    }

    #[test]
    fn predicate_variants_agree_with_reference() {
        // Steps identical up to predicates: all four share one `//td`
        // traversal, and each `td` variant context shares one `/text()`
        // traversal — 3 bare applications for 6 distinct full steps.
        let doc = dealer_page();
        let paths: Vec<XPath> = [
            "//td/text()",
            "//td[1]/text()",
            "//td/text()[2]",
            "//td[1]/text()[3]",
        ]
        .iter()
        .map(|s| parse_xpath(s).unwrap())
        .collect();
        let batch = BatchEvaluator::from_xpaths(&paths);
        assert_eq!(batch.distinct_steps(), 3);
        assert_eq!(batch.distinct_variants(), 6);
        for (path, got) in paths.iter().zip(batch.evaluate(&doc)) {
            assert_eq!(got, reference::evaluate(path, &doc), "mismatch for {path}");
        }
    }

    #[test]
    fn empty_set_and_empty_doc() {
        let batch = BatchEvaluator::new(&[]);
        assert!(batch.is_empty());
        assert!(batch.evaluate(&dealer_page()).is_empty());

        let paths = candidate_set();
        let batch = BatchEvaluator::from_xpaths(&paths);
        let results = batch.evaluate(&aw_dom::Document::default());
        assert_eq!(results.len(), paths.len());
        assert!(results.iter().all(Vec::is_empty));
    }

    #[test]
    fn duplicate_paths_each_get_results() {
        let xp = parse_xpath("//td/u/text()").unwrap();
        let batch = BatchEvaluator::from_xpaths(vec![&xp, &xp]);
        let doc = dealer_page();
        let results = batch.evaluate(&doc);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], reference::evaluate(&xp, &doc));
    }

    /// Pages rendered from one template: identical skeletons, different
    /// text and attribute values.
    fn template_pages() -> Vec<aw_dom::Document> {
        [
            "ALPHA;1 Elm;d1",
            "BETA;2 Oak;d2",
            "GAMMA;3 Fir;d3",
            "DELTA;4 Ash;d4",
        ]
        .iter()
        .map(|spec| {
            let mut parts = spec.split(';');
            let (name, street, href) = (
                parts.next().unwrap(),
                parts.next().unwrap(),
                parts.next().unwrap(),
            );
            parse(&format!(
                "<div class='dealerlinks'>\
                       <tr><td><a href='/d/{href}'><u>{name}</u></a><br>{street}</td></tr>\
                     </div><div class='footer'>contact us</div>",
            ))
        })
        .collect()
    }

    #[test]
    fn template_replay_is_byte_identical_to_reference() {
        let pages = template_pages();
        let fp = pages[0].index().template_fingerprint();
        for page in &pages {
            assert_eq!(
                page.index().template_fingerprint(),
                fp,
                "pages share one template"
            );
        }
        let paths = candidate_set();
        let batch = BatchEvaluator::from_xpaths(&paths);
        for (p, doc) in pages.iter().enumerate() {
            for (path, got) in paths.iter().zip(batch.evaluate(doc)) {
                assert_eq!(got, reference::evaluate(path, doc), "page {p}, path {path}");
            }
        }
        let (hits, misses) = batch.template_cache().unwrap().stats();
        assert_eq!(
            (hits, misses),
            (2, 2),
            "page 0 bypasses, page 1 records, pages 2-3 replay"
        );
    }

    #[test]
    fn replay_revalidates_attribute_selections_per_page() {
        // Same skeleton, but the listing container's class differs on the
        // last two pages — the fingerprint ignores attribute values, so
        // replay must re-filter and fall back below the divergence.
        let make = |class: &str, name: &str| {
            parse(&format!(
                "<div class='{class}'><tr><td><u>{name}</u><br>addr</td></tr></div>"
            ))
        };
        let pages = [
            make("list", "ALPHA"),
            make("list", "BETA"),
            make("other", "GAMMA"),
            make("other", "DELTA"),
        ];
        let paths: Vec<XPath> = [
            // Selects on the first two pages only.
            "//div[@class='list']/tr/td/u/text()",
            // Selects on the LAST two pages only: its subtrie is never
            // reached during recording, so replay must traverse fresh.
            "//div[@class='other']/tr/td/u/text()",
            // Attribute-free: replays verbatim everywhere.
            "//div/tr/td/u/text()",
            "//td/text()[1]",
        ]
        .iter()
        .map(|s| parse_xpath(s).unwrap())
        .collect();
        let batch = BatchEvaluator::from_xpaths(&paths);
        for (p, doc) in pages.iter().enumerate() {
            for (path, got) in paths.iter().zip(batch.evaluate(doc)) {
                assert_eq!(got, reference::evaluate(path, doc), "page {p}, path {path}");
            }
        }
        let (hits, _) = batch.template_cache().unwrap().stats();
        assert_eq!(hits, 2, "pages 2-3 replay (with re-validation)");
    }

    #[test]
    fn cache_disabled_matches_cache_enabled() {
        let pages = template_pages();
        let paths = candidate_set();
        let cached = BatchEvaluator::from_xpaths(&paths);
        let uncached = BatchEvaluator::from_xpaths(&paths).with_cache(false);
        assert!(uncached.template_cache().is_none());
        for doc in &pages {
            assert_eq!(cached.evaluate(doc), uncached.evaluate(doc));
        }
    }

    #[test]
    fn repeated_evaluation_of_one_document_replays() {
        let doc = dealer_page();
        let paths = candidate_set();
        let batch = BatchEvaluator::from_xpaths(&paths);
        let first = batch.evaluate(&doc);
        for _ in 0..3 {
            assert_eq!(batch.evaluate(&doc), first);
        }
        let (hits, misses) = batch.template_cache().unwrap().stats();
        assert_eq!((hits, misses), (2, 2));
    }

    #[test]
    fn reusable_across_pages() {
        let paths = candidate_set();
        let batch = BatchEvaluator::from_xpaths(&paths);
        let page2 = parse(
            "<div class='dealerlinks'>\
               <tr><td><u>ACME CHAIRS</u><br>9 Low Rd<br>TUPELO, MS 38801</td></tr>\
             </div><div class='footer'>contact us</div>",
        );
        for doc in [dealer_page(), page2] {
            for (path, got) in paths.iter().zip(batch.evaluate(&doc)) {
                assert_eq!(got, reference::evaluate(path, &doc), "mismatch for {path}");
            }
        }
    }
}
