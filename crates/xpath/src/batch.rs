//! Shared-prefix batch evaluation of wrapper candidate sets.
//!
//! The wrapper space `W(L)` of §4 holds up to `2^k` structurally-similar
//! xpaths: most candidates share long step prefixes (they were induced
//! from overlapping label subsets of one site). Evaluating each candidate
//! from the document root repeats the shared prefix work once per
//! candidate; a [`BatchEvaluator`] instead arranges the compiled steps in
//! a prefix trie and walks it depth-first, so every distinct step prefix
//! is evaluated **once per document** and its intermediate context
//! node-set is reused by all candidates below it.
//!
//! The trie is **predicate-aware**: edges are keyed by the step's
//! `(axis, node test)` pair only, and steps differing just in their
//! `[k]` / `[@a='v']` predicates become *variants* of one trie node.
//! Enumerated spaces are full of such pairs (`u` vs `u[1]`, `text()` vs
//! `text()[2]`), so the expensive part — traversing children or probing
//! posting lists — runs once per node, and each variant fans out with an
//! integer-only predicate filter over the shared bare node-set.
//!
//! The evaluator is built once per candidate set and applied to any
//! number of pages — compile cost and trie construction amortize across
//! a whole site. For a multi-site candidate set, shard it per site first
//! ([`crate::ShardedBatch`]): prefix sharing is strongest within one
//! site's space.

use crate::ast::{Axis, XPath};
use crate::compile::{CompiledPred, CompiledTest, CompiledXPath};
use crate::indexed::{
    apply_step_bare, apply_step_with, filter_resolved, materialize, resolve_preds,
};
use aw_dom::{Document, NodeId};

/// One predicate list under a trie node: candidates whose step here has
/// exactly these predicates, plus the subtrie that follows them.
#[derive(Debug)]
struct Variant {
    /// The step's predicates (often empty), in source order.
    predicates: Vec<CompiledPred>,
    /// Child trie nodes (indices into the arena).
    children: Vec<u32>,
    /// Indices of input paths that end at this variant.
    terminals: Vec<u32>,
}

/// A trie node: one shared `(axis, test)` application plus its predicate
/// variants.
#[derive(Debug)]
struct TrieNode {
    /// Axis of the shared step.
    axis: Axis,
    /// Node test of the shared step.
    test: CompiledTest,
    /// Distinct predicate lists observed for this `(axis, test)` edge.
    variants: Vec<Variant>,
}

/// Evaluates a fixed set of xpaths against documents with shared-prefix
/// memoization.
#[derive(Debug)]
pub struct BatchEvaluator {
    paths: usize,
    /// Children/terminals of the empty prefix (the document root).
    root: Variant,
    /// Trie arena.
    nodes: Vec<TrieNode>,
}

impl BatchEvaluator {
    /// Builds an evaluator from compiled paths.
    pub fn new(paths: &[CompiledXPath]) -> BatchEvaluator {
        let mut root = Variant {
            predicates: Vec::new(),
            children: Vec::new(),
            terminals: Vec::new(),
        };
        let mut nodes: Vec<TrieNode> = Vec::new();
        for (i, path) in paths.iter().enumerate() {
            // `at` addresses the variant whose subtrie we extend next;
            // `None` is the root (empty prefix).
            let mut at: Option<(usize, usize)> = None;
            for step in &path.steps {
                let found = {
                    let children: &[u32] = match at {
                        None => &root.children,
                        Some((n, v)) => &nodes[n].variants[v].children,
                    };
                    children.iter().copied().find(|&c| {
                        let node = &nodes[c as usize];
                        node.axis == step.axis && node.test == step.test
                    })
                };
                let node_i = match found {
                    Some(c) => c as usize,
                    None => {
                        let c = nodes.len();
                        nodes.push(TrieNode {
                            axis: step.axis,
                            test: step.test,
                            variants: Vec::new(),
                        });
                        match at {
                            None => root.children.push(c as u32),
                            Some((n, v)) => nodes[n].variants[v].children.push(c as u32),
                        }
                        c
                    }
                };
                let var_i = match nodes[node_i]
                    .variants
                    .iter()
                    .position(|v| v.predicates == step.predicates)
                {
                    Some(v) => v,
                    None => {
                        nodes[node_i].variants.push(Variant {
                            predicates: step.predicates.clone(),
                            children: Vec::new(),
                            terminals: Vec::new(),
                        });
                        nodes[node_i].variants.len() - 1
                    }
                };
                at = Some((node_i, var_i));
            }
            match at {
                None => root.terminals.push(i as u32),
                Some((n, v)) => nodes[n].variants[v].terminals.push(i as u32),
            }
        }
        BatchEvaluator {
            paths: paths.len(),
            root,
            nodes,
        }
    }

    /// Convenience constructor compiling ASTs first.
    pub fn from_xpaths<'a, I: IntoIterator<Item = &'a XPath>>(paths: I) -> BatchEvaluator {
        let compiled: Vec<CompiledXPath> = paths.into_iter().map(CompiledXPath::compile).collect();
        BatchEvaluator::new(&compiled)
    }

    /// Number of input paths.
    pub fn len(&self) -> usize {
        self.paths
    }

    /// True when built from no paths.
    pub fn is_empty(&self) -> bool {
        self.paths == 0
    }

    /// Number of distinct `(prefix, axis, test)` applications — the
    /// traversal work the trie performs per document. Predicate-aware
    /// merging makes this lower than the number of distinct full steps.
    pub fn distinct_steps(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct `(prefix, full step)` pairs — what
    /// [`Self::distinct_steps`] counted before predicate variants shared
    /// their bare application. The gap to `distinct_steps` is the work
    /// predicate-aware merging saves.
    pub fn distinct_variants(&self) -> usize {
        self.nodes.iter().map(|n| n.variants.len()).sum()
    }

    /// Evaluates every path against `doc`.
    ///
    /// Returns one node list per input path, aligned with the order the
    /// paths were given in; each list is sorted in document order and
    /// deduplicated, byte-identical to what
    /// [`crate::reference::evaluate`] returns for that path alone.
    pub fn evaluate(&self, doc: &Document) -> Vec<Vec<NodeId>> {
        let mut results: Vec<Vec<NodeId>> = vec![Vec::new(); self.paths];
        // Not `is_empty()`: that is true for root-only documents, which still
        // evaluate (to nothing or to the root for the empty path). Only a
        // zero-node `Document::default()` lacks the root entirely.
        #[allow(clippy::len_zero)]
        if doc.len() == 0 {
            return results;
        }
        let idx = doc.index();
        let root_ctx: Vec<u32> = vec![idx.rank_of(doc.root())];
        for &t in &self.root.terminals {
            results[t as usize] = materialize(idx, &root_ctx);
        }

        // Depth-first over the trie, carrying the context node-set of the
        // prefix evaluated so far. Each (prefix → bare context) pair is
        // computed exactly once per document.
        let mut stack: Vec<(u32, Vec<u32>)> = Vec::with_capacity(self.root.children.len());
        for &c in &self.root.children {
            stack.push((c, root_ctx.clone()));
        }
        while let Some((node_i, ctx)) = stack.pop() {
            let node = &self.nodes[node_i as usize];
            // With a single predicate variant there is nothing to share:
            // use the fused path (predicates checked during collection,
            // no intermediate bare node-set) — otherwise a lone
            // `//div[@class=..]` would materialize every div first.
            let mut bare: Vec<u32> = if node.variants.len() == 1 {
                Vec::new()
            } else {
                let b = apply_step_bare(doc, idx, &ctx, node.axis, &node.test);
                if b.is_empty() {
                    // Empty context propagates to every candidate below;
                    // their results stay empty without further work.
                    continue;
                }
                b
            };
            let last = node.variants.len() - 1;
            for (vi, variant) in node.variants.iter().enumerate() {
                let selected: Vec<u32> = if node.variants.len() == 1 {
                    match resolve_preds(idx, &variant.predicates) {
                        Some(preds) => {
                            apply_step_with(doc, idx, &ctx, node.axis, &node.test, &preds)
                        }
                        // An attribute value absent from this document.
                        None => Vec::new(),
                    }
                } else if variant.predicates.is_empty() {
                    if vi == last {
                        std::mem::take(&mut bare)
                    } else {
                        bare.clone()
                    }
                } else {
                    match resolve_preds(idx, &variant.predicates) {
                        Some(preds) => filter_resolved(idx, &node.test, &preds, &bare),
                        // An attribute value absent from this document.
                        None => Vec::new(),
                    }
                };
                if selected.is_empty() {
                    continue;
                }
                for &t in &variant.terminals {
                    results[t as usize] = materialize(idx, &selected);
                }
                if let Some((&last_child, rest)) = variant.children.split_last() {
                    for &c in rest {
                        stack.push((c, selected.clone()));
                    }
                    stack.push((last_child, selected));
                }
            }
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_xpath;
    use crate::reference;
    use aw_dom::parse;

    fn dealer_page() -> aw_dom::Document {
        parse(
            "<div class='dealerlinks'>\
               <tr><td><u>PORTER FURNITURE</u><br>201 HWY<br>NEW ALBANY, MS 38652</td></tr>\
               <tr><td><u>WOODLAND FURNITURE</u><br>123 Main St.<br>WOODLAND, MS 3977</td></tr>\
             </div><div class='footer'>contact us</div>",
        )
    }

    /// A wrapper-space-shaped candidate set: common prefix, diverging
    /// suffixes (what enumeration actually produces).
    fn candidate_set() -> Vec<XPath> {
        [
            "//div[@class='dealerlinks']/tr/td/u/text()",
            "//div[@class='dealerlinks']/tr/td/u[1]/text()[1]",
            "//div[@class='dealerlinks']/tr/td//text()",
            "//div[@class='dealerlinks']/tr/td/text()",
            "//div[@class='dealerlinks']/tr/td/text()[2]",
            "//div/tr/td/u/text()",
            "//div//text()",
            "//text()",
        ]
        .iter()
        .map(|s| parse_xpath(s).unwrap())
        .collect()
    }

    #[test]
    fn batch_matches_reference_per_path() {
        let doc = dealer_page();
        let paths = candidate_set();
        let batch = BatchEvaluator::from_xpaths(&paths);
        let results = batch.evaluate(&doc);
        assert_eq!(results.len(), paths.len());
        for (path, got) in paths.iter().zip(&results) {
            assert_eq!(got, &reference::evaluate(path, &doc), "mismatch for {path}");
        }
    }

    #[test]
    fn trie_shares_prefixes_and_merges_predicates() {
        let paths = candidate_set();
        let batch = BatchEvaluator::from_xpaths(&paths);
        let total_steps: usize = paths.iter().map(|p| p.steps.len()).sum();
        assert!(
            batch.distinct_steps() < total_steps,
            "no sharing: {} trie nodes for {} total steps",
            batch.distinct_steps(),
            total_steps
        );
        // The five rules sharing `//div[@class=..]/tr/td` contribute that
        // prefix once: 30 total steps collapse to 17 distinct full steps
        // (the predicate variants), and predicate-aware merging shares
        // the bare application of `//div`↔`//div[@class=..]`, `u`↔`u[1]`
        // and `text()`↔`text()[2]`, leaving 14 traversals.
        assert_eq!(batch.distinct_variants(), 17);
        assert_eq!(batch.distinct_steps(), 14);
    }

    #[test]
    fn predicate_variants_agree_with_reference() {
        // Steps identical up to predicates: all four share one `//td`
        // traversal, and each `td` variant context shares one `/text()`
        // traversal — 3 bare applications for 6 distinct full steps.
        let doc = dealer_page();
        let paths: Vec<XPath> = [
            "//td/text()",
            "//td[1]/text()",
            "//td/text()[2]",
            "//td[1]/text()[3]",
        ]
        .iter()
        .map(|s| parse_xpath(s).unwrap())
        .collect();
        let batch = BatchEvaluator::from_xpaths(&paths);
        assert_eq!(batch.distinct_steps(), 3);
        assert_eq!(batch.distinct_variants(), 6);
        for (path, got) in paths.iter().zip(batch.evaluate(&doc)) {
            assert_eq!(got, reference::evaluate(path, &doc), "mismatch for {path}");
        }
    }

    #[test]
    fn empty_set_and_empty_doc() {
        let batch = BatchEvaluator::new(&[]);
        assert!(batch.is_empty());
        assert!(batch.evaluate(&dealer_page()).is_empty());

        let paths = candidate_set();
        let batch = BatchEvaluator::from_xpaths(&paths);
        let results = batch.evaluate(&aw_dom::Document::default());
        assert_eq!(results.len(), paths.len());
        assert!(results.iter().all(Vec::is_empty));
    }

    #[test]
    fn duplicate_paths_each_get_results() {
        let xp = parse_xpath("//td/u/text()").unwrap();
        let batch = BatchEvaluator::from_xpaths(vec![&xp, &xp]);
        let doc = dealer_page();
        let results = batch.evaluate(&doc);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], reference::evaluate(&xp, &doc));
    }

    #[test]
    fn reusable_across_pages() {
        let paths = candidate_set();
        let batch = BatchEvaluator::from_xpaths(&paths);
        let page2 = parse(
            "<div class='dealerlinks'>\
               <tr><td><u>ACME CHAIRS</u><br>9 Low Rd<br>TUPELO, MS 38801</td></tr>\
             </div><div class='footer'>contact us</div>",
        );
        for doc in [dealer_page(), page2] {
            for (path, got) in paths.iter().zip(batch.evaluate(&doc)) {
                assert_eq!(got, reference::evaluate(path, &doc), "mismatch for {path}");
            }
        }
    }
}
