//! Shared-prefix batch evaluation of wrapper candidate sets.
//!
//! The wrapper space `W(L)` of §4 holds up to `2^k` structurally-similar
//! xpaths: most candidates share long step prefixes (they were induced
//! from overlapping label subsets of one site). Evaluating each candidate
//! from the document root repeats the shared prefix work once per
//! candidate; a [`BatchEvaluator`] instead arranges the compiled steps in
//! a prefix trie and walks it depth-first, so every distinct step prefix
//! is evaluated **once per document** and its intermediate context
//! node-set is reused by all candidates below it.
//!
//! The trie is **predicate-aware**: edges are keyed by the step's
//! `(axis, node test)` pair only, and steps differing just in their
//! `[k]` / `[@a='v']` predicates become *variants* of one trie node.
//! Enumerated spaces are full of such pairs (`u` vs `u[1]`, `text()` vs
//! `text()[2]`), so the expensive part — traversing children or probing
//! posting lists — runs once per node, and each variant fans out with an
//! integer-only predicate filter over the shared bare node-set.
//!
//! The evaluator is built once per candidate set and applied to any
//! number of pages — compile cost and trie construction amortize across
//! a whole site. For a multi-site candidate set, shard it per site first
//! ([`crate::ShardedBatch`]): prefix sharing is strongest within one
//! site's space.
//!
//! ## Cross-page template replay
//!
//! Pages of one site are instances of one rendering script: dealer pages
//! differ in *text* and per-record *attribute values*, not in skeleton.
//! The evaluator therefore keeps a [`TemplateCache`] keyed by
//! [`aw_dom::DocIndex::template_fingerprint`]. The first page of a
//! template evaluates normally; the second *records* every trie node's
//! bare node-set and every variant's selection (in pre-order rank space,
//! which matching fingerprints make transferable); later pages *replay*
//! the recorded sets instead of traversing:
//!
//! * bare `(axis, test)` node-sets and `[k]` position selections are
//!   structure-determined, so they transfer verbatim (ranks are remapped
//!   to this page's `NodeId`s at materialization);
//! * `[@a='v']` selections are **re-filtered per page** (the fingerprint
//!   ignores attribute values) over the cached bare set — integer
//!   compares only — and the subtrie below stays on the replay path only
//!   while the re-filtered selection matches the recording, falling back
//!   to fresh traversal from that point otherwise.
//!
//! ## Frame/record factoring (partial replay)
//!
//! Whole-page fingerprints are all-or-nothing: two listing pages whose
//! record *counts* differ share no trace even when every record subtree
//! is skeleton-identical — which describes most real listings. When
//! [`aw_dom::DocIndex::record_layout`] detects a repeated-record run,
//! each recorded trace is therefore also **factored** into:
//!
//! * a *frame trace* — every set restricted to ranks outside the run, in
//!   *collapsed* coordinates (run ranks removed, later ranks shifted
//!   down), keyed by the layout's frame fingerprint; and
//! * *record traces* (donors) — each set restricted to one record's
//!   span, rebased to record-local ranks, keyed by the record's subtree
//!   fingerprint and recorded once per distinct fingerprint.
//!
//! A later page whose frame fingerprint matches (any record count)
//! replays by **stitching**: the frame part expands around this page's
//! run, each record whose fingerprint has a donor splices the donor in
//! at its span offset, and records without a donor (unseen variants,
//! drifted markup) evaluate *fresh for that span only* — cheap because
//! record subtrees are rank-contiguous, so the per-span work is a
//! clipped traversal (or a postings-range probe under a covering
//! descendant step). The first fresh instance of each new record
//! fingerprint is captured as a donor for future pages. Predicate
//! selections are pointwise (`[k]` positions and `[@a='v']` tests are
//! per-node properties), so they are always re-filtered over the
//! stitched bare set — correct by construction — and the recorded
//! selection is only used to decide whether the subtrie below keeps
//! stitching or falls back to fresh traversal; any gap in the recorded
//! data demotes just that subtrie the same way.
//!
//! Every set a partial replay assembles is exact for its page, so the
//! finished walk is **promoted**: its sets become the whole-page trace
//! for that page's exact fingerprint. A given roster shape (count +
//! record variants) pays the stitching walk once, and every later page
//! of that shape replays verbatim — on variable-length corpora the
//! steady state is the fast full-replay path, with stitching reserved
//! for first sights of new shapes.
//!
//! Replay output — full, partial, and fallback — is byte-identical to
//! cache-off evaluation, enforced by `tests/xpath_differential.rs`
//! across engines and thread counts. [`TemplateCache::replay_stats`]
//! reports how pages and records split across these paths.

use crate::ast::{Axis, XPath};
use crate::compile::{CompiledPred, CompiledTest, CompiledXPath};
use crate::indexed::{
    apply_step_bare, apply_step_with, filter_resolved, materialize, postings_for, resolve_preds,
};
use aw_dom::{DocIndex, Document, NodeId, RecordLayout};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One predicate list under a trie node: candidates whose step here has
/// exactly these predicates, plus the subtrie that follows them.
#[derive(Debug)]
struct Variant {
    /// The step's predicates (often empty), in source order.
    predicates: Vec<CompiledPred>,
    /// Child trie nodes (indices into the arena).
    children: Vec<u32>,
    /// Indices of input paths that end at this variant.
    terminals: Vec<u32>,
    /// Dense evaluator-wide variant index (slot in a
    /// [`Trace::selected`]).
    gid: u32,
}

/// A trie node: one shared `(axis, test)` application plus its predicate
/// variants.
#[derive(Debug)]
struct TrieNode {
    /// Axis of the shared step.
    axis: Axis,
    /// Node test of the shared step.
    test: CompiledTest,
    /// Distinct predicate lists observed for this `(axis, test)` edge.
    variants: Vec<Variant>,
}

/// The per-template record of one page's evaluation, in pre-order rank
/// space (transferable between same-fingerprint pages).
#[derive(Debug)]
struct Trace {
    /// Bare `(axis, test)` node-set per trie node; `None` for nodes the
    /// recording never reached (their prefix selected nothing — which a
    /// matching skeleton reproduces).
    bare: Vec<Option<Arc<Vec<u32>>>>,
    /// Post-predicate selection per variant (indexed by `Variant::gid`).
    selected: Vec<Option<Arc<Vec<u32>>>>,
    /// Per-variant memoized `NodeId` materializations, shared across
    /// replays of rank-monotone pages (see [`SharedSink`]). Populated
    /// lazily on whole-page traces only; factored frames, donors and
    /// captures never materialize and leave it empty.
    terminal_ids: Vec<OnceLock<Arc<Vec<NodeId>>>>,
}

impl Trace {
    fn empty(nodes: usize, variants: usize, terminals: usize) -> Trace {
        Trace {
            bare: vec![None; nodes],
            selected: vec![None; variants],
            terminal_ids: (0..terminals).map(|_| OnceLock::new()).collect(),
        }
    }
}

/// A [`Trace`] factored around one record run: the frame in collapsed
/// rank coordinates plus record-local donor traces per record
/// fingerprint (see the [module docs](self)).
#[derive(Debug)]
struct FactoredTrace {
    /// First rank of the record run on the recorded page; equal on every
    /// page sharing the frame fingerprint (the fingerprint pins it).
    run_start: u32,
    /// The recorded trace restricted to ranks outside the run, with
    /// ranks past the run shifted down by the recorded run length.
    frame: Trace,
    /// Record-local traces keyed by record subtree fingerprint. Grows as
    /// replays capture unseen record variants, bounded by
    /// [`MAX_DONOR_TRACES`].
    donors: Mutex<HashMap<u64, Arc<Trace>>>,
}

/// Per-fingerprint cache state.
#[derive(Debug)]
enum Entry {
    /// Seen once — recording starts on the next page of this template,
    /// so one-shot templates never pay the recording overhead.
    Pending,
    /// Recorded; later pages replay.
    Ready(Arc<Trace>),
}

/// Per-frame-fingerprint cache state.
#[derive(Debug)]
enum FrameEntry {
    /// A page with this frame was seen once; the next one records.
    Pending,
    /// Factored; later pages with this frame stitch a partial replay.
    Ready(Arc<FactoredTrace>),
}

/// What [`TemplateCache::lookup`] decided for a page.
enum Lookup {
    /// Evaluate normally (first sight of the template, or cache full).
    Bypass,
    /// Evaluate while recording a [`Trace`], then store it.
    Record,
    /// Replay the recorded trace.
    Replay(Arc<Trace>),
    /// Stitch a partial replay from a factored trace (the whole-page
    /// fingerprint missed, but the frame matched).
    PartialReplay(Arc<FactoredTrace>),
}

/// The cross-page result cache of one [`BatchEvaluator`].
///
/// Keyed by `(node count, template fingerprint)`; traces index this
/// evaluator's trie arena, so a cache is never shared between
/// evaluators. Interior-mutable and thread-safe: page-parallel
/// evaluation through `aw_pool::Executor` shares it freely (whichever
/// page records first, replays are byte-identical, so results never
/// depend on scheduling).
#[derive(Debug)]
pub struct TemplateCache {
    /// Maximum tracked templates; beyond it new fingerprints bypass (a
    /// serving process that meets unbounded distinct templates must not
    /// grow without limit). Frame fingerprints are bounded separately by
    /// the same figure.
    capacity: usize,
    state: Mutex<HashMap<(u32, u64), Entry>>,
    /// Factored traces keyed by frame fingerprint (the fingerprint
    /// already encodes the collapsed node count).
    frames: Mutex<HashMap<u64, FrameEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    frame_hits: AtomicU64,
    record_replays: AtomicU64,
    record_fallbacks: AtomicU64,
}

/// Replay-path counters of a [`TemplateCache`], split by how each page
/// (and, within partial replays, each record) was evaluated.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Pages replayed verbatim from a whole-page trace.
    pub full_replays: u64,
    /// Pages whose whole-page fingerprint missed but whose frame
    /// matched: the frame replayed and records stitched per fingerprint.
    pub frame_replays: u64,
    /// Records stitched from a matching record trace across all frame
    /// replays.
    pub record_replays: u64,
    /// Records evaluated fresh within frame replays (no recorded trace
    /// for their fingerprint yet — unseen variants, drifted markup).
    pub record_fallbacks: u64,
    /// Pages that evaluated without any replay (first sights,
    /// recordings, cache-capacity bypasses).
    pub misses: u64,
}

impl std::ops::AddAssign for ReplayStats {
    fn add_assign(&mut self, rhs: ReplayStats) {
        self.full_replays += rhs.full_replays;
        self.frame_replays += rhs.frame_replays;
        self.record_replays += rhs.record_replays;
        self.record_fallbacks += rhs.record_fallbacks;
        self.misses += rhs.misses;
    }
}

impl TemplateCache {
    fn new(capacity: usize) -> TemplateCache {
        TemplateCache {
            capacity,
            state: Mutex::new(HashMap::new()),
            frames: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            frame_hits: AtomicU64::new(0),
            record_replays: AtomicU64::new(0),
            record_fallbacks: AtomicU64::new(0),
        }
    }

    /// Decides the evaluation path for a page. An exact whole-page trace
    /// wins (verbatim replay); otherwise a ready factored frame stitches
    /// a partial replay; otherwise the second sight of either the page
    /// or its frame records, and first sights bypass.
    fn lookup(&self, key: (u32, u64), frame_key: Option<u64>) -> Lookup {
        let mut state = self.state.lock().unwrap();
        if let Some(Entry::Ready(trace)) = state.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Lookup::Replay(Arc::clone(trace));
        }
        let exact_pending = matches!(state.get(&key), Some(Entry::Pending));
        let Some(frame_key) = frame_key else {
            // No record layout: the original exact-only protocol.
            self.misses.fetch_add(1, Ordering::Relaxed);
            if exact_pending {
                return Lookup::Record;
            }
            if state.len() < self.capacity {
                state.insert(key, Entry::Pending);
            }
            return Lookup::Bypass;
        };
        let mut frames = self.frames.lock().unwrap();
        if let Some(FrameEntry::Ready(factored)) = frames.get(&frame_key) {
            self.frame_hits.fetch_add(1, Ordering::Relaxed);
            return Lookup::PartialReplay(Arc::clone(factored));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if exact_pending || matches!(frames.get(&frame_key), Some(FrameEntry::Pending)) {
            return Lookup::Record;
        }
        if state.len() < self.capacity {
            state.insert(key, Entry::Pending);
        }
        if frames.len() < self.capacity {
            frames.insert(frame_key, FrameEntry::Pending);
        }
        Lookup::Bypass
    }

    fn store(&self, key: (u32, u64), trace: Trace, factored: Option<(u64, FactoredTrace)>) {
        {
            let mut state = self.state.lock().unwrap();
            if state.len() < self.capacity || state.contains_key(&key) {
                state.insert(key, Entry::Ready(Arc::new(trace)));
            }
        }
        if let Some((frame_key, factored)) = factored {
            let mut frames = self.frames.lock().unwrap();
            match frames.get(&frame_key) {
                // Keep the first factoring — its donor map has been
                // accumulating record variants.
                Some(FrameEntry::Ready(_)) => {}
                Some(FrameEntry::Pending) => {
                    frames.insert(frame_key, FrameEntry::Ready(Arc::new(factored)));
                }
                None => {
                    if frames.len() < self.capacity {
                        frames.insert(frame_key, FrameEntry::Ready(Arc::new(factored)));
                    }
                }
            }
        }
    }

    /// Installs a partial replay's assembled trace as the exact entry
    /// for its whole-page fingerprint. Stitched bare sets and fresh
    /// selections are exact for the page that produced them, so the
    /// trace is indistinguishable from a recording — the next page with
    /// this fingerprint replays verbatim instead of re-stitching. A
    /// roster shape thus pays the stitching walk once. The first ready
    /// entry wins races (replays are byte-identical either way).
    fn promote(&self, key: (u32, u64), trace: Trace) {
        let mut state = self.state.lock().unwrap();
        match state.get(&key) {
            Some(Entry::Ready(_)) => {}
            Some(Entry::Pending) => {
                state.insert(key, Entry::Ready(Arc::new(trace)));
            }
            None => {
                if state.len() < self.capacity {
                    state.insert(key, Entry::Ready(Arc::new(trace)));
                }
            }
        }
    }

    /// `(replayed pages, other pages)` since construction; replayed
    /// counts full and partial (frame) replays together.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed) + self.frame_hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// The replay-path breakdown behind [`TemplateCache::stats`].
    pub fn replay_stats(&self) -> ReplayStats {
        ReplayStats {
            full_replays: self.hits.load(Ordering::Relaxed),
            frame_replays: self.frame_hits.load(Ordering::Relaxed),
            record_replays: self.record_replays.load(Ordering::Relaxed),
            record_fallbacks: self.record_fallbacks.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// Maximum distinct record traces retained per factored frame. Real
/// listings draw records from a handful of optional-field combinations,
/// so this caps pathological variety without touching the common case.
const MAX_DONOR_TRACES: usize = 64;

/// Drops `[run_start, run_end)` from a sorted rank vector and shifts
/// later ranks down by the run length — frame (collapsed) coordinates.
fn collapse(ranks: &[u32], run_start: u32, run_end: u32) -> Vec<u32> {
    let lo = ranks.partition_point(|&r| r < run_start);
    let hi = ranks.partition_point(|&r| r < run_end);
    let run_len = run_end - run_start;
    let mut out = Vec::with_capacity(lo + ranks.len() - hi);
    out.extend_from_slice(&ranks[..lo]);
    out.extend(ranks[hi..].iter().map(|&r| r - run_len));
    out
}

/// The `[start, end)` window of a sorted rank vector, rebased to local
/// (zero-origin) coordinates.
fn slice_rebased(ranks: &[u32], start: u32, end: u32) -> Vec<u32> {
    let lo = ranks.partition_point(|&r| r < start);
    let hi = ranks.partition_point(|&r| r < end);
    ranks[lo..hi].iter().map(|&r| r - start).collect()
}

/// Factors a freshly recorded trace around `layout`'s record run: frame
/// in collapsed coordinates, one donor per distinct record fingerprint
/// (the first instance wins) in record-local coordinates.
fn factor_trace(trace: &Trace, layout: &RecordLayout) -> FactoredTrace {
    let (rs, re) = (layout.run_start, layout.run_end);
    let restrict = |f: &dyn Fn(&[u32]) -> Vec<u32>, sets: &[Option<Arc<Vec<u32>>>]| {
        sets.iter()
            .map(|s| s.as_deref().map(|v| Arc::new(f(v))))
            .collect::<Vec<_>>()
    };
    let frame = Trace {
        bare: restrict(&|v| collapse(v, rs, re), &trace.bare),
        selected: restrict(&|v| collapse(v, rs, re), &trace.selected),
        terminal_ids: Vec::new(),
    };
    let mut donors: HashMap<u64, Arc<Trace>> = HashMap::new();
    for rec in &layout.records {
        donors.entry(rec.fingerprint).or_insert_with(|| {
            Arc::new(Trace {
                bare: restrict(&|v| slice_rebased(v, rec.start, rec.end), &trace.bare),
                selected: restrict(&|v| slice_rebased(v, rec.start, rec.end), &trace.selected),
                terminal_ids: Vec::new(),
            })
        });
    }
    FactoredTrace {
        run_start: rs,
        frame,
        donors: Mutex::new(donors),
    }
}

/// Where a walk delivers each terminal's node-set.
///
/// The four walk bodies (plain, recording, replay, partial replay) are
/// generic over this so [`BatchEvaluator::evaluate`] can return owned
/// vectors while [`BatchEvaluator::evaluate_shared`] returns `Arc`s and
/// memoizes materializations across replays.
trait ResultSink {
    /// Deliver the result of path `path` as materialized `NodeId`s.
    fn emit(&mut self, idx: &DocIndex, path: usize, ranks: &[u32]);

    /// Like [`ResultSink::emit`], with a per-trace memo slot available
    /// (verbatim whole-page replays only, where the same ranks recur on
    /// every page of the template). Sinks that can share results may use
    /// it; the default materializes fresh.
    fn emit_memo(
        &mut self,
        idx: &DocIndex,
        path: usize,
        ranks: &[u32],
        memo: &OnceLock<Arc<Vec<NodeId>>>,
    ) {
        let _ = memo;
        self.emit(idx, path, ranks);
    }
}

/// Materializes owned, independently mutable result vectors
/// ([`BatchEvaluator::evaluate`]).
struct OwnedSink(Vec<Vec<NodeId>>);

impl ResultSink for OwnedSink {
    fn emit(&mut self, idx: &DocIndex, path: usize, ranks: &[u32]) {
        self.0[path] = materialize(idx, ranks);
    }
}

/// Materializes shared result vectors ([`BatchEvaluator::evaluate_shared`]),
/// memoizing per-variant materializations across verbatim replays of
/// rank-monotone pages: there `materialize` maps rank `r` to `NodeId(r)`,
/// so identical ranks yield identical `NodeId` vectors on every page of
/// the template and the vector is built once per trace.
struct SharedSink(Vec<Arc<Vec<NodeId>>>);

impl ResultSink for SharedSink {
    fn emit(&mut self, idx: &DocIndex, path: usize, ranks: &[u32]) {
        self.0[path] = Arc::new(materialize(idx, ranks));
    }

    fn emit_memo(
        &mut self,
        idx: &DocIndex,
        path: usize,
        ranks: &[u32],
        memo: &OnceLock<Arc<Vec<NodeId>>>,
    ) {
        if idx.ranks_monotone() {
            self.0[path] = Arc::clone(memo.get_or_init(|| Arc::new(materialize(idx, ranks))));
        } else {
            self.emit(idx, path, ranks);
        }
    }
}

/// Default [`TemplateCache`] capacity (distinct templates tracked per
/// evaluator). One evaluator serves one site's candidate set, and real
/// sites render from a handful of scripts, so this is generous.
pub const DEFAULT_TEMPLATE_CAPACITY: usize = 64;

/// Evaluates a fixed set of xpaths against documents with shared-prefix
/// memoization.
#[derive(Debug)]
pub struct BatchEvaluator {
    paths: usize,
    /// Children/terminals of the empty prefix (the document root).
    root: Variant,
    /// Trie arena.
    nodes: Vec<TrieNode>,
    /// Total variant count (gid space of the traces).
    n_variants: u32,
    /// Cross-page template replay cache; `None` when disabled.
    cache: Option<TemplateCache>,
}

impl BatchEvaluator {
    /// Builds an evaluator from compiled paths, with the cross-page
    /// [`TemplateCache`] enabled (disable with
    /// [`BatchEvaluator::with_cache`]).
    pub fn new(paths: &[CompiledXPath]) -> BatchEvaluator {
        let mut root = Variant {
            predicates: Vec::new(),
            children: Vec::new(),
            terminals: Vec::new(),
            gid: 0, // the root variant has no step; its gid is never read
        };
        let mut n_variants: u32 = 0;
        let mut nodes: Vec<TrieNode> = Vec::new();
        for (i, path) in paths.iter().enumerate() {
            // `at` addresses the variant whose subtrie we extend next;
            // `None` is the root (empty prefix).
            let mut at: Option<(usize, usize)> = None;
            for step in &path.steps {
                let found = {
                    let children: &[u32] = match at {
                        None => &root.children,
                        Some((n, v)) => &nodes[n].variants[v].children,
                    };
                    children.iter().copied().find(|&c| {
                        let node = &nodes[c as usize];
                        node.axis == step.axis && node.test == step.test
                    })
                };
                let node_i = match found {
                    Some(c) => c as usize,
                    None => {
                        let c = nodes.len();
                        nodes.push(TrieNode {
                            axis: step.axis,
                            test: step.test,
                            variants: Vec::new(),
                        });
                        match at {
                            None => root.children.push(c as u32),
                            Some((n, v)) => nodes[n].variants[v].children.push(c as u32),
                        }
                        c
                    }
                };
                let var_i = match nodes[node_i]
                    .variants
                    .iter()
                    .position(|v| v.predicates == step.predicates)
                {
                    Some(v) => v,
                    None => {
                        nodes[node_i].variants.push(Variant {
                            predicates: step.predicates.clone(),
                            children: Vec::new(),
                            terminals: Vec::new(),
                            gid: n_variants,
                        });
                        n_variants += 1;
                        nodes[node_i].variants.len() - 1
                    }
                };
                at = Some((node_i, var_i));
            }
            match at {
                None => root.terminals.push(i as u32),
                Some((n, v)) => nodes[n].variants[v].terminals.push(i as u32),
            }
        }
        BatchEvaluator {
            paths: paths.len(),
            root,
            nodes,
            n_variants,
            cache: Some(TemplateCache::new(DEFAULT_TEMPLATE_CAPACITY)),
        }
    }

    /// Enables or disables the cross-page [`TemplateCache`] (enabled by
    /// default; disabling also discards any recorded traces).
    pub fn with_cache(mut self, enabled: bool) -> BatchEvaluator {
        self.set_cache(enabled);
        self
    }

    /// In-place form of [`BatchEvaluator::with_cache`].
    pub fn set_cache(&mut self, enabled: bool) {
        self.cache = enabled.then(|| TemplateCache::new(DEFAULT_TEMPLATE_CAPACITY));
    }

    /// The template cache, when enabled.
    pub fn template_cache(&self) -> Option<&TemplateCache> {
        self.cache.as_ref()
    }

    /// Convenience constructor compiling ASTs first.
    pub fn from_xpaths<'a, I: IntoIterator<Item = &'a XPath>>(paths: I) -> BatchEvaluator {
        let compiled: Vec<CompiledXPath> = paths.into_iter().map(CompiledXPath::compile).collect();
        BatchEvaluator::new(&compiled)
    }

    /// Number of input paths.
    pub fn len(&self) -> usize {
        self.paths
    }

    /// True when built from no paths.
    pub fn is_empty(&self) -> bool {
        self.paths == 0
    }

    /// Number of distinct `(prefix, axis, test)` applications — the
    /// traversal work the trie performs per document. Predicate-aware
    /// merging makes this lower than the number of distinct full steps.
    pub fn distinct_steps(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct `(prefix, full step)` pairs — what
    /// [`Self::distinct_steps`] counted before predicate variants shared
    /// their bare application. The gap to `distinct_steps` is the work
    /// predicate-aware merging saves.
    pub fn distinct_variants(&self) -> usize {
        self.nodes.iter().map(|n| n.variants.len()).sum()
    }

    /// Evaluates every path against `doc`.
    ///
    /// Returns one node list per input path, aligned with the order the
    /// paths were given in; each list is sorted in document order and
    /// deduplicated, byte-identical to what
    /// [`crate::reference::evaluate`] returns for that path alone —
    /// whether the page evaluated fresh, recorded a template trace, or
    /// replayed one (see the [module docs](self)).
    pub fn evaluate(&self, doc: &Document) -> Vec<Vec<NodeId>> {
        let mut sink = OwnedSink(vec![Vec::new(); self.paths]);
        self.evaluate_into(doc, &mut sink);
        sink.0
    }

    /// Like [`BatchEvaluator::evaluate`], but returns shared vectors.
    ///
    /// Identical contents for every path — only the ownership differs:
    /// verbatim template replays of rank-monotone pages reuse one
    /// materialized `NodeId` vector per trie leaf instead of rebuilding
    /// it per page. Meant for read-only consumers (the common one reads
    /// node *text* and never touches the vector again), which is why the
    /// results come back behind `Arc`s.
    pub fn evaluate_shared(&self, doc: &Document) -> Vec<Arc<Vec<NodeId>>> {
        // One shared empty placeholder is fine: every slot the walk
        // reaches is overwritten, and untouched slots stay empty.
        let empty: Arc<Vec<NodeId>> = Arc::new(Vec::new());
        let mut sink = SharedSink(vec![empty; self.paths]);
        self.evaluate_into(doc, &mut sink);
        sink.0
    }

    fn evaluate_into<S: ResultSink>(&self, doc: &Document, sink: &mut S) {
        // Not `is_empty()`: that is true for root-only documents, which still
        // evaluate (to nothing or to the root for the empty path). Only a
        // zero-node `Document::default()` lacks the root entirely.
        #[allow(clippy::len_zero)]
        if doc.len() == 0 {
            return;
        }
        let idx = doc.index();
        if let Some(cache) = &self.cache {
            let key = (doc.len() as u32, idx.template_fingerprint());
            let layout = idx.record_layout();
            match cache.lookup(key, layout.map(|l| l.frame_fingerprint)) {
                Lookup::Replay(trace) => return self.evaluate_replay(doc, idx, &trace, sink),
                Lookup::PartialReplay(factored) => {
                    let layout = layout.expect("partial replay implies a record layout");
                    return self
                        .evaluate_partial_replay(doc, idx, key, layout, &factored, cache, sink);
                }
                Lookup::Record => {
                    let trace = self.evaluate_recording(doc, idx, sink);
                    let factored = layout.map(|l| (l.frame_fingerprint, factor_trace(&trace, l)));
                    cache.store(key, trace, factored);
                    return;
                }
                Lookup::Bypass => {}
            }
        }
        self.evaluate_plain(doc, idx, sink)
    }

    /// The direct evaluation path (no trace involved).
    fn evaluate_plain<S: ResultSink>(&self, doc: &Document, idx: &DocIndex, sink: &mut S) {
        let root_ctx: Vec<u32> = vec![idx.rank_of(doc.root())];
        for &t in &self.root.terminals {
            sink.emit(idx, t as usize, &root_ctx);
        }

        // Depth-first over the trie, carrying the context node-set of the
        // prefix evaluated so far. Each (prefix → bare context) pair is
        // computed exactly once per document.
        let mut stack: Vec<(u32, Vec<u32>)> = Vec::with_capacity(self.root.children.len());
        for &c in &self.root.children {
            stack.push((c, root_ctx.clone()));
        }
        while let Some((node_i, ctx)) = stack.pop() {
            let node = &self.nodes[node_i as usize];
            // With a single predicate variant there is nothing to share:
            // use the fused path (predicates checked during collection,
            // no intermediate bare node-set) — otherwise a lone
            // `//div[@class=..]` would materialize every div first.
            let mut bare: Vec<u32> = if node.variants.len() == 1 {
                Vec::new()
            } else {
                let b = apply_step_bare(doc, idx, &ctx, node.axis, &node.test);
                if b.is_empty() {
                    // Empty context propagates to every candidate below;
                    // their results stay empty without further work.
                    continue;
                }
                b
            };
            let last = node.variants.len() - 1;
            for (vi, variant) in node.variants.iter().enumerate() {
                let selected: Vec<u32> = if node.variants.len() == 1 {
                    match resolve_preds(idx, &variant.predicates) {
                        Some(preds) => {
                            apply_step_with(doc, idx, &ctx, node.axis, &node.test, &preds)
                        }
                        // An attribute value absent from this document.
                        None => Vec::new(),
                    }
                } else if variant.predicates.is_empty() {
                    if vi == last {
                        std::mem::take(&mut bare)
                    } else {
                        bare.clone()
                    }
                } else {
                    match resolve_preds(idx, &variant.predicates) {
                        Some(preds) => filter_resolved(idx, &node.test, &preds, &bare),
                        // An attribute value absent from this document.
                        None => Vec::new(),
                    }
                };
                if selected.is_empty() {
                    continue;
                }
                for &t in &variant.terminals {
                    sink.emit(idx, t as usize, &selected);
                }
                if let Some((&last_child, rest)) = variant.children.split_last() {
                    for &c in rest {
                        stack.push((c, selected.clone()));
                    }
                    stack.push((last_child, selected));
                }
            }
        }
    }

    /// Evaluates while recording a [`Trace`]: every trie node's bare set
    /// and every variant's selection, as sharable `Arc`s in rank space.
    ///
    /// Unlike [`BatchEvaluator::evaluate_plain`], single-variant nodes
    /// give up their fused collect-and-filter path here — the bare set
    /// must exist to be recorded. That one-page cost is what replays
    /// amortize away.
    fn evaluate_recording<S: ResultSink>(
        &self,
        doc: &Document,
        idx: &DocIndex,
        sink: &mut S,
    ) -> Trace {
        let mut trace = Trace::empty(
            self.nodes.len(),
            self.n_variants as usize,
            self.n_variants as usize,
        );
        let root_ctx: Arc<Vec<u32>> = Arc::new(vec![idx.rank_of(doc.root())]);
        for &t in &self.root.terminals {
            sink.emit(idx, t as usize, &root_ctx);
        }
        let mut stack: Vec<(u32, Arc<Vec<u32>>)> = self
            .root
            .children
            .iter()
            .map(|&c| (c, Arc::clone(&root_ctx)))
            .collect();
        while let Some((node_i, ctx)) = stack.pop() {
            let node = &self.nodes[node_i as usize];
            let bare = Arc::new(apply_step_bare(doc, idx, &ctx, node.axis, &node.test));
            trace.bare[node_i as usize] = Some(Arc::clone(&bare));
            if bare.is_empty() {
                // Empty context propagates to every candidate below; the
                // unreached subtrie stays `None` in the trace, which a
                // matching skeleton reproduces on replay.
                continue;
            }
            for variant in &node.variants {
                let selected: Arc<Vec<u32>> = if variant.predicates.is_empty() {
                    Arc::clone(&bare)
                } else {
                    Arc::new(match resolve_preds(idx, &variant.predicates) {
                        Some(preds) => filter_resolved(idx, &node.test, &preds, &bare),
                        // An attribute value absent from this document.
                        None => Vec::new(),
                    })
                };
                trace.selected[variant.gid as usize] = Some(Arc::clone(&selected));
                if selected.is_empty() {
                    continue;
                }
                for &t in &variant.terminals {
                    sink.emit(idx, t as usize, &selected);
                }
                for &c in &variant.children {
                    stack.push((c, Arc::clone(&selected)));
                }
            }
        }
        trace
    }

    /// Evaluates by replaying a recorded [`Trace`] onto a page with the
    /// same template fingerprint.
    ///
    /// Matching fingerprints guarantee identical rank topology, so bare
    /// node-sets and position-predicate selections transfer verbatim
    /// (ranks are remapped to this page's `NodeId`s at
    /// materialization). Attribute predicates are re-filtered per page
    /// over the cached bare set; the subtrie below one keeps replaying
    /// only while the fresh selection equals the recorded one, and
    /// otherwise falls back to fresh traversal from that point.
    fn evaluate_replay<S: ResultSink>(
        &self,
        doc: &Document,
        idx: &DocIndex,
        trace: &Trace,
        sink: &mut S,
    ) {
        /// Context of a pending trie node during replay.
        enum Ctx {
            /// Context equals the recording's — consume the trace.
            Trusted,
            /// An attribute re-filter diverged upstream — traverse.
            Fresh(Arc<Vec<u32>>),
        }

        let root_ctx: Vec<u32> = vec![idx.rank_of(doc.root())];
        for &t in &self.root.terminals {
            sink.emit(idx, t as usize, &root_ctx);
        }
        let mut stack: Vec<(u32, Ctx)> = self
            .root
            .children
            .iter()
            .map(|&c| (c, Ctx::Trusted))
            .collect();
        while let Some((node_i, ctx)) = stack.pop() {
            let node = &self.nodes[node_i as usize];
            match ctx {
                Ctx::Trusted => {
                    // `None` = the recording never reached this node; a
                    // matching skeleton cannot reach it either.
                    let Some(bare) = trace.bare[node_i as usize].as_ref() else {
                        continue;
                    };
                    if bare.is_empty() {
                        continue;
                    }
                    for variant in &node.variants {
                        let has_attr = variant
                            .predicates
                            .iter()
                            .any(|p| matches!(p, CompiledPred::Attr { .. }));
                        if !has_attr {
                            // Bare or position-only selections are
                            // structure-determined: transfer verbatim.
                            let Some(selected) = trace.selected[variant.gid as usize].as_ref()
                            else {
                                continue;
                            };
                            if selected.is_empty() {
                                continue;
                            }
                            for &t in &variant.terminals {
                                // Verbatim ranks recur on every page of
                                // the template — sharing sinks memoize
                                // the materialization in the trace.
                                sink.emit_memo(
                                    idx,
                                    t as usize,
                                    selected,
                                    &trace.terminal_ids[variant.gid as usize],
                                );
                            }
                            for &c in &variant.children {
                                stack.push((c, Ctx::Trusted));
                            }
                        } else {
                            // The fingerprint ignores attribute values:
                            // re-filter on this page (integer compares
                            // over the shared bare set).
                            let fresh: Vec<u32> = match resolve_preds(idx, &variant.predicates) {
                                Some(preds) => filter_resolved(idx, &node.test, &preds, bare),
                                None => Vec::new(),
                            };
                            let agrees = trace.selected[variant.gid as usize]
                                .as_deref()
                                .is_some_and(|recorded| *recorded == fresh);
                            if fresh.is_empty() {
                                continue;
                            }
                            for &t in &variant.terminals {
                                sink.emit(idx, t as usize, &fresh);
                            }
                            if agrees {
                                for &c in &variant.children {
                                    stack.push((c, Ctx::Trusted));
                                }
                            } else {
                                let shared = Arc::new(fresh);
                                for &c in &variant.children {
                                    stack.push((c, Ctx::Fresh(Arc::clone(&shared))));
                                }
                            }
                        }
                    }
                }
                Ctx::Fresh(ctx) => {
                    let bare = apply_step_bare(doc, idx, &ctx, node.axis, &node.test);
                    if bare.is_empty() {
                        continue;
                    }
                    for variant in &node.variants {
                        let selected: Vec<u32> = if variant.predicates.is_empty() {
                            bare.clone()
                        } else {
                            match resolve_preds(idx, &variant.predicates) {
                                Some(preds) => filter_resolved(idx, &node.test, &preds, &bare),
                                None => Vec::new(),
                            }
                        };
                        if selected.is_empty() {
                            continue;
                        }
                        for &t in &variant.terminals {
                            sink.emit(idx, t as usize, &selected);
                        }
                        let shared = Arc::new(selected);
                        for &c in &variant.children {
                            stack.push((c, Ctx::Fresh(Arc::clone(&shared))));
                        }
                    }
                }
            }
        }
    }

    /// Evaluates by stitching a [`FactoredTrace`] onto a page whose
    /// *frame* fingerprint matches the recording but whose record roster
    /// (count, order, variants) may differ — see the
    /// [module docs](self).
    ///
    /// The walk carries explicit context vectors. A context is *trusted*
    /// when it provably equals the stitched recorded selection of its
    /// parent variant (with fresh values on fallback record spans);
    /// trusted nodes assemble their bare set by stitching instead of
    /// traversing, untrusted (or gap-demoted) nodes evaluate exactly
    /// like the fresh path. Predicate selections are always re-filtered
    /// pointwise over the true bare set, so emitted results never depend
    /// on trust — trust only buys the cheaper bare-set path below.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_partial_replay<S: ResultSink>(
        &self,
        doc: &Document,
        idx: &DocIndex,
        key: (u32, u64),
        layout: &RecordLayout,
        factored: &FactoredTrace,
        cache: &TemplateCache,
        sink: &mut S,
    ) {
        debug_assert_eq!(
            layout.run_start, factored.run_start,
            "the frame fingerprint pins the run origin"
        );
        /// Context of a pending trie node during partial replay.
        enum PCtx {
            /// Equals the stitched recorded parent selection (fresh on
            /// fallback spans) — bare sets may stitch from the trace.
            Trusted(Arc<Vec<u32>>),
            /// Diverged or demoted upstream — traverse.
            Fresh(Arc<Vec<u32>>),
        }
        /// An unseen record variant being recorded for future replays.
        struct Capture {
            /// Index into `layout.records` of the instance captured.
            record: usize,
            fingerprint: u64,
            trace: Trace,
        }

        // Assign each record a donor (a recorded trace for its
        // fingerprint) or mark it for per-span fresh fallback; the first
        // fallback instance of each unseen fingerprint is captured
        // during the walk to seed future pages.
        let mut donors: Vec<Option<Arc<Trace>>> = Vec::with_capacity(layout.records.len());
        let mut captures: Vec<Capture> = Vec::new();
        {
            let map = factored.donors.lock().unwrap();
            let mut room = MAX_DONOR_TRACES.saturating_sub(map.len());
            for (i, rec) in layout.records.iter().enumerate() {
                let donor = map.get(&rec.fingerprint).cloned();
                if donor.is_none()
                    && room > 0
                    && !captures.iter().any(|c| c.fingerprint == rec.fingerprint)
                {
                    room -= 1;
                    captures.push(Capture {
                        record: i,
                        fingerprint: rec.fingerprint,
                        trace: Trace::empty(self.nodes.len(), self.n_variants as usize, 0),
                    });
                }
                donors.push(donor);
            }
        }
        let replayed = donors.iter().filter(|d| d.is_some()).count() as u64;
        cache.record_replays.fetch_add(replayed, Ordering::Relaxed);
        cache
            .record_fallbacks
            .fetch_add(layout.records.len() as u64 - replayed, Ordering::Relaxed);

        // Every bare set and selection this walk produces is exact for
        // the page (stitching is exact, everything else is computed
        // fresh), so collecting them yields a trace indistinguishable
        // from a recording — promoted under the page's whole-page
        // fingerprint at the end, it turns every later page with this
        // roster shape into a verbatim replay.
        let mut promo = Trace::empty(
            self.nodes.len(),
            self.n_variants as usize,
            self.n_variants as usize,
        );

        let root_ctx: Arc<Vec<u32>> = Arc::new(vec![idx.rank_of(doc.root())]);
        for &t in &self.root.terminals {
            sink.emit(idx, t as usize, &root_ctx);
        }
        let mut stack: Vec<(u32, PCtx)> = self
            .root
            .children
            .iter()
            .map(|&c| (c, PCtx::Trusted(Arc::clone(&root_ctx))))
            .collect();
        while let Some((node_i, pctx)) = stack.pop() {
            let node = &self.nodes[node_i as usize];
            let stitched = match &pctx {
                PCtx::Trusted(ctx) => {
                    self.stitch_bare(doc, idx, layout, factored, node_i, node, ctx, &donors)
                }
                PCtx::Fresh(_) => None,
            };
            let (PCtx::Trusted(ctx) | PCtx::Fresh(ctx)) = &pctx;
            let Some(bare) = stitched else {
                // Fresh traversal: untrusted context, or a gap in the
                // frame/donor data demoted this subtrie.
                let bare = apply_step_bare(doc, idx, ctx, node.axis, &node.test);
                if bare.is_empty() {
                    continue;
                }
                let bare = Arc::new(bare);
                promo.bare[node_i as usize] = Some(Arc::clone(&bare));
                for variant in &node.variants {
                    let selected: Arc<Vec<u32>> = if variant.predicates.is_empty() {
                        Arc::clone(&bare)
                    } else {
                        Arc::new(match resolve_preds(idx, &variant.predicates) {
                            Some(preds) => filter_resolved(idx, &node.test, &preds, &bare),
                            None => Vec::new(),
                        })
                    };
                    if selected.is_empty() {
                        continue;
                    }
                    promo.selected[variant.gid as usize] = Some(Arc::clone(&selected));
                    for &t in &variant.terminals {
                        sink.emit(idx, t as usize, &selected);
                    }
                    for &c in &variant.children {
                        stack.push((c, PCtx::Fresh(Arc::clone(&selected))));
                    }
                }
                continue;
            };
            // Trusted node: `bare` is the true bare set (stitching is
            // exact). Capture each unseen record variant's slice.
            promo.bare[node_i as usize] = Some(Arc::clone(&bare));
            for cap in &mut captures {
                let rec = &layout.records[cap.record];
                cap.trace.bare[node_i as usize] =
                    Some(Arc::new(slice_rebased(&bare, rec.start, rec.end)));
            }
            if bare.is_empty() {
                continue;
            }
            for variant in &node.variants {
                if variant.predicates.is_empty() {
                    for cap in &mut captures {
                        cap.trace.selected[variant.gid as usize] =
                            cap.trace.bare[node_i as usize].clone();
                    }
                    promo.selected[variant.gid as usize] = Some(Arc::clone(&bare));
                    for &t in &variant.terminals {
                        sink.emit(idx, t as usize, &bare);
                    }
                    for &c in &variant.children {
                        stack.push((c, PCtx::Trusted(Arc::clone(&bare))));
                    }
                } else {
                    // Predicates are pointwise (positions and attribute
                    // tests are per-node properties), so filtering the
                    // true bare set is always correct; the recorded
                    // selection only decides whether the subtrie below
                    // keeps stitching.
                    let fresh: Vec<u32> = match resolve_preds(idx, &variant.predicates) {
                        Some(preds) => filter_resolved(idx, &node.test, &preds, &bare),
                        None => Vec::new(),
                    };
                    for cap in &mut captures {
                        let rec = &layout.records[cap.record];
                        cap.trace.selected[variant.gid as usize] =
                            Some(Arc::new(slice_rebased(&fresh, rec.start, rec.end)));
                    }
                    let agrees = selection_agrees(&fresh, factored, layout, &donors, variant.gid);
                    if fresh.is_empty() {
                        continue;
                    }
                    for &t in &variant.terminals {
                        sink.emit(idx, t as usize, &fresh);
                    }
                    let shared = Arc::new(fresh);
                    promo.selected[variant.gid as usize] = Some(Arc::clone(&shared));
                    for &c in &variant.children {
                        let ctx = Arc::clone(&shared);
                        stack.push((
                            c,
                            if agrees {
                                PCtx::Trusted(ctx)
                            } else {
                                PCtx::Fresh(ctx)
                            },
                        ));
                    }
                }
            }
        }

        // Publish captured record variants for future pages. Captures
        // whose nodes all demoted carry no data and are dropped; races
        // between concurrent pages keep whichever donor lands first
        // (results never depend on which — stitching is exact).
        let mut fresh_donors = captures
            .into_iter()
            .filter(|c| c.trace.bare.iter().any(Option::is_some))
            .peekable();
        if fresh_donors.peek().is_some() {
            let mut map = factored.donors.lock().unwrap();
            for cap in fresh_donors {
                if map.len() >= MAX_DONOR_TRACES {
                    break;
                }
                map.entry(cap.fingerprint)
                    .or_insert_with(|| Arc::new(cap.trace));
            }
        }
        cache.promote(key, promo);
    }

    /// Assembles the true bare node-set of a trusted trie node by
    /// stitching: expanded frame prefix, then per record either the
    /// donor slice rebased to the record's span or a fresh clipped
    /// evaluation of that span, then the expanded frame suffix. Returns
    /// `None` when the frame or any assigned donor lacks data for this
    /// node (the caller demotes the subtrie to fresh traversal).
    #[allow(clippy::too_many_arguments)]
    fn stitch_bare(
        &self,
        doc: &Document,
        idx: &DocIndex,
        layout: &RecordLayout,
        factored: &FactoredTrace,
        node_i: u32,
        node: &TrieNode,
        ctx: &Arc<Vec<u32>>,
        donors: &[Option<Arc<Trace>>],
    ) -> Option<Arc<Vec<u32>>> {
        let frame = factored.frame.bare[node_i as usize].as_deref()?;
        for donor in donors.iter().flatten() {
            donor.bare[node_i as usize].as_ref()?;
        }
        let run_len = layout.run_len();
        let split = frame.partition_point(|&r| r < layout.run_start);
        let (prefix, suffix) = frame.split_at(split);
        // Does some context node above the run contain all of it? Frame
        // subtree ends never fall strictly inside the run, so this is
        // span-independent; it decides how descendant steps reach
        // fallback spans.
        let covering_ancestor = node.axis == Axis::Descendant
            && donors.iter().any(Option::is_none)
            && ctx[..ctx.partition_point(|&r| r < layout.run_start)]
                .iter()
                .any(|&c| idx.subtree(c).end >= layout.run_end);
        let mut out: Vec<u32> = Vec::with_capacity(frame.len());
        out.extend_from_slice(prefix);
        for (rec, donor) in layout.records.iter().zip(donors) {
            match donor {
                Some(d) => {
                    let slice = d.bare[node_i as usize].as_deref().expect("checked above");
                    out.extend(slice.iter().map(|&r| r + rec.start));
                }
                None => out.extend(fresh_span(
                    doc,
                    idx,
                    layout,
                    node,
                    ctx,
                    rec,
                    covering_ancestor,
                )),
            }
        }
        out.extend(suffix.iter().map(|&r| r + run_len));
        debug_assert!(out.windows(2).all(|w| w[0] < w[1]), "stitch must be sorted");
        Some(Arc::new(out))
    }
}

/// Fresh evaluation of one trie step clipped to a single record span
/// (a fallback record during partial replay). Record subtrees are
/// rank-contiguous, so results inside the span can only come from
/// context inside it, from the run parent (child steps reach the record
/// root), or — for descendant steps — from an ancestor covering the run,
/// in which case the span's posting range answers directly.
fn fresh_span(
    doc: &Document,
    idx: &DocIndex,
    layout: &RecordLayout,
    node: &TrieNode,
    ctx: &[u32],
    rec: &aw_dom::RecordSpan,
    covering_ancestor: bool,
) -> Vec<u32> {
    let lo = ctx.partition_point(|&r| r < rec.start);
    let hi = ctx.partition_point(|&r| r < rec.end);
    match node.axis {
        Axis::Descendant if covering_ancestor => {
            let postings = postings_for(idx, &node.test);
            let lo = postings.partition_point(|&r| r < rec.start);
            let hi = postings.partition_point(|&r| r < rec.end);
            postings[lo..hi].to_vec()
        }
        Axis::Descendant => apply_step_bare(doc, idx, &ctx[lo..hi], node.axis, &node.test),
        Axis::Child => {
            let mut cand: Vec<u32> = Vec::with_capacity(hi - lo + 1);
            if ctx.binary_search(&layout.parent).is_ok() {
                cand.push(layout.parent);
            }
            cand.extend_from_slice(&ctx[lo..hi]);
            let out = apply_step_bare(doc, idx, &cand, node.axis, &node.test);
            let lo = out.partition_point(|&r| r < rec.start);
            let hi = out.partition_point(|&r| r < rec.end);
            out[lo..hi].to_vec()
        }
    }
}

/// Streams the freshly filtered selection against the stitched recorded
/// one (frame prefix, donor slices, frame suffix), skipping fallback
/// spans where fresh values are authoritative. Equality means the
/// subtrie below may keep stitching; any gap or mismatch means it must
/// not.
fn selection_agrees(
    fresh: &[u32],
    factored: &FactoredTrace,
    layout: &RecordLayout,
    donors: &[Option<Arc<Trace>>],
    gid: u32,
) -> bool {
    let Some(frame) = factored.frame.selected[gid as usize].as_deref() else {
        return false;
    };
    let split = frame.partition_point(|&r| r < layout.run_start);
    let (prefix, suffix) = frame.split_at(split);
    let mut pos = 0usize;
    let eat = |expect: &[u32], base: u32, pos: &mut usize| -> bool {
        for &r in expect {
            if fresh.get(*pos) != Some(&(r + base)) {
                return false;
            }
            *pos += 1;
        }
        true
    };
    if !eat(prefix, 0, &mut pos) {
        return false;
    }
    for (rec, donor) in layout.records.iter().zip(donors) {
        match donor {
            Some(d) => {
                let Some(sel) = d.selected[gid as usize].as_deref() else {
                    return false;
                };
                if !eat(sel, rec.start, &mut pos) {
                    return false;
                }
            }
            // Fallback span: skip exactly the fresh values inside it.
            None => {
                while fresh
                    .get(pos)
                    .is_some_and(|&r| r >= rec.start && r < rec.end)
                {
                    pos += 1;
                }
            }
        }
    }
    eat(suffix, layout.run_len(), &mut pos) && pos == fresh.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_xpath;
    use crate::reference;
    use aw_dom::parse;

    fn dealer_page() -> aw_dom::Document {
        parse(
            "<div class='dealerlinks'>\
               <tr><td><u>PORTER FURNITURE</u><br>201 HWY<br>NEW ALBANY, MS 38652</td></tr>\
               <tr><td><u>WOODLAND FURNITURE</u><br>123 Main St.<br>WOODLAND, MS 3977</td></tr>\
             </div><div class='footer'>contact us</div>",
        )
    }

    /// A wrapper-space-shaped candidate set: common prefix, diverging
    /// suffixes (what enumeration actually produces).
    fn candidate_set() -> Vec<XPath> {
        [
            "//div[@class='dealerlinks']/tr/td/u/text()",
            "//div[@class='dealerlinks']/tr/td/u[1]/text()[1]",
            "//div[@class='dealerlinks']/tr/td//text()",
            "//div[@class='dealerlinks']/tr/td/text()",
            "//div[@class='dealerlinks']/tr/td/text()[2]",
            "//div/tr/td/u/text()",
            "//div//text()",
            "//text()",
        ]
        .iter()
        .map(|s| parse_xpath(s).unwrap())
        .collect()
    }

    #[test]
    fn batch_matches_reference_per_path() {
        let doc = dealer_page();
        let paths = candidate_set();
        let batch = BatchEvaluator::from_xpaths(&paths);
        let results = batch.evaluate(&doc);
        assert_eq!(results.len(), paths.len());
        for (path, got) in paths.iter().zip(&results) {
            assert_eq!(got, &reference::evaluate(path, &doc), "mismatch for {path}");
        }
    }

    #[test]
    fn trie_shares_prefixes_and_merges_predicates() {
        let paths = candidate_set();
        let batch = BatchEvaluator::from_xpaths(&paths);
        let total_steps: usize = paths.iter().map(|p| p.steps.len()).sum();
        assert!(
            batch.distinct_steps() < total_steps,
            "no sharing: {} trie nodes for {} total steps",
            batch.distinct_steps(),
            total_steps
        );
        // The five rules sharing `//div[@class=..]/tr/td` contribute that
        // prefix once: 30 total steps collapse to 17 distinct full steps
        // (the predicate variants), and predicate-aware merging shares
        // the bare application of `//div`↔`//div[@class=..]`, `u`↔`u[1]`
        // and `text()`↔`text()[2]`, leaving 14 traversals.
        assert_eq!(batch.distinct_variants(), 17);
        assert_eq!(batch.distinct_steps(), 14);
    }

    #[test]
    fn predicate_variants_agree_with_reference() {
        // Steps identical up to predicates: all four share one `//td`
        // traversal, and each `td` variant context shares one `/text()`
        // traversal — 3 bare applications for 6 distinct full steps.
        let doc = dealer_page();
        let paths: Vec<XPath> = [
            "//td/text()",
            "//td[1]/text()",
            "//td/text()[2]",
            "//td[1]/text()[3]",
        ]
        .iter()
        .map(|s| parse_xpath(s).unwrap())
        .collect();
        let batch = BatchEvaluator::from_xpaths(&paths);
        assert_eq!(batch.distinct_steps(), 3);
        assert_eq!(batch.distinct_variants(), 6);
        for (path, got) in paths.iter().zip(batch.evaluate(&doc)) {
            assert_eq!(got, reference::evaluate(path, &doc), "mismatch for {path}");
        }
    }

    #[test]
    fn empty_set_and_empty_doc() {
        let batch = BatchEvaluator::new(&[]);
        assert!(batch.is_empty());
        assert!(batch.evaluate(&dealer_page()).is_empty());

        let paths = candidate_set();
        let batch = BatchEvaluator::from_xpaths(&paths);
        let results = batch.evaluate(&aw_dom::Document::default());
        assert_eq!(results.len(), paths.len());
        assert!(results.iter().all(Vec::is_empty));
    }

    #[test]
    fn duplicate_paths_each_get_results() {
        let xp = parse_xpath("//td/u/text()").unwrap();
        let batch = BatchEvaluator::from_xpaths(vec![&xp, &xp]);
        let doc = dealer_page();
        let results = batch.evaluate(&doc);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], reference::evaluate(&xp, &doc));
    }

    /// Pages rendered from one template: identical skeletons, different
    /// text and attribute values.
    fn template_pages() -> Vec<aw_dom::Document> {
        [
            "ALPHA;1 Elm;d1",
            "BETA;2 Oak;d2",
            "GAMMA;3 Fir;d3",
            "DELTA;4 Ash;d4",
        ]
        .iter()
        .map(|spec| {
            let mut parts = spec.split(';');
            let (name, street, href) = (
                parts.next().unwrap(),
                parts.next().unwrap(),
                parts.next().unwrap(),
            );
            parse(&format!(
                "<div class='dealerlinks'>\
                       <tr><td><a href='/d/{href}'><u>{name}</u></a><br>{street}</td></tr>\
                     </div><div class='footer'>contact us</div>",
            ))
        })
        .collect()
    }

    #[test]
    fn template_replay_is_byte_identical_to_reference() {
        let pages = template_pages();
        let fp = pages[0].index().template_fingerprint();
        for page in &pages {
            assert_eq!(
                page.index().template_fingerprint(),
                fp,
                "pages share one template"
            );
        }
        let paths = candidate_set();
        let batch = BatchEvaluator::from_xpaths(&paths);
        for (p, doc) in pages.iter().enumerate() {
            for (path, got) in paths.iter().zip(batch.evaluate(doc)) {
                assert_eq!(got, reference::evaluate(path, doc), "page {p}, path {path}");
            }
        }
        let (hits, misses) = batch.template_cache().unwrap().stats();
        assert_eq!(
            (hits, misses),
            (2, 2),
            "page 0 bypasses, page 1 records, pages 2-3 replay"
        );
    }

    #[test]
    fn replay_revalidates_attribute_selections_per_page() {
        // Same skeleton, but the listing container's class differs on the
        // last two pages — the fingerprint ignores attribute values, so
        // replay must re-filter and fall back below the divergence.
        let make = |class: &str, name: &str| {
            parse(&format!(
                "<div class='{class}'><tr><td><u>{name}</u><br>addr</td></tr></div>"
            ))
        };
        let pages = [
            make("list", "ALPHA"),
            make("list", "BETA"),
            make("other", "GAMMA"),
            make("other", "DELTA"),
        ];
        let paths: Vec<XPath> = [
            // Selects on the first two pages only.
            "//div[@class='list']/tr/td/u/text()",
            // Selects on the LAST two pages only: its subtrie is never
            // reached during recording, so replay must traverse fresh.
            "//div[@class='other']/tr/td/u/text()",
            // Attribute-free: replays verbatim everywhere.
            "//div/tr/td/u/text()",
            "//td/text()[1]",
        ]
        .iter()
        .map(|s| parse_xpath(s).unwrap())
        .collect();
        let batch = BatchEvaluator::from_xpaths(&paths);
        for (p, doc) in pages.iter().enumerate() {
            for (path, got) in paths.iter().zip(batch.evaluate(doc)) {
                assert_eq!(got, reference::evaluate(path, doc), "page {p}, path {path}");
            }
        }
        let (hits, _) = batch.template_cache().unwrap().stats();
        assert_eq!(hits, 2, "pages 2-3 replay (with re-validation)");
    }

    #[test]
    fn cache_disabled_matches_cache_enabled() {
        let pages = template_pages();
        let paths = candidate_set();
        let cached = BatchEvaluator::from_xpaths(&paths);
        let uncached = BatchEvaluator::from_xpaths(&paths).with_cache(false);
        assert!(uncached.template_cache().is_none());
        for doc in &pages {
            assert_eq!(cached.evaluate(doc), uncached.evaluate(doc));
        }
    }

    #[test]
    fn repeated_evaluation_of_one_document_replays() {
        let doc = dealer_page();
        let paths = candidate_set();
        let batch = BatchEvaluator::from_xpaths(&paths);
        let first = batch.evaluate(&doc);
        for _ in 0..3 {
            assert_eq!(batch.evaluate(&doc), first);
        }
        let (hits, misses) = batch.template_cache().unwrap().stats();
        assert_eq!((hits, misses), (2, 2));
    }

    /// A variable-length listing: chrome around a run of `tr` records.
    /// Each record is `(name, has_phone)` — `has_phone` toggles the
    /// optional second cell, giving the record a distinct subtree
    /// fingerprint.
    fn varlen_page(records: &[(&str, bool)]) -> aw_dom::Document {
        let mut rows = String::new();
        for (i, (name, phone)) in records.iter().enumerate() {
            rows.push_str(&format!("<tr><td><u>{name}</u><br>{i} Elm St</td>"));
            if *phone {
                rows.push_str(&format!("<td>555-00{i}</td>"));
            }
            rows.push_str("</tr>");
        }
        parse(&format!(
            "<div class='nav'><a href='/h'>home</a></div>\
             <div class='dealerlinks'>{rows}</div>\
             <div class='footer'>contact us</div>"
        ))
    }

    fn assert_all_match_reference(
        batch: &BatchEvaluator,
        paths: &[XPath],
        pages: &[aw_dom::Document],
    ) {
        for (p, doc) in pages.iter().enumerate() {
            for (path, got) in paths.iter().zip(batch.evaluate(doc)) {
                assert_eq!(got, reference::evaluate(path, doc), "page {p}, path {path}");
            }
        }
    }

    #[test]
    fn partial_replay_stitches_across_record_counts() {
        // Counts differ page to page, so whole-page fingerprints almost
        // never repeat — only the frame carries the replay.
        let pages: Vec<aw_dom::Document> = [2usize, 4, 3, 5, 4]
            .iter()
            .map(|&n| varlen_page(&vec![("DEALER", true); n]))
            .collect();
        let paths = candidate_set();
        let batch = BatchEvaluator::from_xpaths(&paths);
        assert_all_match_reference(&batch, &paths, &pages);
        let stats = batch.template_cache().unwrap().replay_stats();
        assert_eq!(
            stats.frame_replays, 2,
            "pages 2 (3 recs) and 3 (5 recs) stitch partial replays"
        );
        assert_eq!(
            stats.full_replays, 1,
            "page 4 repeats page 1's count and replays verbatim"
        );
        assert_eq!(stats.record_replays, 3 + 5, "every record had a donor");
        assert_eq!(stats.record_fallbacks, 0);
        assert_eq!(stats.misses, 2, "page 0 bypasses, page 1 records");
        assert_eq!(batch.template_cache().unwrap().stats(), (3, 2));
    }

    #[test]
    fn partial_replay_falls_back_and_captures_record_variants() {
        let pages = [
            varlen_page(&[("A", true), ("B", true), ("C", true)]),
            varlen_page(&[("D", true), ("E", true), ("F", true)]),
            // A phone-less middle record: unseen fingerprint → fallback
            // span, captured as a donor.
            varlen_page(&[("G", true), ("H", false), ("I", true)]),
            // Both variants known now — no fallbacks left.
            varlen_page(&[("J", false), ("K", true), ("L", true)]),
        ];
        let paths = candidate_set();
        let batch = BatchEvaluator::from_xpaths(&paths);
        assert_all_match_reference(&batch, &paths, &pages);
        let stats = batch.template_cache().unwrap().replay_stats();
        assert_eq!(stats.frame_replays, 2);
        assert_eq!(
            (stats.record_replays, stats.record_fallbacks),
            (2 + 3, 1),
            "page 2 stitches 2 and falls back on 1; page 3 stitches all \
             3 thanks to the captured phone-less donor"
        );
    }

    #[test]
    fn partial_replay_revalidates_attribute_selections() {
        // The frame fingerprint ignores attribute *values*, so a page
        // whose container class changed still partial-replays — and the
        // attribute re-filter must steer its subtrie to fresh traversal.
        let make = |class: &str, n: usize| {
            let rows: String = (0..n)
                .map(|i| format!("<tr><td><u>NAME{i}</u><br>addr</td></tr>"))
                .collect();
            parse(&format!(
                "<div class='{class}'>{rows}</div><div class='f'>x</div>"
            ))
        };
        let pages = [
            make("list", 2),
            make("list", 3),
            make("other", 4),
            make("list", 5),
        ];
        let paths: Vec<XPath> = [
            "//div[@class='list']/tr/td/u/text()",
            "//div[@class='other']/tr/td/u/text()",
            "//div/tr/td/u/text()",
            "//td/text()[1]",
        ]
        .iter()
        .map(|s| parse_xpath(s).unwrap())
        .collect();
        let batch = BatchEvaluator::from_xpaths(&paths);
        assert_all_match_reference(&batch, &paths, &pages);
        let stats = batch.template_cache().unwrap().replay_stats();
        assert_eq!(stats.frame_replays, 2, "pages 2 and 3 stitch");
    }

    #[test]
    fn evaluate_shared_matches_evaluate_and_memoizes_replays() {
        let pages: Vec<aw_dom::Document> = [3usize, 3, 3, 3]
            .iter()
            .map(|&n| varlen_page(&vec![("SHARED", true); n]))
            .collect();
        let paths = candidate_set();
        let owned = BatchEvaluator::from_xpaths(&paths);
        let shared = BatchEvaluator::from_xpaths(&paths);
        let mut replayed: Vec<Vec<Arc<Vec<NodeId>>>> = Vec::new();
        for doc in &pages {
            let o = owned.evaluate(doc);
            let s = shared.evaluate_shared(doc);
            assert_eq!(o.len(), s.len());
            for (a, b) in o.iter().zip(&s) {
                assert_eq!(a, b.as_ref());
            }
            replayed.push(s);
        }
        // Pages 2 and 3 replay the same template verbatim on monotone
        // pages: their terminal vectors are the same allocation.
        let (h, _) = shared.template_cache().unwrap().stats();
        assert_eq!(h, 2);
        for (a, b) in replayed[2].iter().zip(&replayed[3]) {
            if !a.is_empty() {
                assert!(
                    Arc::ptr_eq(a, b),
                    "replayed terminals share one materialization"
                );
            }
        }
    }

    #[test]
    fn reusable_across_pages() {
        let paths = candidate_set();
        let batch = BatchEvaluator::from_xpaths(&paths);
        let page2 = parse(
            "<div class='dealerlinks'>\
               <tr><td><u>ACME CHAIRS</u><br>9 Low Rd<br>TUPELO, MS 38801</td></tr>\
             </div><div class='footer'>contact us</div>",
        );
        for doc in [dealer_page(), page2] {
            for (path, got) in paths.iter().zip(batch.evaluate(&doc)) {
                assert_eq!(got, reference::evaluate(path, &doc), "mismatch for {path}");
            }
        }
    }
}
