//! Shared-prefix batch evaluation of wrapper candidate sets.
//!
//! The wrapper space `W(L)` of §4 holds up to `2^k` structurally-similar
//! xpaths: most candidates share long step prefixes (they were induced
//! from overlapping label subsets of one site). Evaluating each candidate
//! from the document root repeats the shared prefix work once per
//! candidate; a [`BatchEvaluator`] instead arranges the compiled steps in
//! a prefix trie and walks it depth-first, so every distinct step prefix
//! is evaluated **once per document** and its intermediate context
//! node-set is reused by all candidates below it.
//!
//! The evaluator is built once per candidate set and applied to any
//! number of pages — compile cost and trie construction amortize across
//! a whole site.

use crate::ast::XPath;
use crate::compile::{CompiledStep, CompiledXPath};
use crate::indexed::{apply_step, materialize};
use aw_dom::{Document, NodeId};

/// A trie node: one compiled step plus the candidates ending here.
#[derive(Debug)]
struct TrieNode {
    /// The step on the edge from the parent (unused sentinel for root).
    step: CompiledStep,
    /// Child trie nodes (indices into the arena).
    children: Vec<u32>,
    /// Indices of input paths that end at this node.
    terminals: Vec<u32>,
}

/// Evaluates a fixed set of xpaths against documents with shared-prefix
/// memoization.
#[derive(Debug)]
pub struct BatchEvaluator {
    paths: usize,
    /// Trie arena; index 0 is the root (empty prefix).
    nodes: Vec<TrieNode>,
}

impl BatchEvaluator {
    /// Builds an evaluator from compiled paths.
    pub fn new(paths: &[CompiledXPath]) -> BatchEvaluator {
        let sentinel = CompiledStep {
            axis: crate::ast::Axis::Child,
            test: crate::compile::CompiledTest::Text,
            predicates: Vec::new(),
        };
        let mut nodes = vec![TrieNode {
            step: sentinel,
            children: Vec::new(),
            terminals: Vec::new(),
        }];
        for (i, path) in paths.iter().enumerate() {
            let mut at = 0usize;
            for step in &path.steps {
                let found = nodes[at]
                    .children
                    .iter()
                    .copied()
                    .find(|&c| nodes[c as usize].step == *step);
                at = match found {
                    Some(c) => c as usize,
                    None => {
                        let c = nodes.len() as u32;
                        nodes.push(TrieNode {
                            step: step.clone(),
                            children: Vec::new(),
                            terminals: Vec::new(),
                        });
                        nodes[at].children.push(c);
                        c as usize
                    }
                };
            }
            nodes[at].terminals.push(i as u32);
        }
        BatchEvaluator {
            paths: paths.len(),
            nodes,
        }
    }

    /// Convenience constructor compiling ASTs first.
    pub fn from_xpaths<'a, I: IntoIterator<Item = &'a XPath>>(paths: I) -> BatchEvaluator {
        let compiled: Vec<CompiledXPath> = paths.into_iter().map(CompiledXPath::compile).collect();
        BatchEvaluator::new(&compiled)
    }

    /// Number of input paths.
    pub fn len(&self) -> usize {
        self.paths
    }

    /// True when built from no paths.
    pub fn is_empty(&self) -> bool {
        self.paths == 0
    }

    /// Number of distinct steps across the candidate set — the work the
    /// trie actually performs per document. For a well-shared space this
    /// is far below the sum of path lengths.
    pub fn distinct_steps(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Evaluates every path against `doc`.
    ///
    /// Returns one node list per input path, aligned with the order the
    /// paths were given in; each list is sorted in document order and
    /// deduplicated, byte-identical to what
    /// [`crate::reference::evaluate`] returns for that path alone.
    pub fn evaluate(&self, doc: &Document) -> Vec<Vec<NodeId>> {
        let mut results: Vec<Vec<NodeId>> = vec![Vec::new(); self.paths];
        // Not `is_empty()`: that is true for root-only documents, which still
        // evaluate (to nothing or to the root for the empty path). Only a
        // zero-node `Document::default()` lacks the root entirely.
        #[allow(clippy::len_zero)]
        if doc.len() == 0 {
            return results;
        }
        let idx = doc.index();
        let root_ctx: Vec<u32> = vec![idx.rank_of(doc.root())];

        // Depth-first over the trie, carrying the context node-set of the
        // prefix evaluated so far. Each (prefix → context) pair is
        // computed exactly once per document; each context is owned by
        // exactly one stack entry.
        let mut stack: Vec<(u32, Vec<u32>)> = vec![(0, root_ctx)];
        while let Some((node_i, ctx)) = stack.pop() {
            let node = &self.nodes[node_i as usize];
            for &t in &node.terminals {
                results[t as usize] = materialize(idx, &ctx);
            }
            if ctx.is_empty() {
                // Empty context propagates to every candidate below; their
                // results stay empty without further step work.
                continue;
            }
            for &c in &node.children {
                let child = &self.nodes[c as usize];
                stack.push((c, apply_step(doc, idx, &ctx, &child.step)));
            }
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_xpath;
    use crate::reference;
    use aw_dom::parse;

    fn dealer_page() -> aw_dom::Document {
        parse(
            "<div class='dealerlinks'>\
               <tr><td><u>PORTER FURNITURE</u><br>201 HWY<br>NEW ALBANY, MS 38652</td></tr>\
               <tr><td><u>WOODLAND FURNITURE</u><br>123 Main St.<br>WOODLAND, MS 3977</td></tr>\
             </div><div class='footer'>contact us</div>",
        )
    }

    /// A wrapper-space-shaped candidate set: common prefix, diverging
    /// suffixes (what enumeration actually produces).
    fn candidate_set() -> Vec<XPath> {
        [
            "//div[@class='dealerlinks']/tr/td/u/text()",
            "//div[@class='dealerlinks']/tr/td/u[1]/text()[1]",
            "//div[@class='dealerlinks']/tr/td//text()",
            "//div[@class='dealerlinks']/tr/td/text()",
            "//div[@class='dealerlinks']/tr/td/text()[2]",
            "//div/tr/td/u/text()",
            "//div//text()",
            "//text()",
        ]
        .iter()
        .map(|s| parse_xpath(s).unwrap())
        .collect()
    }

    #[test]
    fn batch_matches_reference_per_path() {
        let doc = dealer_page();
        let paths = candidate_set();
        let batch = BatchEvaluator::from_xpaths(&paths);
        let results = batch.evaluate(&doc);
        assert_eq!(results.len(), paths.len());
        for (path, got) in paths.iter().zip(&results) {
            assert_eq!(got, &reference::evaluate(path, &doc), "mismatch for {path}");
        }
    }

    #[test]
    fn trie_shares_prefixes() {
        let paths = candidate_set();
        let batch = BatchEvaluator::from_xpaths(&paths);
        let total_steps: usize = paths.iter().map(|p| p.steps.len()).sum();
        assert!(
            batch.distinct_steps() < total_steps,
            "no sharing: {} trie nodes for {} total steps",
            batch.distinct_steps(),
            total_steps
        );
        // The five rules sharing `//div[@class=..]/tr/td` contribute that
        // prefix once: 30 total steps collapse to 17 distinct.
        assert_eq!(batch.distinct_steps(), 17);
    }

    #[test]
    fn empty_set_and_empty_doc() {
        let batch = BatchEvaluator::new(&[]);
        assert!(batch.is_empty());
        assert!(batch.evaluate(&dealer_page()).is_empty());

        let paths = candidate_set();
        let batch = BatchEvaluator::from_xpaths(&paths);
        let results = batch.evaluate(&aw_dom::Document::default());
        assert_eq!(results.len(), paths.len());
        assert!(results.iter().all(Vec::is_empty));
    }

    #[test]
    fn duplicate_paths_each_get_results() {
        let xp = parse_xpath("//td/u/text()").unwrap();
        let batch = BatchEvaluator::from_xpaths(vec![&xp, &xp]);
        let doc = dealer_page();
        let results = batch.evaluate(&doc);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], reference::evaluate(&xp, &doc));
    }

    #[test]
    fn reusable_across_pages() {
        let paths = candidate_set();
        let batch = BatchEvaluator::from_xpaths(&paths);
        let page2 = parse(
            "<div class='dealerlinks'>\
               <tr><td><u>ACME CHAIRS</u><br>9 Low Rd<br>TUPELO, MS 38801</td></tr>\
             </div><div class='footer'>contact us</div>",
        );
        for doc in [dealer_page(), page2] {
            for (path, got) in paths.iter().zip(batch.evaluate(&doc)) {
                assert_eq!(got, reference::evaluate(path, &doc), "mismatch for {path}");
            }
        }
    }
}
