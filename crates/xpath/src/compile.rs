//! Compilation of [`XPath`] ASTs into symbol-resolved forms.
//!
//! A [`CompiledXPath`] is the AST with every string resolved to an
//! interned [`Sym`] ([`aw_dom::interner`]): tag tests, attribute names
//! and attribute values. Compiled steps are plain `Eq + Hash` data, which
//! is what lets [`crate::batch::BatchEvaluator`] arrange a candidate set
//! into a shared-prefix trie.

use crate::ast::{Axis, NodeTest, Predicate, Step, XPath};
use aw_dom::{intern, Sym};

/// A node test with the tag resolved to a symbol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CompiledTest {
    /// A specific element tag.
    Tag(Sym),
    /// `*` — any element.
    AnyElement,
    /// `text()` — text nodes.
    Text,
}

/// A predicate with attribute names/values resolved to symbols.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CompiledPred {
    /// `[@name='value']`.
    Attr {
        /// Interned attribute name.
        name: Sym,
        /// Interned attribute value (query literals are a bounded
        /// vocabulary, so the global interner is appropriate; document
        /// attribute values are interned per-`DocIndex` instead).
        value: Sym,
    },
    /// `[k]`, 1-based among same-test siblings. Kept at full `u64` width:
    /// truncating would make absurd positions like `[4294967297]` wrap
    /// around and *match*, diverging from the reference interpreter.
    Position(u64),
}

/// One compiled location step.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CompiledStep {
    /// Axis of the step.
    pub axis: Axis,
    /// Symbol-resolved node test.
    pub test: CompiledTest,
    /// Symbol-resolved predicates, in source order.
    pub predicates: Vec<CompiledPred>,
}

/// A compiled location path, ready for the indexed/batch engines.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct CompiledXPath {
    /// Compiled steps in order.
    pub steps: Vec<CompiledStep>,
}

impl CompiledXPath {
    /// Compiles an AST. Interning is the only cost; compiling the same
    /// path twice yields identical (and `Eq`-comparable) values.
    pub fn compile(path: &XPath) -> CompiledXPath {
        CompiledXPath {
            steps: path.steps.iter().map(compile_step).collect(),
        }
    }
}

impl From<&XPath> for CompiledXPath {
    fn from(path: &XPath) -> Self {
        CompiledXPath::compile(path)
    }
}

fn compile_step(step: &Step) -> CompiledStep {
    CompiledStep {
        axis: step.axis,
        test: match &step.test {
            NodeTest::Tag(t) => CompiledTest::Tag(intern(t)),
            NodeTest::AnyElement => CompiledTest::AnyElement,
            NodeTest::Text => CompiledTest::Text,
        },
        predicates: step
            .predicates
            .iter()
            .map(|p| match p {
                Predicate::Attr { name, value } => CompiledPred::Attr {
                    name: intern(name),
                    value: intern(value),
                },
                Predicate::Position(k) => CompiledPred::Position(*k as u64),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_xpath;

    #[test]
    fn compilation_is_stable_and_comparable() {
        let xp = parse_xpath("//div[@class='content']/table[1]/tr/td[2]/text()").unwrap();
        let a = CompiledXPath::compile(&xp);
        let b = CompiledXPath::compile(&xp);
        assert_eq!(a, b);
        assert_eq!(a.steps.len(), 5);
        assert_eq!(a.steps[0].test, CompiledTest::Tag(intern("div")));
        assert_eq!(
            a.steps[0].predicates,
            vec![CompiledPred::Attr {
                name: intern("class"),
                value: intern("content")
            }]
        );
        assert_eq!(a.steps[1].predicates, vec![CompiledPred::Position(1)]);
        assert_eq!(a.steps[4].test, CompiledTest::Text);
    }

    #[test]
    fn shared_prefixes_compile_to_equal_steps() {
        let a = CompiledXPath::compile(&parse_xpath("//div/tr/td/u/text()").unwrap());
        let b = CompiledXPath::compile(&parse_xpath("//div/tr/td/text()").unwrap());
        assert_eq!(
            a.steps[..3],
            b.steps[..3],
            "common prefix must compare equal"
        );
        assert_ne!(a.steps[3], b.steps[3]);
    }
}
