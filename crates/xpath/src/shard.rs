//! Site-sharded, page-parallel batch evaluation.
//!
//! A [`crate::BatchEvaluator`] amortizes shared step prefixes across one
//! candidate set — but across *sites* there is little to share: a
//! deduplicated multi-site space gains only marginally over per-rule
//! indexed evaluation, because each site's rules share prefixes with
//! their own siblings, not with other sites' (measured in the
//! `xpath_shard` bench). A [`ShardedBatch`] therefore splits a tagged
//! candidate set per site **before** trie construction: one tight trie
//! per site, each evaluated only against that site's pages — which is
//! exactly the production workload (a wrapper learned on site *S*
//! extracts from pages of *S*, never from another site's pages).
//!
//! Pages are independent, so [`ShardedBatch::evaluate_pages`] drives
//! them through an [`aw_pool::Executor`] — the shared work-stealing
//! pool, so a site-parallel caller nests cleanly — with deterministic
//! output ordering, byte-identical to sequential evaluation. Each
//! shard's trie keeps its own cross-page [`crate::TemplateCache`]:
//! pages of one site are instances of one rendering script, so bare
//! traversals recorded on one page replay onto its template siblings
//! (disable with [`ShardedBatch::with_cache`]).

use crate::batch::BatchEvaluator;
use crate::compile::CompiledXPath;
use aw_dom::{Document, NodeId};
use aw_pool::Executor;
use std::collections::BTreeMap;

/// One site's slice of the candidate set.
#[derive(Debug)]
struct Shard {
    batch: BatchEvaluator,
    /// Global slot (input-order index) of each shard-local path.
    slots: Vec<u32>,
}

/// A candidate set split per site, each shard a [`BatchEvaluator`] of
/// its own.
#[derive(Debug)]
pub struct ShardedBatch {
    /// Shard keys, ascending (parallel to `shards`).
    keys: Vec<usize>,
    shards: Vec<Shard>,
    paths: usize,
}

impl ShardedBatch {
    /// Builds shards from `(site key, compiled path)` pairs. The *global
    /// slot* of a path is its position in the input iteration, whatever
    /// its key — results refer back to it, so interleaved tagging is
    /// fine.
    pub fn new(tagged: impl IntoIterator<Item = (usize, CompiledXPath)>) -> ShardedBatch {
        let mut groups: BTreeMap<usize, (Vec<CompiledXPath>, Vec<u32>)> = BTreeMap::new();
        let mut paths = 0usize;
        for (slot, (key, path)) in tagged.into_iter().enumerate() {
            let group = groups.entry(key).or_default();
            group.0.push(path);
            group.1.push(slot as u32);
            paths += 1;
        }
        let mut keys = Vec::with_capacity(groups.len());
        let mut shards = Vec::with_capacity(groups.len());
        for (key, (compiled, slots)) in groups {
            keys.push(key);
            shards.push(Shard {
                batch: BatchEvaluator::new(&compiled),
                slots,
            });
        }
        ShardedBatch {
            keys,
            shards,
            paths,
        }
    }

    /// Convenience constructor compiling tagged ASTs first.
    pub fn from_xpaths<'a>(
        tagged: impl IntoIterator<Item = (usize, &'a crate::ast::XPath)>,
    ) -> ShardedBatch {
        ShardedBatch::new(
            tagged
                .into_iter()
                .map(|(key, xp)| (key, CompiledXPath::compile(xp))),
        )
    }

    /// Enables or disables the per-shard cross-page template caches
    /// (enabled by default; disabling discards recorded traces).
    pub fn with_cache(mut self, enabled: bool) -> ShardedBatch {
        for shard in &mut self.shards {
            shard.batch.set_cache(enabled);
        }
        self
    }

    /// Summed `(replayed pages, other pages)` template-cache statistics
    /// across shards; `None` when the cache is disabled.
    pub fn template_cache_stats(&self) -> Option<(u64, u64)> {
        let mut any = false;
        let (mut hits, mut misses) = (0, 0);
        for shard in &self.shards {
            if let Some(cache) = shard.batch.template_cache() {
                any = true;
                let (h, m) = cache.stats();
                hits += h;
                misses += m;
            }
        }
        any.then_some((hits, misses))
    }

    /// Summed replay-path breakdown across shards (the
    /// [`crate::ReplayStats`] behind [`Self::template_cache_stats`]);
    /// `None` when the cache is disabled.
    pub fn template_replay_stats(&self) -> Option<crate::ReplayStats> {
        let mut any = false;
        let mut total = crate::ReplayStats::default();
        for shard in &self.shards {
            if let Some(cache) = shard.batch.template_cache() {
                any = true;
                total += cache.replay_stats();
            }
        }
        any.then_some(total)
    }

    /// Total number of input paths across all shards.
    pub fn len(&self) -> usize {
        self.paths
    }

    /// True when built from no paths.
    pub fn is_empty(&self) -> bool {
        self.paths == 0
    }

    /// Number of shards (distinct site keys).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard keys, ascending.
    pub fn keys(&self) -> &[usize] {
        &self.keys
    }

    /// Total bare `(axis, test)` applications per page across shards
    /// (cf. [`BatchEvaluator::distinct_steps`]).
    pub fn distinct_steps(&self) -> usize {
        self.shards.iter().map(|s| s.batch.distinct_steps()).sum()
    }

    /// Total predicate variants across shards
    /// (cf. [`BatchEvaluator::distinct_variants`]).
    pub fn distinct_variants(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.batch.distinct_variants())
            .sum()
    }

    fn shard_for(&self, key: usize) -> Option<&Shard> {
        self.keys.binary_search(&key).ok().map(|i| &self.shards[i])
    }

    /// Evaluates the shard tagged `key` against one of its site's pages.
    ///
    /// Returns `(global slot, nodes)` pairs for that shard's paths only,
    /// each node list byte-identical to [`crate::reference::evaluate`]
    /// for the path alone; an unknown key (a page of a site that
    /// contributed no candidates) yields no pairs.
    pub fn evaluate_page(&self, key: usize, doc: &Document) -> Vec<(u32, Vec<NodeId>)> {
        match self.shard_for(key) {
            None => Vec::new(),
            Some(shard) => shard
                .slots
                .iter()
                .copied()
                .zip(shard.batch.evaluate(doc))
                .collect(),
        }
    }

    /// Evaluates every `(site key, page)` pair, page-parallel through
    /// the shared executor.
    ///
    /// Output is aligned with `pages` and independent of the executor's
    /// thread count (results land in per-page slots). Safe to call from
    /// inside another `exec.map` — the nested batch joins the same
    /// worker team instead of spawning a second one.
    pub fn evaluate_pages(
        &self,
        pages: &[(usize, &Document)],
        exec: &Executor,
    ) -> Vec<Vec<(u32, Vec<NodeId>)>> {
        exec.map(pages, |&(key, doc)| self.evaluate_page(key, doc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_xpath;
    use crate::reference;
    use aw_dom::parse;

    fn site_a_pages() -> Vec<Document> {
        vec![
            parse(
                "<div class='list'><tr><td><u>ALPHA</u><br>1 Elm</td></tr>\
                 <tr><td><u>BETA</u><br>2 Oak</td></tr></div>",
            ),
            parse("<div class='list'><tr><td><u>GAMMA</u><br>3 Fir</td></tr></div>"),
        ]
    }

    fn site_b_pages() -> Vec<Document> {
        vec![parse(
            "<table class='stores'><tr><td><b>OMEGA</b></td><td>9 Elm</td></tr>\
             <tr><td><b>SIGMA</b></td><td>7 Oak</td></tr></table>",
        )]
    }

    /// (key, path) pairs interleaved across two sites.
    fn tagged_space() -> Vec<(usize, crate::ast::XPath)> {
        [
            (0, "//div[@class='list']/tr/td/u/text()"),
            (7, "//table[@class='stores']/tr/td/b/text()"),
            (0, "//div[@class='list']/tr/td//text()"),
            (7, "//table//td[2]/text()"),
            (0, "//div//text()"),
        ]
        .iter()
        .map(|&(k, s)| (k, parse_xpath(s).unwrap()))
        .collect()
    }

    #[test]
    fn shards_group_by_key_and_keep_global_slots() {
        let sharded = ShardedBatch::from_xpaths(tagged_space().iter().map(|(k, xp)| (*k, xp)));
        assert_eq!(sharded.len(), 5);
        assert_eq!(sharded.shard_count(), 2);
        assert_eq!(sharded.keys(), &[0, 7]);

        let tagged = tagged_space();
        let page = &site_a_pages()[0];
        let results = sharded.evaluate_page(0, page);
        // Site 0's paths sit at global slots 0, 2, 4 — in input order.
        assert_eq!(
            results.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![0, 2, 4]
        );
        for (slot, nodes) in &results {
            assert_eq!(
                nodes,
                &reference::evaluate(&tagged[*slot as usize].1, page),
                "slot {slot}"
            );
        }
    }

    #[test]
    fn unknown_key_yields_nothing() {
        let sharded = ShardedBatch::from_xpaths(tagged_space().iter().map(|(k, xp)| (*k, xp)));
        assert!(sharded.evaluate_page(3, &site_a_pages()[0]).is_empty());
    }

    #[test]
    fn empty_sharded_batch() {
        let sharded = ShardedBatch::new(std::iter::empty());
        assert!(sharded.is_empty());
        assert_eq!(sharded.shard_count(), 0);
        assert!(sharded.evaluate_page(0, &site_a_pages()[0]).is_empty());
    }

    #[test]
    fn parallel_pages_match_sequential_across_thread_counts() {
        let sharded = ShardedBatch::from_xpaths(tagged_space().iter().map(|(k, xp)| (*k, xp)));
        let a = site_a_pages();
        let b = site_b_pages();
        let mut pages: Vec<(usize, &Document)> = Vec::new();
        for doc in &a {
            pages.push((0, doc));
        }
        for doc in &b {
            pages.push((7, doc));
        }
        // A page keyed to a site with no candidates is fine mid-stream.
        pages.push((3, &a[0]));

        let sequential: Vec<_> = pages
            .iter()
            .map(|&(k, doc)| sharded.evaluate_page(k, doc))
            .collect();
        for threads in [1, 2, 5] {
            let exec = Executor::new(threads);
            assert_eq!(
                sharded.evaluate_pages(&pages, &exec),
                sequential,
                "thread count {threads}"
            );
        }
    }

    #[test]
    fn cache_toggle_does_not_change_results() {
        let tagged = tagged_space();
        let cached = ShardedBatch::from_xpaths(tagged.iter().map(|(k, xp)| (*k, xp)));
        let uncached =
            ShardedBatch::from_xpaths(tagged.iter().map(|(k, xp)| (*k, xp))).with_cache(false);
        assert!(uncached.template_cache_stats().is_none());
        let a = site_a_pages();
        let b = site_b_pages();
        let mut pages: Vec<(usize, &Document)> = Vec::new();
        // Repeat the page list so same-fingerprint pages replay.
        for _ in 0..3 {
            for doc in &a {
                pages.push((0, doc));
            }
            for doc in &b {
                pages.push((7, doc));
            }
        }
        let exec = Executor::new(2);
        assert_eq!(
            cached.evaluate_pages(&pages, &exec),
            uncached.evaluate_pages(&pages, &exec),
        );
        let (hits, _) = cached.template_cache_stats().unwrap();
        assert!(hits > 0, "repeated pages must replay");
    }

    #[test]
    fn nested_inside_an_executor_map() {
        // A site-parallel caller mapping over shards nests a page-parallel
        // evaluate_pages on the SAME executor — the work-stealing pool
        // must take both levels without deadlock or thread explosion.
        let sharded = ShardedBatch::from_xpaths(tagged_space().iter().map(|(k, xp)| (*k, xp)));
        let a = site_a_pages();
        let pages: Vec<(usize, &Document)> = a.iter().map(|doc| (0, doc)).collect();
        let exec = Executor::new(4);
        let rounds: Vec<u32> = (0..8).collect();
        let expected = sharded.evaluate_pages(&pages, &exec);
        let all = exec.map(&rounds, |_| sharded.evaluate_pages(&pages, &exec));
        for got in all {
            assert_eq!(got, expected);
        }
    }
}
