//! The index-backed evaluation engine.
//!
//! Operates entirely in **pre-order rank space** over a
//! [`aw_dom::DocIndex`]:
//!
//! * `//tag` steps intersect the tag's posting list with the context
//!   nodes' subtree rank ranges (binary search per range — no tree walk);
//! * `/tag` steps scan each context node's child list comparing interned
//!   symbols (no string compares);
//! * `[k]` predicates read the precomputed sibling-position arrays;
//! * `[@a='v']` predicates resolve the value to the document's own
//!   value id once per step, then compare `(name symbol, value id)`
//!   integer pairs per node.
//!
//! Results are identical to [`crate::reference::evaluate`] — enforced by
//! unit tests here and the differential property suite in
//! `tests/xpath_differential.rs`.

use crate::compile::{CompiledPred, CompiledStep, CompiledTest, CompiledXPath};
use aw_dom::{DocIndex, Document, NodeId, Sym};

/// Evaluates a compiled path, returning matching nodes in document order.
pub fn evaluate_compiled(path: &CompiledXPath, doc: &Document) -> Vec<NodeId> {
    // Not `is_empty()`: that is true for root-only documents, which still
    // evaluate (to nothing or to the root for the empty path). Only a
    // zero-node `Document::default()` lacks the root entirely.
    #[allow(clippy::len_zero)]
    if doc.len() == 0 {
        return Vec::new();
    }
    let idx = doc.index();
    let mut ctx: Vec<u32> = vec![idx.rank_of(doc.root())];
    for step in &path.steps {
        ctx = apply_step(doc, idx, &ctx, step);
        if ctx.is_empty() {
            break;
        }
    }
    materialize(idx, &ctx)
}

/// Converts a rank-space node set into sorted `NodeId`s (the reference
/// interpreter's output order).
///
/// `ranks` must be ascending — every engine-side node set is (steps,
/// trie fan-outs and template-cache traces all preserve rank order), so
/// for parser-built documents, where arena order equals rank order
/// ([`DocIndex::ranks_monotone`]), the mapped `NodeId`s come out already
/// sorted and the per-page sort is skipped. Template-cache replay
/// materializes every cached set through here, making that its per-page
/// fast path.
pub(crate) fn materialize(idx: &DocIndex, ranks: &[u32]) -> Vec<NodeId> {
    debug_assert!(
        ranks.windows(2).all(|w| w[0] < w[1]),
        "materialize expects an ascending rank set"
    );
    let mut out: Vec<NodeId> = ranks.iter().map(|&r| idx.node_at(r)).collect();
    if !idx.ranks_monotone() {
        out.sort_unstable();
    }
    out
}

/// A step's predicates resolved against one document, so the per-node
/// check is integer compares only: attribute values map to the
/// document's own value ids (`DocIndex::attr_value_id`), computed once
/// per (step, document) instead of once per candidate node.
pub(crate) enum ResolvedPred {
    /// `[@name='v']` where `v` exists in this document as `value_id`.
    Attr { name: Sym, value_id: u32 },
    /// `[k]` against the position array the step's test selects.
    Position(u64),
}

/// `None` means some attribute predicate's value occurs nowhere in the
/// document — the step can't select anything.
pub(crate) fn resolve_preds(
    idx: &DocIndex,
    predicates: &[CompiledPred],
) -> Option<Vec<ResolvedPred>> {
    predicates
        .iter()
        .map(|pred| match *pred {
            CompiledPred::Attr { name, value } => idx
                .attr_value_id(value.as_str())
                .map(|value_id| ResolvedPred::Attr { name, value_id }),
            CompiledPred::Position(k) => Some(ResolvedPred::Position(k)),
        })
        .collect()
}

/// Applies one step to a sorted, deduplicated rank-space context set,
/// returning the same representation.
pub(crate) fn apply_step(
    doc: &Document,
    idx: &DocIndex,
    context: &[u32],
    step: &CompiledStep,
) -> Vec<u32> {
    let Some(preds) = resolve_preds(idx, &step.predicates) else {
        return Vec::new(); // an attribute value absent from this document
    };
    apply_step_with(doc, idx, context, step.axis, &step.test, &preds)
}

/// Applies an `(axis, test)` pair with pre-resolved predicates checked
/// **during** collection (no intermediate bare node-set) — the fused
/// path for single steps and single-variant trie nodes.
pub(crate) fn apply_step_with(
    doc: &Document,
    idx: &DocIndex,
    context: &[u32],
    axis: crate::ast::Axis,
    test: &CompiledTest,
    preds: &[ResolvedPred],
) -> Vec<u32> {
    step_nodes(doc, idx, context, axis, test, |id| {
        passes_resolved(idx, id, test, preds)
    })
}

/// Applies a step's (axis, test) pair with **no predicates** — the shared
/// part that predicate variants of a batch-trie node fan out from.
pub(crate) fn apply_step_bare(
    doc: &Document,
    idx: &DocIndex,
    context: &[u32],
    axis: crate::ast::Axis,
    test: &CompiledTest,
) -> Vec<u32> {
    step_nodes(doc, idx, context, axis, test, |_| true)
}

/// Keeps the ranks whose nodes pass every resolved predicate (the
/// integer-only fan-out check applied per trie variant).
pub(crate) fn filter_resolved(
    idx: &DocIndex,
    test: &CompiledTest,
    preds: &[ResolvedPred],
    ranks: &[u32],
) -> Vec<u32> {
    ranks
        .iter()
        .copied()
        .filter(|&r| passes_resolved(idx, idx.node_at(r), test, preds))
        .collect()
}

/// The axis/test traversal shared by [`apply_step`] (predicate check
/// inlined) and [`apply_step_bare`] (`keep` ≡ true, monomorphized away).
fn step_nodes(
    doc: &Document,
    idx: &DocIndex,
    context: &[u32],
    axis: crate::ast::Axis,
    test: &CompiledTest,
    keep: impl Fn(NodeId) -> bool,
) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::new();
    match axis {
        crate::ast::Axis::Child => {
            for &r in context {
                let node = idx.node_at(r);
                for &c in doc.children(node) {
                    if matches_test(doc, idx, c, test) && keep(c) {
                        out.push(idx.rank_of(c));
                    }
                }
            }
            // Context nodes can be nested (after a `//` step), so child
            // blocks may interleave in rank space.
            out.sort_unstable();
            out.dedup();
        }
        crate::ast::Axis::Descendant => {
            let postings = postings_for(idx, test);
            // Merge subtree ranges first: context is sorted by rank, and
            // tree ranges either nest or are disjoint, so any range that
            // starts before the running end is fully contained.
            let mut end = 0u32;
            for &r in context {
                let span = idx.subtree(r);
                if span.end <= end {
                    continue; // nested inside an earlier context node
                }
                let lo = (r + 1).max(end); // exclude the context node itself
                end = span.end;
                let from = postings.partition_point(|&p| p < lo);
                let to = postings.partition_point(|&p| p < span.end);
                for &p in &postings[from..to] {
                    // Posting-list membership already established the
                    // node test.
                    if keep(idx.node_at(p)) {
                        out.push(p);
                    }
                }
            }
            // Posting lists are ascending and merged ranges are disjoint,
            // so `out` is already sorted and deduplicated.
        }
    }
    out
}

pub(crate) fn postings_for<'i>(idx: &'i DocIndex, test: &CompiledTest) -> &'i [u32] {
    match test {
        CompiledTest::Tag(sym) => idx.tag_postings(*sym),
        CompiledTest::AnyElement => idx.element_postings(),
        CompiledTest::Text => idx.text_postings(),
    }
}

fn matches_test(doc: &Document, idx: &DocIndex, id: NodeId, test: &CompiledTest) -> bool {
    match *test {
        CompiledTest::Tag(sym) => idx.tag_sym(id) == Some(sym),
        CompiledTest::AnyElement => doc.is_element(id),
        CompiledTest::Text => doc.is_text(id),
    }
}

fn passes_resolved(
    idx: &DocIndex,
    id: NodeId,
    test: &CompiledTest,
    preds: &[ResolvedPred],
) -> bool {
    preds.iter().all(|pred| match *pred {
        ResolvedPred::Attr { name, value_id } => idx.has_attr(id, name, value_id),
        ResolvedPred::Position(k) => {
            let pos = match test {
                CompiledTest::Tag(_) => idx.same_tag_pos(id),
                CompiledTest::AnyElement => idx.elem_pos(id),
                CompiledTest::Text => idx.text_pos(id),
            };
            u64::from(pos) == k
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_xpath;
    use crate::reference;
    use aw_dom::parse;

    fn both(doc: &Document, xp: &str) -> (Vec<NodeId>, Vec<NodeId>) {
        let ast = parse_xpath(xp).unwrap();
        let compiled = CompiledXPath::compile(&ast);
        (
            reference::evaluate(&ast, doc),
            evaluate_compiled(&compiled, doc),
        )
    }

    #[test]
    fn agrees_with_reference_on_fragment_shapes() {
        let doc = parse(
            "<div class='content'>\
               <table><tr><td>r1c1</td><td>r1c2</td></tr>\
                      <tr><td>r2c1</td><td>r2c2</td></tr></table>\
               <table><tr><td>z1</td><td>z2</td></tr></table>\
             </div>\
             <div class='footer'><td>f</td>tail</div>",
        );
        for xp in [
            "//div[@class='content']/table[1]/tr/td[2]/text()",
            "//td/text()",
            "//div//text()",
            "//div//td",
            "/div/table/tr/td",
            "//*",
            "//table[2]/tr/td[1]/text()",
            "//div[@class='footer']/text()",
            "//td[7]",
            "//div/*",
            "//div//*[1]",
            "//text()[1]",
            "/text()",
        ] {
            let (r, i) = both(&doc, xp);
            assert_eq!(r, i, "mismatch for {xp}");
        }
    }

    #[test]
    fn nested_context_descendants_dedupe() {
        // `//div//p`: the inner p is a descendant of both divs; subtree
        // merging must not double-count it.
        let doc = parse("<div><div><p>x</p></div></div>");
        let (r, i) = both(&doc, "//div//p");
        assert_eq!(r, i);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn empty_document_evaluates_to_nothing() {
        let doc = Document::default();
        let compiled = CompiledXPath::compile(&parse_xpath("//td").unwrap());
        assert!(evaluate_compiled(&compiled, &doc).is_empty());
    }

    #[test]
    fn oversized_positions_do_not_wrap() {
        // Regression: positions beyond u32 once truncated during
        // compilation, making `[2^32 + 1]` match position 1.
        let doc = parse("<p>a</p><p>b</p>");
        let k = (u32::MAX as usize) + 2; // wraps to 1 under truncation
        let xp = parse_xpath(&format!("//p[{k}]")).unwrap();
        assert!(reference::evaluate(&xp, &doc).is_empty());
        assert!(evaluate_compiled(&CompiledXPath::compile(&xp), &doc).is_empty());
    }

    #[test]
    fn empty_path_returns_root() {
        let doc = parse("<p>x</p>");
        let compiled = CompiledXPath::default();
        assert_eq!(evaluate_compiled(&compiled, &doc), vec![doc.root()]);
    }
}
