//! # aw-xpath — the xpath fragment used by the XPATH wrapper language
//!
//! Implements the simple xpath fragment of Dalvi et al. (SIGMOD 2009) that
//! §5 of *Automatic Wrappers for Large Scale Web Extraction* (VLDB 2011)
//! adopts as one of its two wrapper languages.
//!
//! ## Fragment semantics
//!
//! A path is a sequence of location steps, always absolute (anchored at
//! the synthetic document root):
//!
//! * **`/test`** (child axis) selects the matching children of each
//!   context node; **`//test`** (descendant axis) selects all matching
//!   descendants, the context node excluded;
//! * a **node test** is a tag name (`td`), the element wildcard (`*`) or
//!   `text()`;
//! * **`[@name='value']`** keeps nodes carrying exactly that attribute
//!   value (never matches text nodes);
//! * **`[k]`** (child-number filter) keeps a node iff it is the k-th
//!   child of its parent *among siblings matching the step's node test* —
//!   `td[2]` is the second `td` child (paper Equation 3), `text()[2]` the
//!   second text-node child (the extension separating `<br>`-delimited
//!   record fields);
//! * predicates conjoin in source order; results are deduplicated and
//!   returned in document order.
//!
//! ## Engines
//!
//! Three implementations share those semantics, byte-for-byte:
//!
//! * [`reference::evaluate`] — the tree-walking interpreter, kept as the
//!   differential-testing oracle (`tests/xpath_differential.rs` holds the
//!   others to it on thousands of random (page, path) pairs);
//! * [`evaluate_compiled`] — evaluates a [`CompiledXPath`] (tags and
//!   attributes resolved to interned [`aw_dom::Sym`]s) against the
//!   document's [`aw_dom::DocIndex`]: `//` steps become posting-list
//!   range probes over subtree spans, `[k]` filters read precomputed
//!   sibling positions, attribute checks compare interned symbols;
//! * [`BatchEvaluator`] — evaluates a whole candidate set (the wrapper
//!   space `W(L)` of §4) at once: compiled steps are arranged in a
//!   predicate-aware prefix trie so every shared prefix is evaluated once
//!   per page (steps differing only in `[k]`/`[@a='v']` predicates share
//!   one traversal and fan out integer-only filters), and each
//!   intermediate context node-set is reused by all candidates below it.
//!
//! [`ShardedBatch`] extends the batch engine to multi-site candidate
//! sets: one trie per site (prefix sharing is strongest within a site's
//! space), each applied only to its own site's pages, page-parallel
//! through the shared work-stealing [`aw_pool::Executor`]. Both batch
//! engines keep a cross-page [`TemplateCache`]: pages sharing a
//! structural template fingerprint
//! ([`aw_dom::DocIndex::template_fingerprint`]) replay one page's bare
//! traversals instead of recomputing them — the template-replay fast
//! path for structurally near-identical pages of one site.
//!
//! [`evaluate`] is the one-shot convenience (compile + indexed evaluate).
//! Use [`CompiledXPath::compile`] + [`evaluate_compiled`] to apply one
//! rule to many pages, [`BatchEvaluator`] for many rules, and
//! [`ShardedBatch`] for many rules across many sites.
//!
//! ```
//! use aw_dom::parse;
//! use aw_xpath::{evaluate, parse_xpath, BatchEvaluator};
//!
//! let doc = parse("<div class='dealerlinks'><tr><td><u>PORTER FURNITURE</u>\
//!                  </td></tr></div>");
//! let rule = parse_xpath("//div[@class='dealerlinks']/tr/td/u/text()").unwrap();
//! let names: Vec<&str> = evaluate(&rule, &doc)
//!     .into_iter()
//!     .filter_map(|id| doc.text(id))
//!     .collect();
//! assert_eq!(names, vec!["PORTER FURNITURE"]);
//!
//! // Batch: both rules share the `//div[..]/tr/td` prefix — it is
//! // evaluated once.
//! let wide = parse_xpath("//div[@class='dealerlinks']/tr/td//text()").unwrap();
//! let batch = BatchEvaluator::from_xpaths([&rule, &wide]);
//! let results = batch.evaluate(&doc);
//! assert_eq!(results[0].len(), 1);
//! assert_eq!(results[1].len(), 1);
//! ```

pub mod ast;
pub mod batch;
pub mod compile;
pub mod eval;
pub mod indexed;
pub mod parser;
pub mod reference;
pub mod shard;

pub use ast::{Axis, NodeTest, Predicate, Step, XPath};
pub use batch::{BatchEvaluator, ReplayStats, TemplateCache};
pub use compile::{CompiledPred, CompiledStep, CompiledTest, CompiledXPath};
pub use eval::evaluate;
pub use indexed::evaluate_compiled;
pub use parser::{parse_xpath, ParseError};
pub use shard::ShardedBatch;
