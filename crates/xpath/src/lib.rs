//! # aw-xpath — the xpath fragment used by the XPATH wrapper language
//!
//! Implements the simple xpath fragment of Dalvi et al. (SIGMOD 2009) that
//! §5 of *Automatic Wrappers for Large Scale Web Extraction* (VLDB 2011)
//! adopts as one of its two wrapper languages: child edges (`/`),
//! descendant edges (`//`), attribute filters (`[@class='x']`),
//! child-number filters (`td[2]`) and a `text()` node test.
//!
//! ```
//! use aw_dom::parse;
//! use aw_xpath::{evaluate, parse_xpath};
//!
//! let doc = parse("<div class='dealerlinks'><tr><td><u>PORTER FURNITURE</u>\
//!                  </td></tr></div>");
//! let rule = parse_xpath("//div[@class='dealerlinks']/tr/td/u/text()").unwrap();
//! let names: Vec<&str> = evaluate(&rule, &doc)
//!     .into_iter()
//!     .filter_map(|id| doc.text(id))
//!     .collect();
//! assert_eq!(names, vec!["PORTER FURNITURE"]);
//! ```

pub mod ast;
pub mod eval;
pub mod parser;

pub use ast::{Axis, NodeTest, Predicate, Step, XPath};
pub use eval::evaluate;
pub use parser::{parse_xpath, ParseError};
