//! Parser for the xpath fragment.
//!
//! Grammar (no whitespace sensitivity inside predicates):
//!
//! ```text
//! path      := step+
//! step      := ("/" | "//") test predicate*
//! test      := name | "*" | "text()"
//! predicate := "[" "@" name "=" "'" value "'" "]"
//!            | "[" integer "]"
//! ```

use crate::ast::{Axis, NodeTest, Predicate, Step, XPath};

/// A parse failure with byte position and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "xpath parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses an xpath string such as `//div[@class='x']/td[2]/text()`.
pub fn parse_xpath(input: &str) -> Result<XPath, ParseError> {
    let mut p = Parser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    let mut steps = Vec::new();
    if p.bytes.is_empty() {
        return Err(p.err("empty xpath"));
    }
    while p.pos < p.bytes.len() {
        steps.push(p.step()?);
    }
    Ok(XPath::new(steps))
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: msg.into(),
        }
    }

    fn step(&mut self) -> Result<Step, ParseError> {
        let axis = if self.eat("//") {
            Axis::Descendant
        } else if self.eat("/") {
            Axis::Child
        } else {
            return Err(self.err("expected '/' or '//'"));
        };
        let test = self.node_test()?;
        let mut predicates = Vec::new();
        while self.peek() == Some(b'[') {
            predicates.push(self.predicate()?);
        }
        // text() supports only position filters (`text()[2]` is the k-th
        // text-node child); attribute filters on text are meaningless.
        if test == NodeTest::Text
            && predicates
                .iter()
                .any(|p| matches!(p, Predicate::Attr { .. }))
        {
            return Err(self.err("text() takes no attribute filters"));
        }
        Ok(Step {
            axis,
            test,
            predicates,
        })
    }

    fn node_test(&mut self) -> Result<NodeTest, ParseError> {
        if self.eat("text()") {
            return Ok(NodeTest::Text);
        }
        if self.eat("*") {
            return Ok(NodeTest::AnyElement);
        }
        let name = self.name()?;
        Ok(NodeTest::Tag(name))
    }

    fn predicate(&mut self) -> Result<Predicate, ParseError> {
        assert!(self.eat("["));
        let pred = if self.eat("@") {
            let name = self.name()?;
            if !self.eat("=") {
                return Err(self.err("expected '=' in attribute filter"));
            }
            if !self.eat("'") {
                return Err(self.err("expected quoted attribute value"));
            }
            let start = self.pos;
            while self.peek().is_some() && self.peek() != Some(b'\'') {
                self.pos += 1;
            }
            let value = self.input[start..self.pos].to_string();
            if !self.eat("'") {
                return Err(self.err("unterminated attribute value"));
            }
            Predicate::Attr { name, value }
        } else {
            let start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if start == self.pos {
                return Err(self.err("expected '@' or a position number"));
            }
            let k: usize = self.input[start..self.pos]
                .parse()
                .map_err(|_| self.err("position out of range"))?;
            if k == 0 {
                return Err(self.err("positions are 1-based"));
            }
            Predicate::Position(k)
        };
        if !self.eat("]") {
            return Err(self.err("expected ']'"));
        }
        Ok(pred)
    }

    fn name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b':')
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected a name"));
        }
        Ok(self.input[start..self.pos].to_ascii_lowercase())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.input[self.pos..].starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_equation_3() {
        let s = "//div[@class='content']/table[1]/tr/td[2]/text()";
        let p = parse_xpath(s).unwrap();
        assert_eq!(p.to_string(), s);
        assert_eq!(p.steps.len(), 5);
        assert_eq!(p.steps[0].axis, Axis::Descendant);
        assert_eq!(p.steps[1].predicates, vec![Predicate::Position(1)]);
        assert_eq!(p.steps[4].test, NodeTest::Text);
    }

    #[test]
    fn round_trips_display() {
        for s in [
            "//*",
            "/html/body/div",
            "//td[2]",
            "//div[@id='main'][@class='x']/text()",
            "//u/text()",
            "//td/text()[3]",
        ] {
            let p = parse_xpath(s).unwrap();
            assert_eq!(p.to_string(), s, "round trip of {s}");
        }
    }

    #[test]
    fn case_folds_names() {
        let p = parse_xpath("//DIV[@CLASS='Mixed']").unwrap();
        assert_eq!(p.to_string(), "//div[@class='Mixed']"); // value case kept
    }

    #[test]
    fn rejects_malformed() {
        for s in [
            "",
            "div",              // missing axis
            "//",               // missing test
            "//div[",           // unterminated predicate
            "//div[@]",         // missing attr name
            "//div[@a=b]",      // unquoted value
            "//div[@a='b]",     // unterminated value
            "//div[0]",         // 0 position
            "//div[x]",         // junk predicate
            "//text()[@a='b']", // attribute filter on text()
            "//div]extra",      // trailing junk
        ] {
            assert!(parse_xpath(s).is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn error_reports_position() {
        let e = parse_xpath("//div[@a='b]").unwrap_err();
        assert!(e.at > 5, "error position should be inside predicate: {e}");
        assert!(e.to_string().contains("unterminated"));
    }
}
