//! Evaluation of the xpath fragment over an [`aw_dom::Document`].
//!
//! Semantics follow XPath 1.0 restricted to the fragment:
//!
//! * a path is absolute (anchored at the document root);
//! * `/test` selects matching children of each context node;
//! * `//test` selects matching descendants of each context node;
//! * `[@a='v']` keeps elements with that attribute value;
//! * `[k]` keeps a node if it is the k-th child *among same-test siblings*
//!   of its parent (so `td[2]` is the second `td` child, as in the paper's
//!   Equation (3));
//! * results are deduplicated and returned in document order.
//!
//! Since the compiled-engine refactor, this entry point compiles the path
//! ([`crate::compile`]) and evaluates it against the document's
//! [`aw_dom::DocIndex`] ([`crate::indexed`]). The original tree-walking
//! interpreter survives as [`crate::reference::evaluate`], the oracle the
//! differential test suite holds the compiled engines to.

use crate::ast::XPath;
use crate::compile::CompiledXPath;
use crate::indexed::evaluate_compiled;
use aw_dom::{Document, NodeId};

/// Evaluates `path` on `doc`, returning matching nodes in document order.
///
/// One-shot convenience: compiles and evaluates. Callers evaluating the
/// same path against many pages should compile once
/// ([`CompiledXPath::compile`]) and call
/// [`crate::indexed::evaluate_compiled`]; callers evaluating many related
/// paths should use a [`crate::BatchEvaluator`].
pub fn evaluate(path: &XPath, doc: &Document) -> Vec<NodeId> {
    evaluate_compiled(&CompiledXPath::compile(path), doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_xpath;
    use aw_dom::parse;

    fn eval_texts(doc: &Document, xp: &str) -> Vec<String> {
        evaluate(&parse_xpath(xp).unwrap(), doc)
            .into_iter()
            .filter_map(|id| doc.text(id).map(str::to_string))
            .collect()
    }

    fn eval_count(doc: &Document, xp: &str) -> usize {
        evaluate(&parse_xpath(xp).unwrap(), doc).len()
    }

    #[test]
    fn paper_intro_rule_extracts_dealer_names() {
        // §1: //div[@class='dealerlinks']/tr/td/u/text()
        let doc = parse(
            "<div class='dealerlinks'>\
               <tr><td><u>PORTER FURNITURE</u><br>201 HWY.30 West<br>NEW ALBANY, MS 38652</td></tr>\
               <tr><td><u>WOODLAND FURNITURE</u><br>123 Main St.<br>WOODLAND, MS 3977</td></tr>\
             </div>",
        );
        assert_eq!(
            eval_texts(&doc, "//div[@class='dealerlinks']/tr/td/u/text()"),
            vec!["PORTER FURNITURE", "WOODLAND FURNITURE"]
        );
        // The over-generalized rule from §1 catches all text under td.
        assert_eq!(
            eval_texts(&doc, "//div[@class='dealerlinks']/tr/td//text()").len(),
            6
        );
    }

    #[test]
    fn child_vs_descendant() {
        let doc = parse("<div><p>a</p><section><p>b</p></section></div>");
        assert_eq!(eval_count(&doc, "/div/p"), 1);
        assert_eq!(eval_count(&doc, "//p"), 2);
        assert_eq!(eval_count(&doc, "/p"), 0);
    }

    #[test]
    fn position_counts_same_test_siblings() {
        let doc = parse("<tr><td>a</td><span>x</span><td>b</td><td>c</td></tr>");
        assert_eq!(eval_texts(&doc, "//td[2]/text()"), vec!["b"]);
        assert_eq!(eval_texts(&doc, "//td[3]/text()"), vec!["c"]);
        assert_eq!(eval_count(&doc, "//td[4]"), 0);
    }

    #[test]
    fn attribute_filters() {
        let doc = parse("<div class='a'>1</div><div class='b'>2</div><div>3</div>");
        assert_eq!(eval_texts(&doc, "//div[@class='a']/text()"), vec!["1"]);
        assert_eq!(eval_texts(&doc, "//div[@class='b']/text()"), vec!["2"]);
        assert_eq!(eval_count(&doc, "//div[@class='c']"), 0);
    }

    #[test]
    fn multiple_predicates_conjunction() {
        let doc = parse("<ul><li class='x'>1</li><li class='x'>2</li><li class='y'>3</li></ul>");
        // Position is evaluated among same-tag siblings, then attr must hold.
        assert_eq!(eval_texts(&doc, "//li[2][@class='x']/text()"), vec!["2"]);
        assert_eq!(eval_count(&doc, "//li[3][@class='x']"), 0);
    }

    #[test]
    fn wildcard_selects_any_element() {
        let doc = parse("<div><p>a</p><span>b</span></div>");
        assert_eq!(eval_count(&doc, "/div/*"), 2);
        assert_eq!(eval_count(&doc, "//*"), 3);
    }

    #[test]
    fn text_step() {
        let doc = parse("<td>direct<u>nested</u>tail</td>");
        assert_eq!(eval_texts(&doc, "//td/text()"), vec!["direct", "tail"]);
        assert_eq!(
            eval_texts(&doc, "//td//text()"),
            vec!["direct", "nested", "tail"]
        );
    }

    #[test]
    fn text_position_filter() {
        // text()[k] counts text-node siblings only — the extension that
        // separates br-delimited record fields.
        let doc = parse("<td>NAME<br>12 Elm St<br>CITY, ST 38652<br>555-0101</td>");
        assert_eq!(eval_texts(&doc, "//td/text()[1]"), vec!["NAME"]);
        assert_eq!(eval_texts(&doc, "//td/text()[3]"), vec!["CITY, ST 38652"]);
        assert_eq!(eval_count(&doc, "//td/text()[5]"), 0);
    }

    #[test]
    fn results_deduped_in_document_order() {
        // `//div//p`: the inner p is a descendant of both divs.
        let doc = parse("<div><div><p>x</p></div></div>");
        assert_eq!(eval_count(&doc, "//div//p"), 1);
        let doc2 = parse("<div><p>1</p></div><div><p>2</p></div>");
        assert_eq!(eval_texts(&doc2, "//div/p/text()"), vec!["1", "2"]);
    }

    #[test]
    fn equation_3_shape() {
        let doc = parse(
            "<div class='content'>\
               <table><tr><td>r1c1</td><td>r1c2</td></tr>\
                      <tr><td>r2c1</td><td>r2c2</td></tr></table>\
               <table><tr><td>z1</td><td>z2</td></tr></table>\
             </div>",
        );
        assert_eq!(
            eval_texts(&doc, "//div[@class='content']/table[1]/tr/td[2]/text()"),
            vec!["r1c2", "r2c2"]
        );
    }

    #[test]
    fn empty_path_result_propagates() {
        let doc = parse("<div><p>a</p></div>");
        assert_eq!(eval_count(&doc, "//nope/p/text()"), 0);
    }
}
