//! AST for the xpath fragment of Dalvi et al. (SIGMOD 2009), §5 of the
//! VLDB 2011 paper:
//!
//! * child edges (`/`) and descendant edges (`//`),
//! * attribute filters (`[@class='content']`),
//! * child-number filters (`td[2]`),
//! * a final `text()` node test.
//!
//! Example: `//div[@class='content']/table[1]/tr/td[2]/text()`.

use std::fmt;

/// How a step moves from its context nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `/` — direct children.
    Child,
    /// `//` — all descendants.
    Descendant,
}

/// What kind of node a step selects.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum NodeTest {
    /// A tag name, e.g. `td`.
    Tag(String),
    /// `*` — any element.
    AnyElement,
    /// `text()` — text nodes.
    Text,
}

/// A filter applied to the nodes a step selects.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Predicate {
    /// `[@name='value']`.
    Attr { name: String, value: String },
    /// `[k]` — the k-th (1-based) matching child of its parent. Following
    /// xpath semantics for a tag test, position counts only siblings that
    /// match the same node test.
    Position(usize),
}

/// One location step.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Step {
    /// Axis of the step.
    pub axis: Axis,
    /// Node test.
    pub test: NodeTest,
    /// Filters, applied in order.
    pub predicates: Vec<Predicate>,
}

impl Step {
    /// A bare child step with no predicates.
    pub fn child(tag: impl Into<String>) -> Self {
        Step {
            axis: Axis::Child,
            test: NodeTest::Tag(tag.into()),
            predicates: Vec::new(),
        }
    }

    /// A bare descendant step with no predicates.
    pub fn descendant(tag: impl Into<String>) -> Self {
        Step {
            axis: Axis::Descendant,
            test: NodeTest::Tag(tag.into()),
            predicates: Vec::new(),
        }
    }
}

/// A full location path (always absolute: anchored at the document root).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct XPath {
    /// Location steps in order.
    pub steps: Vec<Step>,
}

impl XPath {
    /// The trivial path `//*` that the XPATH inductor starts from (§5).
    pub fn any() -> Self {
        XPath {
            steps: vec![Step {
                axis: Axis::Descendant,
                test: NodeTest::AnyElement,
                predicates: vec![],
            }],
        }
    }

    /// Builds a path from steps.
    pub fn new(steps: Vec<Step>) -> Self {
        XPath { steps }
    }
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Tag(t) => f.write_str(t),
            NodeTest::AnyElement => f.write_str("*"),
            NodeTest::Text => f.write_str("text()"),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Attr { name, value } => write!(f, "[@{name}='{value}']"),
            Predicate::Position(k) => write!(f, "[{k}]"),
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.axis {
            Axis::Child => f.write_str("/")?,
            Axis::Descendant => f.write_str("//")?,
        }
        write!(f, "{}", self.test)?;
        for p in &self.predicates {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

impl fmt::Display for XPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.steps {
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_paper_example() {
        // Equation (3) of the paper.
        let p = XPath::new(vec![
            Step {
                axis: Axis::Descendant,
                test: NodeTest::Tag("div".into()),
                predicates: vec![Predicate::Attr {
                    name: "class".into(),
                    value: "content".into(),
                }],
            },
            Step {
                axis: Axis::Child,
                test: NodeTest::Tag("table".into()),
                predicates: vec![Predicate::Position(1)],
            },
            Step::child("tr"),
            Step {
                axis: Axis::Child,
                test: NodeTest::Tag("td".into()),
                predicates: vec![Predicate::Position(2)],
            },
            Step {
                axis: Axis::Child,
                test: NodeTest::Text,
                predicates: vec![],
            },
        ]);
        assert_eq!(
            p.to_string(),
            "//div[@class='content']/table[1]/tr/td[2]/text()"
        );
    }

    #[test]
    fn displays_any() {
        assert_eq!(XPath::any().to_string(), "//*");
    }
}
