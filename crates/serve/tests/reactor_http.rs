//! Socket-level tests of the event-driven reactor (unix-only: the
//! reactor needs `poll(2)`; other platforms serve with the blocking
//! loop, covered by `http_server.rs`).
//!
//! The heart is the **differential test**: the reactor and the legacy
//! blocking loop serve identical request sequences over real sockets
//! and must produce byte-identical responses — for every endpoint,
//! every wrapper language, and multiple worker counts. The only
//! tolerated divergence is the `latency` object of `GET /wrappers`
//! (wall-clock measurements), which is normalized through a JSON parse
//! before comparison.
#![cfg(unix)]

use aw_core::{
    CompiledWrapper, ExtractionService, LearnedRule, WrapperBundle, WrapperLanguage,
    WrapperRegistry,
};
use aw_induct::{NodeSet, Site};
use aw_pool::Executor;
use aw_serve::{Server, ServerHandle};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn wrapper_in(language: WrapperLanguage) -> CompiledWrapper {
    let site = Site::from_html(&[
        "<table class='stores'><tr><td><b>ALPHA CO</b></td><td>1 Elm</td></tr>\
         <tr><td><b>BETA LLC</b></td><td>2 Oak</td></tr></table>",
        "<table class='stores'><tr><td><b>GAMMA INC</b></td><td>3 Fir</td></tr>\
         <tr><td><b>DELTA LTD</b></td><td>4 Ash</td></tr></table>",
    ]);
    let mut labels = NodeSet::new();
    labels.extend(site.find_text("ALPHA CO"));
    labels.extend(site.find_text("DELTA LTD"));
    CompiledWrapper::from_rule(LearnedRule::learn(&site, language, &labels))
}

fn service_in(language: WrapperLanguage) -> Arc<ExtractionService> {
    let registry = Arc::new(WrapperRegistry::new());
    registry.insert("dealers", wrapper_in(language));
    Arc::new(ExtractionService::new(registry).with_executor(Executor::new(2)))
}

/// Sends raw bytes on a fresh connection and reads the raw reply to
/// EOF.
fn raw_roundtrip(addr: &SocketAddr, request: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request).expect("send");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("receive");
    reply
}

/// Frames one `Connection: close` request.
fn framed(method: &str, path: &str, body: &str) -> Vec<u8> {
    format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

const PAGE: &str =
    "<table class='stores'><tr><td><b>OMEGA GROUP</b></td><td>9 Elm</td></tr></table>";

/// The request sequence the differential test replays against both
/// engines: every endpoint, the error surfaces, and raw protocol
/// violations. Order matters — requests mutate health counters and the
/// registry, and both servers must walk the same state trajectory.
fn request_sequence() -> Vec<(&'static str, Vec<u8>)> {
    let extract_one = format!(r#"{{"site":"dealers","html":"{PAGE}"}}"#);
    let extract_many = format!(r#"{{"site":"dealers","pages":["{PAGE}","<p>none</p>",""]}}"#);
    let swap_bundle = {
        let mut bundle = WrapperBundle::new();
        bundle.insert("swapped", wrapper_in(WrapperLanguage::XPath));
        bundle.to_json()
    };
    vec![
        ("healthz", framed("GET", "/healthz", "")),
        ("extract one", framed("POST", "/extract", &extract_one)),
        ("extract many", framed("POST", "/extract", &extract_many)),
        ("site health", framed("GET", "/health/dealers", "")),
        ("all health", framed("GET", "/health", "")),
        ("wrappers", framed("GET", "/wrappers", "")),
        ("unknown site", framed("POST", "/extract", r#"{"site":"zz","html":"x"}"#)),
        ("unknown path", framed("GET", "/nope", "")),
        ("bad method", framed("DELETE", "/extract", "")),
        ("bad body", framed("POST", "/extract", "garbage")),
        ("hot swap", framed("POST", "/wrappers", &swap_bundle)),
        ("post-swap extract", framed("POST", "/extract", &extract_one)),
        ("post-swap wrappers", framed("GET", "/wrappers", "")),
        ("malformed line", b"BOGUS\r\n\r\n".to_vec()),
        (
            "chunked refused",
            b"POST /extract HTTP/1.1\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
                .to_vec(),
        ),
        (
            "oversized declared body",
            b"POST /wrappers HTTP/1.1\r\nContent-Length: 104857600\r\nConnection: close\r\n\r\nxxxx"
                .to_vec(),
        ),
    ]
}

/// Strips the timing-dependent `latency` object (and the wall-clock
/// `parse.micros` counter) out of a `/wrappers` reply so the remaining
/// bytes admit exact comparison.
fn normalize_wrappers(reply: &[u8]) -> String {
    let text = String::from_utf8(reply.to_vec()).expect("wrappers reply is UTF-8");
    let (head, body) = text.split_once("\r\n\r\n").expect("framed reply");
    let mut v = serde_json::from_str(body).expect("wrappers body is JSON");
    if let serde::Value::Object(entries) = &mut v {
        let position = entries
            .iter()
            .position(|(key, _)| key == "latency")
            .unwrap_or_else(|| panic!("wrappers reply lost its latency object: {body}"));
        entries.remove(position);
        let parse = entries
            .iter_mut()
            .find(|(key, _)| key == "parse")
            .unwrap_or_else(|| panic!("wrappers reply lost its parse object: {body}"));
        if let serde::Value::Object(fields) = &mut parse.1 {
            let micros = fields
                .iter_mut()
                .find(|(key, _)| key == "micros")
                .unwrap_or_else(|| panic!("parse object lost its micros field: {body}"));
            micros.1 = serde::Value::Number(0.0);
        }
    }
    // The Content-Length header covers the unnormalized body; drop it.
    let head: Vec<&str> = head
        .split("\r\n")
        .filter(|line| !line.to_ascii_lowercase().starts_with("content-length"))
        .collect();
    format!(
        "{}\n{}",
        head.join("\n"),
        serde_json::to_string(&v).unwrap()
    )
}

#[test]
fn reactor_is_byte_identical_to_the_blocking_oracle() {
    for language in WrapperLanguage::ALL {
        for workers in [1usize, 3] {
            let reactor = Server::bind(service_in(language), "127.0.0.1:0")
                .expect("bind reactor")
                .workers(workers)
                .start()
                .expect("start reactor");
            let oracle = Server::bind(service_in(language), "127.0.0.1:0")
                .expect("bind oracle")
                .workers(workers)
                .blocking(true)
                .start()
                .expect("start oracle");
            for (label, request) in request_sequence() {
                let from_reactor = raw_roundtrip(&reactor.addr(), &request);
                let from_oracle = raw_roundtrip(&oracle.addr(), &request);
                if label.contains("wrappers") && request.starts_with(b"GET") {
                    assert_eq!(
                        normalize_wrappers(&from_reactor),
                        normalize_wrappers(&from_oracle),
                        "{language:?}/{workers} workers: {label} diverged"
                    );
                } else {
                    assert_eq!(
                        String::from_utf8_lossy(&from_reactor),
                        String::from_utf8_lossy(&from_oracle),
                        "{language:?}/{workers} workers: {label} diverged"
                    );
                }
            }
            reactor.shutdown();
            oracle.shutdown();
        }
    }
}

fn start_reactor(service: Arc<ExtractionService>) -> ServerHandle {
    Server::bind(service, "127.0.0.1:0")
        .expect("bind")
        .workers(2)
        .start()
        .expect("start")
}

/// Splits a byte stream of HTTP responses into individual framed
/// responses using each one's Content-Length.
fn split_responses(stream: &[u8]) -> Vec<String> {
    let text = String::from_utf8_lossy(stream);
    let mut rest = text.as_ref();
    let mut responses = Vec::new();
    while let Some((head, after)) = rest.split_once("\r\n\r\n") {
        let length: usize = head
            .split("\r\n")
            .find_map(|line| line.strip_prefix("Content-Length: "))
            .expect("response declares Content-Length")
            .parse()
            .expect("parsable Content-Length");
        responses.push(format!("{head}\r\n\r\n{}", &after[..length]));
        rest = &after[length..];
    }
    assert!(
        rest.is_empty(),
        "trailing bytes after last response: {rest:?}"
    );
    responses
}

#[test]
fn keep_alive_pipelining_answers_in_order_and_close_is_honored() {
    let server = start_reactor(service_in(WrapperLanguage::XPath));
    let page_one = "<table class='stores'><tr><td><b>PAGE ONE</b></td><td>1 Elm</td></tr></table>";
    let page_two = "<table class='stores'><tr><td><b>PAGE TWO</b></td><td>2 Oak</td></tr></table>";
    let first = format!(r#"{{"site":"dealers","html":"{page_one}"}}"#);
    let second = format!(r#"{{"site":"dealers","html":"{page_two}"}}"#);
    // Both requests in one write: the second waits in the read buffer
    // while the first is in flight, and `Connection: close` on the
    // second ends the stream so EOF frames the whole exchange.
    let mut pipelined = format!(
        "POST /extract HTTP/1.1\r\nContent-Length: {}\r\n\r\n{first}",
        first.len()
    )
    .into_bytes();
    pipelined.extend_from_slice(
        format!(
            "POST /extract HTTP/1.1\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{second}",
            second.len()
        )
        .as_bytes(),
    );
    let replies = split_responses(&raw_roundtrip(&server.addr(), &pipelined));
    assert_eq!(replies.len(), 2, "{replies:?}");
    assert!(replies[0].contains("PAGE ONE"), "{}", replies[0]);
    assert!(
        replies[0].contains("Connection: keep-alive"),
        "{}",
        replies[0]
    );
    assert!(replies[1].contains("PAGE TWO"), "{}", replies[1]);
    assert!(replies[1].contains("Connection: close"), "{}", replies[1]);
    server.shutdown();
}

#[test]
fn malformed_second_request_closes_cleanly_without_corrupting_the_first() {
    let server = start_reactor(service_in(WrapperLanguage::XPath));
    // A valid keep-alive request pipelined with garbage: the first
    // response must arrive intact, then a 400 that closes the stream.
    let mut pipelined = b"GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n".to_vec();
    pipelined.extend_from_slice(b"GARBAGE\r\n\r\n");
    let replies = split_responses(&raw_roundtrip(&server.addr(), &pipelined));
    assert_eq!(replies.len(), 2, "{replies:?}");
    assert!(replies[0].starts_with("HTTP/1.1 200"), "{}", replies[0]);
    assert!(replies[0].contains("\"status\":\"ok\""), "{}", replies[0]);
    assert!(
        replies[0].contains("Connection: keep-alive"),
        "{}",
        replies[0]
    );
    assert!(replies[1].starts_with("HTTP/1.1 400"), "{}", replies[1]);
    assert!(
        replies[1].contains("malformed request line"),
        "{}",
        replies[1]
    );
    assert!(replies[1].contains("Connection: close"), "{}", replies[1]);
    server.shutdown();
}

#[test]
fn read_deadline_fires_as_408_not_a_silent_drop() {
    let server = Server::bind(service_in(WrapperLanguage::XPath), "127.0.0.1:0")
        .expect("bind")
        .workers(1)
        .read_deadline(Duration::from_millis(200))
        .start()
        .expect("start");

    // Headers parsed, body stalls: the deadline must answer 408.
    let mut stalled_body = TcpStream::connect(server.addr()).expect("connect");
    stalled_body
        .write_all(b"POST /extract HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"site\":")
        .expect("send partial request");
    let mut reply = String::new();
    stalled_body.read_to_string(&mut reply).expect("read 408");
    assert!(reply.starts_with("HTTP/1.1 408"), "{reply}");
    assert!(reply.contains("read deadline exceeded"), "{reply}");

    // Head itself stalls (headers NOT parsed yet): still 408.
    let mut stalled_head = TcpStream::connect(server.addr()).expect("connect");
    stalled_head
        .write_all(b"GET /healthz HTT")
        .expect("send partial head");
    let mut reply = String::new();
    stalled_head.read_to_string(&mut reply).expect("read 408");
    assert!(reply.starts_with("HTTP/1.1 408"), "{reply}");
    server.shutdown();
}

#[test]
fn idle_connections_are_reaped_quietly() {
    let server = Server::bind(service_in(WrapperLanguage::XPath), "127.0.0.1:0")
        .expect("bind")
        .workers(1)
        .idle_timeout(Duration::from_millis(150))
        .start()
        .expect("start");
    // No request at all: the reactor closes the connection with no
    // bytes — an idle reap is not a protocol error.
    let mut idle = TcpStream::connect(server.addr()).expect("connect");
    let mut reply = Vec::new();
    idle.read_to_end(&mut reply).expect("read EOF");
    assert!(reply.is_empty(), "idle close must be silent: {reply:?}");
    server.shutdown();
}

#[test]
fn overload_sheds_503_with_retry_after_while_healthz_still_answers() {
    // queue_depth(0) makes every dispatched request overflow, which is
    // the deterministic way to drive the shed path.
    let server = Server::bind(service_in(WrapperLanguage::XPath), "127.0.0.1:0")
        .expect("bind")
        .workers(1)
        .queue_depth(0)
        .start()
        .expect("start");
    // One keep-alive connection: the shed 503 must not kill it, and a
    // healthz on the same stream must still answer 200 (it bypasses
    // the dispatch queue on the reactor thread).
    let extract = format!(r#"{{"site":"dealers","html":"{PAGE}"}}"#);
    let mut pipelined = format!(
        "POST /extract HTTP/1.1\r\nContent-Length: {}\r\n\r\n{extract}",
        extract.len()
    )
    .into_bytes();
    pipelined.extend_from_slice(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
    let replies = split_responses(&raw_roundtrip(&server.addr(), &pipelined));
    assert_eq!(replies.len(), 2, "{replies:?}");
    assert!(replies[0].starts_with("HTTP/1.1 503"), "{}", replies[0]);
    assert!(replies[0].contains("Retry-After: 1"), "{}", replies[0]);
    assert!(replies[0].contains("overloaded"), "{}", replies[0]);
    assert!(replies[1].starts_with("HTTP/1.1 200"), "{}", replies[1]);
    assert!(replies[1].contains("\"status\":\"ok\""), "{}", replies[1]);
    server.shutdown();
}

#[test]
fn accept_backpressure_parks_excess_connections_in_the_backlog() {
    let server = Server::bind(service_in(WrapperLanguage::XPath), "127.0.0.1:0")
        .expect("bind")
        .workers(1)
        .max_connections(1)
        .start()
        .expect("start");
    // First connection occupies the only slot.
    let holder = TcpStream::connect(server.addr()).expect("connect holder");
    // Second connects fine (kernel backlog) but gets no service.
    let mut parked = TcpStream::connect(server.addr()).expect("connect parked");
    parked
        .write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        .expect("send");
    parked
        .set_read_timeout(Some(Duration::from_millis(300)))
        .expect("timeout");
    let mut probe = [0u8; 1];
    let starved = matches!(
        parked.read(&mut probe),
        Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
    );
    assert!(starved, "parked connection was served despite the cap");
    // Freeing the slot lets the parked connection through.
    drop(holder);
    parked
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut reply = Vec::new();
    reply.push(probe[0]);
    reply.clear();
    parked.read_to_end(&mut reply).expect("read after release");
    let text = String::from_utf8_lossy(&reply);
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    server.shutdown();
}

#[test]
fn wrappers_reports_sane_latency_percentiles() {
    let service = service_in(WrapperLanguage::XPath);
    let server = start_reactor(Arc::clone(&service));
    let extract = format!(r#"{{"site":"dealers","html":"{PAGE}"}}"#);
    for _ in 0..5 {
        let reply = raw_roundtrip(&server.addr(), &framed("POST", "/extract", &extract));
        assert!(
            String::from_utf8_lossy(&reply).contains("OMEGA"),
            "extract failed"
        );
    }
    let reply = raw_roundtrip(&server.addr(), &framed("GET", "/wrappers", ""));
    let text = String::from_utf8_lossy(&reply);
    let body = text.split_once("\r\n\r\n").expect("framed").1;
    let v: serde::Value = serde_json::from_str(body).expect("JSON");
    let latency = v.get("latency").expect("latency object");
    let field = |name: &str| {
        latency
            .get(name)
            .and_then(serde::Value::as_f64)
            .unwrap_or_else(|| panic!("missing latency.{name}: {body}"))
    };
    assert!(field("count") >= 5.0, "{body}");
    let (p50, p90, p99, max) = (
        field("p50_us"),
        field("p90_us"),
        field("p99_us"),
        field("max_us"),
    );
    assert!(p50 <= p90 && p90 <= p99 && p99 <= max, "{body}");
    assert!(max > 0.0, "{body}");
    // The histogram is the service's: the in-process snapshot agrees
    // (the `/wrappers` request itself records *after* building its own
    // body, so the live count may be one ahead).
    assert!(service.latency().snapshot().count as f64 >= field("count"));
    server.shutdown();
}
