//! End-to-end test of the HTTP front end over real sockets: a raw
//! `TcpStream` client (no HTTP library exists in this offline
//! workspace, which is the point of the hand-rolled server) exercises
//! every endpoint, concurrent connections, and graceful shutdown.

use aw_core::{
    CompiledWrapper, ExtractionService, LearnedRule, WrapperBundle, WrapperLanguage,
    WrapperRegistry,
};
use aw_induct::{NodeSet, Site};
use aw_pool::Executor;
use aw_serve::Server;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn dealer_wrapper() -> CompiledWrapper {
    let site = Site::from_html(&[
        "<table class='stores'><tr><td><b>ALPHA CO</b></td><td>1 Elm</td></tr>\
         <tr><td><b>BETA LLC</b></td><td>2 Oak</td></tr></table>",
        "<table class='stores'><tr><td><b>GAMMA INC</b></td><td>3 Fir</td></tr>\
         <tr><td><b>DELTA LTD</b></td><td>4 Ash</td></tr></table>",
    ]);
    let mut labels = NodeSet::new();
    labels.extend(site.find_text("ALPHA CO"));
    labels.extend(site.find_text("DELTA LTD"));
    CompiledWrapper::from_rule(LearnedRule::learn(&site, WrapperLanguage::XPath, &labels))
}

/// Sends one request and returns `(status, body)`. Asks for
/// `Connection: close` so reading to EOF frames the response under
/// both engines (the reactor would otherwise hold the connection open
/// for keep-alive).
fn roundtrip(addr: &std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("receive");
    let status: u16 = reply
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable reply: {reply:?}"));
    let payload = reply
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

#[test]
fn http_server_serves_all_endpoints_concurrently_and_shuts_down() {
    let registry = Arc::new(WrapperRegistry::new());
    registry.insert("dealers", dealer_wrapper());
    let service =
        Arc::new(ExtractionService::new(Arc::clone(&registry)).with_executor(Executor::new(2)));
    let server = Server::bind(Arc::clone(&service), "127.0.0.1:0")
        .expect("bind ephemeral port")
        .workers(3);
    let addr = server.local_addr().expect("bound address");
    let handle = server.start().expect("start workers");

    // Liveness.
    let (status, body) = roundtrip(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    // Extraction from a fresh page of the learned script.
    let page = "<table class='stores'><tr><td><b>OMEGA GROUP</b></td><td>9 Elm</td></tr></table>";
    let (status, body) = roundtrip(
        &addr,
        "POST",
        "/extract",
        &format!(r#"{{"site":"dealers","html":"{page}"}}"#),
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("OMEGA GROUP"), "{body}");

    // Concurrent clients: all see consistent, correct answers.
    let answers: Vec<(u16, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                scope.spawn(move || {
                    let page = format!(
                        "<table class='stores'><tr><td><b>CLIENT {i}</b></td>\
                         <td>{i} Oak</td></tr></table>"
                    );
                    roundtrip(
                        &addr,
                        "POST",
                        "/extract",
                        &format!(r#"{{"site":"dealers","html":"{page}"}}"#),
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, (status, body)) in answers.iter().enumerate() {
        assert_eq!(*status, 200, "client {i}: {body}");
        assert!(body.contains(&format!("CLIENT {i}")), "client {i}: {body}");
    }

    // Error surfaces: unknown site, unknown path, bad method, bad body.
    let (status, _) = roundtrip(&addr, "POST", "/extract", r#"{"site":"x","html":""}"#);
    assert_eq!(status, 404);
    assert_eq!(roundtrip(&addr, "GET", "/nope", "").0, 404);
    assert_eq!(roundtrip(&addr, "DELETE", "/extract", "").0, 405);
    assert_eq!(roundtrip(&addr, "POST", "/extract", "garbage").0, 400);

    // Hot swap over the wire, then verify the new registry serves.
    let mut bundle = WrapperBundle::new();
    bundle.insert("swapped", dealer_wrapper());
    let (status, body) = roundtrip(&addr, "POST", "/wrappers", &bundle.to_json());
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"loaded\":1"), "{body}");
    let (status, body) = roundtrip(&addr, "GET", "/wrappers", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"site\":\"swapped\""), "{body}");
    let (status, _) = roundtrip(
        &addr,
        "POST",
        "/extract",
        &format!(r#"{{"site":"dealers","html":"{page}"}}"#),
    );
    assert_eq!(status, 404, "old site must be gone after the hot swap");

    // An oversized declared body is refused with a readable 413 even
    // though the client never finished uploading (the server drains
    // instead of slamming the connection with a reset).
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(
                b"POST /wrappers HTTP/1.1\r\nHost: test\r\nContent-Length: 104857600\r\n\r\n",
            )
            .expect("send oversized head");
        stream.write_all(&[b'x'; 4096]).expect("start body");
        let mut reply = String::new();
        stream.read_to_string(&mut reply).expect("read 413");
        assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");
        assert!(reply.contains("too large"), "{reply}");
    }

    handle.shutdown();
    // The port is released: a fresh bind on the same address succeeds.
    std::net::TcpListener::bind(addr).expect("port released after shutdown");
}
