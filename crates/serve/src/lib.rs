//! # aw-serve — the std-only HTTP front end of the extraction service
//!
//! Production extraction fronts a resident wrapper store with a network
//! service: wrappers are learned offline, bundled
//! ([`aw_core::WrapperBundle`]), loaded into a hot-swappable
//! [`aw_core::WrapperRegistry`], and applied to whatever pages traffic
//! brings. This crate is that front end, built on nothing but
//! `std::net` — the build environment has no crates.io access, so
//! request parsing is hand-rolled (a deliberately small HTTP/1.1
//! subset, documented in `README.md`).
//!
//! ## Endpoints
//!
//! | Method & path    | Body                 | Reply |
//! |------------------|----------------------|-------|
//! | `POST /extract`  | `{"site": K, "html": H}` or `{"site": K, "pages": [H…]}` | extracted values per page + per-page parse errors |
//! | `GET /wrappers`  | —                    | resident sites, rules, template-cache stats, health, residency counters |
//! | `POST /wrappers` | a wrapper artifact of **any generation** — v1 single-wrapper JSON, v2 bundle JSON, or v3 binary bundle | hot-swaps the registry |
//! | `GET /healthz`   | —                    | liveness + site count + registry generation |
//! | `GET /health`    | —                    | every observed site's health + the event journal tail |
//! | `GET /health/{site}` | —                | one site's extraction-health counters |
//!
//! All replies are JSON. Errors carry `{"error": message}` — plus the
//! offending `"site"` key when the error names one — with 400
//! (malformed request / bundle), 404 (unknown site or path), 405
//! (method not allowed), 413 (oversized payload) or 500 (a damaged
//! bundle-store segment behind a lazy registry).
//!
//! When the service's registry is **lazy** (`awrap serve --lazy`, built
//! over a v3 [`aw_core::BundleStore`]), `GET /wrappers` lists only the
//! *resident* wrappers plus a `"residency"` object (cap, store size,
//! fault/eviction/grace counters); extraction requests fault wrappers
//! in transparently, so the endpoint surface is otherwise identical.
//!
//! ## Threading model
//!
//! [`Server::start`] runs one of two engines over the same protocol
//! code:
//!
//! * **`aw-reactor`** (the default on unix): a single event-loop
//!   thread multiplexes every connection over `poll(2)` with HTTP/1.1
//!   keep-alive and pipelining, per-connection read/idle deadlines,
//!   and bounded accept/inflight queues (overload answers `503` +
//!   `Retry-After`, while `GET /healthz` keeps answering). Parsed
//!   requests are handed to a small team of service workers and
//!   completions come back through a wake pipe. See the `reactor`
//!   module docs for the full state machine.
//! * **The blocking loop** (`Server::blocking`, and the only engine
//!   off unix): a fixed team of connection workers, each running its
//!   own accept loop on a shared listener, one connection per worker
//!   from accept to close.
//!
//! Both engines share one framing layer (`proto`), so their wire bytes
//! are identical — asserted by a socket-level differential test. The
//! extraction work inside a request is *not* done on private pools:
//! both engines call into one shared [`ExtractionService`], whose
//! [`aw_pool::Executor`] is the process-wide work-stealing team —
//! page-parallel evaluation from many simultaneous connections
//! interleaves in one pool instead of oversubscribing the machine. The
//! per-site template caches live in the registry's wrappers, so
//! structurally identical pages arriving on different connections still
//! replay each other's traces. Each engine records per-request wall
//! time into the service's [`aw_core::LatencyHistogram`], surfaced as
//! the `latency` object of `GET /wrappers`.
//!
//! ```no_run
//! use aw_core::{ArtifactReader, ExtractionService, WrapperRegistry};
//! use aw_serve::Server;
//! use std::sync::Arc;
//!
//! // Any artifact generation: v1/v2 JSON loads eagerly, a v3 binary
//! // bundle would load here too (eagerly, via into_bundle).
//! let bundle = ArtifactReader::open("bundle.json")?.into_bundle()?;
//! let registry = Arc::new(WrapperRegistry::from_bundle(bundle));
//! let service = Arc::new(ExtractionService::new(registry));
//! let server = Server::bind(service, "127.0.0.1:0")?.workers(4);
//! println!("serving on http://{}", server.local_addr()?);
//! server.start()?.join();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod http;
mod proto;
#[cfg(unix)]
mod reactor;

pub use http::{Server, ServerHandle};

use aw_core::{ArtifactReader, AwError, ExtractRequest, ExtractionService};
use serde::Value;

/// A parsed HTTP request, reduced to what the router needs.
#[derive(Clone, Debug)]
pub struct Request {
    /// The request method (`GET`, `POST`, …), uppercase as received.
    pub method: String,
    /// The request path, query string stripped.
    pub path: String,
    /// The request body, raw (empty for bodyless requests). Bytes, not
    /// a string: `POST /wrappers` accepts v3 *binary* bundles; the
    /// JSON endpoints validate UTF-8 themselves.
    pub body: Vec<u8>,
}

/// What the router decided; the HTTP layer adds the framing.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// JSON body.
    pub body: String,
}

impl Response {
    fn json(status: u16, value: &Value) -> Response {
        Response {
            status,
            body: serde_json::to_string(value).expect("response serialization is infallible"),
        }
    }

    pub(crate) fn error(status: u16, message: impl Into<String>) -> Response {
        Response::json(status, &obj(vec![("error", Value::String(message.into()))]))
    }
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn strings(items: impl IntoIterator<Item = String>) -> Value {
    Value::Array(items.into_iter().map(Value::String).collect())
}

/// Maps a service error onto an HTTP status.
fn status_of(error: &AwError) -> u16 {
    match error {
        AwError::UnknownSite(_) => 404,
        // A damaged segment in the server's own bundle store (or an
        // I/O failure reading it) is not the client's fault.
        AwError::CorruptSegment { .. } | AwError::TruncatedBundle { .. } | AwError::Io(_) => 500,
        // Artifact/bundle shape problems are the client's fault.
        _ => 400,
    }
}

/// An error response carrying the offending site key alongside the
/// message when the error names one — clients retrying a batch need the
/// key machine-readable, not buried in the display string.
fn error_response(error: &AwError) -> Response {
    error_response_as(status_of(error), error)
}

/// [`error_response`] at an explicit status: the upload path reports
/// even corrupt-segment errors as 400 (the *client's* payload was
/// damaged), while the same error from the server's own bundle store
/// is a 500.
fn error_response_as(status: u16, error: &AwError) -> Response {
    let mut entries = vec![("error", Value::String(error.to_string()))];
    if let Some(site) = error.site() {
        entries.push(("site", Value::String(site.to_string())));
    }
    Response::json(status, &obj(entries))
}

/// Routes one request against the service — the whole protocol, pure of
/// any socket so it is directly testable (and reusable by in-process
/// callers).
pub fn respond(service: &ExtractionService, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => healthz(service),
        ("GET", "/health") => all_health(service),
        ("GET", "/wrappers") => list_wrappers(service),
        ("POST", "/wrappers") => load_wrappers(service, &request.body),
        ("POST", "/extract") => extract(service, &request.body),
        (_, "/healthz" | "/health" | "/wrappers" | "/extract") => {
            Response::error(405, format!("method {} not allowed here", request.method))
        }
        // "/healthz" cannot reach here: it lacks the trailing slash.
        (method, path) => match path.strip_prefix("/health/") {
            Some(site) if method == "GET" => site_health(service, site),
            Some(_) => Response::error(405, format!("method {method} not allowed here")),
            None => Response::error(404, format!("no such endpoint {path:?}")),
        },
    }
}

/// Renders one site's health snapshot.
fn health_json(health: &aw_core::SiteHealth) -> Value {
    obj(vec![
        ("site", Value::String(health.site.clone())),
        ("requests", Value::Number(health.requests as f64)),
        ("pages", Value::Number(health.pages as f64)),
        ("error_pages", Value::Number(health.error_pages as f64)),
        ("window_pages", Value::Number(health.window_pages as f64)),
        ("empty_rate", Value::Number(health.empty_rate)),
        ("replay_miss_rate", Value::Number(health.replay_miss_rate)),
        ("shape_drift", Value::Number(health.shape_drift)),
        (
            "retained_pages",
            Value::Number(health.retained_pages as f64),
        ),
        ("degraded", Value::Bool(health.degraded)),
    ])
}

fn site_health(service: &ExtractionService, site: &str) -> Response {
    match service.site_health(site) {
        Some(health) => Response::json(200, &health_json(&health)),
        None => error_response(&AwError::UnknownSite(site.to_string())),
    }
}

/// The journal entries shown by `GET /health` (newest kept).
const JOURNAL_TAIL: usize = 32;

fn all_health(service: &ExtractionService) -> Response {
    let sites: Vec<Value> = service.all_health().iter().map(health_json).collect();
    let journal = service.health().journal();
    let tail: Vec<Value> = journal
        .iter()
        .skip(journal.len().saturating_sub(JOURNAL_TAIL))
        .map(|event| Value::String(event.to_string()))
        .collect();
    Response::json(
        200,
        &obj(vec![
            ("sites", Value::Array(sites)),
            ("journal", Value::Array(tail)),
        ]),
    )
}

fn healthz(service: &ExtractionService) -> Response {
    // One snapshot read: the (site count, generation) pair must not
    // straddle a concurrent hot swap. Allocation-free — load balancers
    // poll this every few seconds.
    let (generation, sites) = service.registry().snapshot_stats();
    Response::json(
        200,
        &obj(vec![
            ("status", Value::String("ok".into())),
            ("sites", Value::Number(sites as f64)),
            ("generation", Value::Number(generation as f64)),
        ]),
    )
}

fn list_wrappers(service: &ExtractionService) -> Response {
    let (generation, entries) = service.registry().snapshot_entries();
    let sites: Vec<Value> = entries
        .into_iter()
        .map(|(key, wrapper)| {
            let (replays, other) = wrapper.template_cache_stats().unwrap_or((0, 0));
            // Replay-path breakdown: `template_replays` splits into
            // verbatim whole-page replays and stitched frame (partial)
            // replays; record counters describe stitching within the
            // latter. Null for wrappers with the cache disabled.
            let replay = match wrapper.template_replay_stats() {
                Some(stats) => obj(vec![
                    ("full_replays", Value::Number(stats.full_replays as f64)),
                    ("frame_replays", Value::Number(stats.frame_replays as f64)),
                    ("record_replays", Value::Number(stats.record_replays as f64)),
                    (
                        "record_fallbacks",
                        Value::Number(stats.record_fallbacks as f64),
                    ),
                ]),
                None => Value::Null,
            };
            let health = match service.site_health(&key) {
                Some(health) => health_json(&health),
                None => Value::Null,
            };
            obj(vec![
                ("site", Value::String(key)),
                ("language", Value::String(wrapper.language().to_string())),
                ("rule", Value::String(wrapper.rule().to_string())),
                ("template_replays", Value::Number(replays as f64)),
                ("template_other", Value::Number(other as f64)),
                ("replay", replay),
                ("health", health),
            ])
        })
        .collect();
    let stats = service.registry().residency_stats();
    let opt = |value: Option<usize>| match value {
        Some(n) => Value::Number(n as f64),
        None => Value::Null,
    };
    let residency = obj(vec![
        ("resident", Value::Number(stats.resident as f64)),
        ("max_resident", opt(stats.max_resident)),
        ("store_sites", opt(stats.store_sites)),
        ("faults", Value::Number(stats.faults as f64)),
        ("evictions", Value::Number(stats.evictions as f64)),
        ("grace_entries", Value::Number(stats.grace_entries as f64)),
        ("grace_hits", Value::Number(stats.grace_hits as f64)),
    ]);
    // Request-path parse counters: how many pages were parsed, by which
    // parse path (streaming one-pass vs classic fallback), and the
    // cumulative wall time spent parsing + indexing.
    let parse_stats = service.parse_stats();
    let parse = obj(vec![
        ("pages", Value::Number(parse_stats.pages as f64)),
        ("stream", Value::Number(parse_stats.stream as f64)),
        ("fallback", Value::Number(parse_stats.fallback as f64)),
        ("micros", Value::Number(parse_stats.micros as f64)),
    ]);
    // Request-latency percentiles, recorded by whichever HTTP engine
    // frames the requests (full wall time: request parsed → response
    // queued). All-zero until the first served request.
    let snapshot = service.latency().snapshot();
    let latency = obj(vec![
        ("count", Value::Number(snapshot.count as f64)),
        ("p50_us", Value::Number(snapshot.p50_us as f64)),
        ("p90_us", Value::Number(snapshot.p90_us as f64)),
        ("p99_us", Value::Number(snapshot.p99_us as f64)),
        ("max_us", Value::Number(snapshot.max_us as f64)),
    ]);
    Response::json(
        200,
        &obj(vec![
            ("generation", Value::Number(generation as f64)),
            ("sites", Value::Array(sites)),
            ("residency", residency),
            ("parse", parse),
            ("latency", latency),
        ]),
    )
}

fn load_wrappers(service: &ExtractionService, body: &[u8]) -> Response {
    // Any artifact generation — v1/v2 JSON or v3 binary — loaded
    // eagerly: an upload is a full-registry hot swap, not a store
    // attach. Errors are the client's payload's fault, so even
    // corrupt-segment errors are 400 here.
    match ArtifactReader::read_bytes(body) {
        Err(e) => error_response_as(400, &e),
        Ok(bundle) => {
            let loaded = bundle.len();
            let generation = service.registry().load_bundle(bundle);
            Response::json(
                200,
                &obj(vec![
                    ("loaded", Value::Number(loaded as f64)),
                    ("generation", Value::Number(generation as f64)),
                ]),
            )
        }
    }
}

fn extract(service: &ExtractionService, body: &[u8]) -> Response {
    let Ok(body) = std::str::from_utf8(body) else {
        return Response::error(400, "request body is not UTF-8");
    };
    let request = match parse_extract_body(body) {
        Ok(request) => request,
        Err(message) => return Response::error(400, message),
    };
    match service.handle(&request) {
        Err(e) => error_response(&e),
        Ok(response) => {
            let pages: Vec<Value> = response
                .pages
                .iter()
                .map(|values| strings(values.iter().cloned()))
                .collect();
            let values = strings(response.values().map(str::to_string));
            let errors: Vec<Value> = response
                .errors
                .iter()
                .map(|error| match error {
                    Some(message) => Value::String(message.clone()),
                    None => Value::Null,
                })
                .collect();
            Response::json(
                200,
                &obj(vec![
                    ("site", Value::String(response.site)),
                    ("language", Value::String(response.language.to_string())),
                    ("rule", Value::String(response.rule)),
                    ("pages", Value::Array(pages)),
                    ("values", values),
                    ("errors", Value::Array(errors)),
                ]),
            )
        }
    }
}

/// Decodes a `POST /extract` body: `site` plus either `html` (one page)
/// or `pages` (an array of pages).
fn parse_extract_body(body: &str) -> Result<ExtractRequest, String> {
    let v = serde_json::from_str(body).map_err(|e| format!("request body is not JSON: {e}"))?;
    let site = v
        .get("site")
        .and_then(Value::as_str)
        .ok_or("missing string field \"site\"")?
        .to_string();
    let pages = match (v.get("html"), v.get("pages")) {
        (Some(html), None) => vec![html
            .as_str()
            .ok_or("field \"html\" must be a string")?
            .to_string()],
        (None, Some(Value::Array(items))) => items
            .iter()
            .map(|item| {
                item.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "field \"pages\" must be an array of strings".to_string())
            })
            .collect::<Result<Vec<String>, String>>()?,
        (None, Some(_)) => return Err("field \"pages\" must be an array of strings".into()),
        (Some(_), Some(_)) => return Err("carry \"html\" or \"pages\", not both".into()),
        (None, None) => return Err("missing \"html\" (string) or \"pages\" (array)".into()),
    };
    Ok(ExtractRequest { site, pages })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aw_core::{CompiledWrapper, LearnedRule, WrapperLanguage, WrapperRegistry};
    use aw_induct::{NodeSet, Site};
    use std::sync::Arc;

    fn service() -> ExtractionService {
        let site = Site::from_html(&[
            "<table class='stores'><tr><td><b>ALPHA CO</b></td><td>1 Elm</td></tr>\
             <tr><td><b>BETA LLC</b></td><td>2 Oak</td></tr></table>",
            "<table class='stores'><tr><td><b>GAMMA INC</b></td><td>3 Fir</td></tr>\
             <tr><td><b>DELTA LTD</b></td><td>4 Ash</td></tr></table>",
        ]);
        let mut labels = NodeSet::new();
        labels.extend(site.find_text("ALPHA CO"));
        labels.extend(site.find_text("DELTA LTD"));
        let registry = WrapperRegistry::new();
        registry.insert(
            "dealers",
            CompiledWrapper::from_rule(LearnedRule::learn(&site, WrapperLanguage::XPath, &labels)),
        );
        ExtractionService::new(Arc::new(registry))
    }

    fn request(method: &str, path: &str, body: &str) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn healthz_reports_sites_and_generation() {
        let service = service();
        let r = respond(&service, &request("GET", "/healthz", ""));
        assert_eq!(r.status, 200);
        assert!(r.body.contains("\"status\":\"ok\""), "{}", r.body);
        assert!(r.body.contains("\"sites\":1"), "{}", r.body);
    }

    #[test]
    fn extract_accepts_html_and_pages_forms() {
        let service = service();
        let page = "<table class='stores'><tr><td><b>OMEGA</b></td><td>9 Elm</td></tr></table>";
        let single = respond(
            &service,
            &request(
                "POST",
                "/extract",
                &format!(r#"{{"site":"dealers","html":"{page}"}}"#),
            ),
        );
        assert_eq!(single.status, 200, "{}", single.body);
        assert!(single.body.contains("OMEGA"), "{}", single.body);
        let multi = respond(
            &service,
            &request(
                "POST",
                "/extract",
                &format!(r#"{{"site":"dealers","pages":["{page}","<p>none</p>"]}}"#),
            ),
        );
        assert_eq!(multi.status, 200, "{}", multi.body);
        assert!(
            multi.body.contains(r#""pages":[["OMEGA"],[]]"#),
            "{}",
            multi.body
        );
    }

    #[test]
    fn extract_error_statuses() {
        let service = service();
        for (body, status) in [
            ("not json", 400),
            (r#"{"html":"<p>x</p>"}"#, 400),
            (r#"{"site":"dealers"}"#, 400),
            (r#"{"site":"dealers","pages":"<p>x</p>"}"#, 400),
            (r#"{"site":"dealers","html":"<p>x</p>","pages":[]}"#, 400),
            (r#"{"site":"unknown","html":"<p>x</p>"}"#, 404),
        ] {
            let r = respond(&service, &request("POST", "/extract", body));
            assert_eq!(r.status, status, "{body} → {}", r.body);
            assert!(r.body.contains("\"error\""), "{}", r.body);
        }
    }

    #[test]
    fn wrappers_listing_and_hot_swap() {
        let service = service();
        let listed = respond(&service, &request("GET", "/wrappers", ""));
        assert_eq!(listed.status, 200);
        assert!(
            listed.body.contains("\"site\":\"dealers\""),
            "{}",
            listed.body
        );

        // Hot-swap with a v1 single-wrapper artifact (loads under the
        // compatibility key).
        let artifact = service.registry().get("dealers").unwrap().to_json();
        let swapped = respond(&service, &request("POST", "/wrappers", &artifact));
        assert_eq!(swapped.status, 200, "{}", swapped.body);
        assert!(swapped.body.contains("\"loaded\":1"), "{}", swapped.body);
        assert_eq!(service.registry().site_keys(), [aw_core::V1_SITE_KEY]);

        let bad = respond(&service, &request("POST", "/wrappers", "{}"));
        assert_eq!(bad.status, 400, "{}", bad.body);
    }

    #[test]
    fn wrappers_listing_reports_replay_breakdown() {
        let service = service();
        // Variable-length pages of one script: record counts differ, so
        // whole-page fingerprints never repeat — only frame stitching
        // can replay. Page 1 bypasses, page 2 records, page 3 stitches.
        for n in [2usize, 3, 4] {
            let rows: String = (0..n)
                .map(|i| format!("<tr><td><b>DEALER {i}</b></td><td>{i} Elm</td></tr>"))
                .collect();
            let body =
                format!(r#"{{"site":"dealers","html":"<table class='stores'>{rows}</table>"}}"#);
            let r = respond(&service, &request("POST", "/extract", &body));
            assert_eq!(r.status, 200, "{}", r.body);
        }
        let listed = respond(&service, &request("GET", "/wrappers", ""));
        assert_eq!(listed.status, 200);
        assert!(
            listed.body.contains(
                "\"replay\":{\"full_replays\":0.0,\"frame_replays\":1.0,\
                 \"record_replays\":4.0,\"record_fallbacks\":0.0}"
            ),
            "{}",
            listed.body
        );
    }

    #[test]
    fn wrappers_listing_reports_parse_counters() {
        let service = service();
        // Before any traffic, every parse counter is zero (pinned shape).
        let idle = respond(&service, &request("GET", "/wrappers", ""));
        assert!(
            idle.body.contains(
                "\"parse\":{\"pages\":0.0,\"stream\":0.0,\"fallback\":0.0,\"micros\":0.0"
            ),
            "{}",
            idle.body
        );
        // Three pages through the default (streaming) path.
        let page = "<table class='stores'><tr><td><b>OMEGA</b></td><td>9 Elm</td></tr></table>";
        let r = respond(
            &service,
            &request(
                "POST",
                "/extract",
                &format!(r#"{{"site":"dealers","pages":["{page}","{page}","{page}"]}}"#),
            ),
        );
        assert_eq!(r.status, 200, "{}", r.body);
        let listed = respond(&service, &request("GET", "/wrappers", ""));
        assert!(
            listed
                .body
                .contains("\"parse\":{\"pages\":3.0,\"stream\":3.0,\"fallback\":0.0"),
            "{}",
            listed.body
        );
        // The fallback path is attributed separately.
        let fallback = service.with_stream_parse(false);
        let r = respond(
            &fallback,
            &request(
                "POST",
                "/extract",
                &format!(r#"{{"site":"dealers","html":"{page}"}}"#),
            ),
        );
        assert_eq!(r.status, 200, "{}", r.body);
        let listed = respond(&fallback, &request("GET", "/wrappers", ""));
        assert!(
            listed
                .body
                .contains("\"parse\":{\"pages\":4.0,\"stream\":3.0,\"fallback\":1.0"),
            "{}",
            listed.body
        );
    }

    #[test]
    fn unknown_site_is_404_with_the_offending_key_in_the_body() {
        let service = service();
        let r = respond(
            &service,
            &request(
                "POST",
                "/extract",
                r#"{"site":"mystery-7","html":"<p>x</p>"}"#,
            ),
        );
        assert_eq!(r.status, 404, "{}", r.body);
        assert!(r.body.contains("\"error\""), "{}", r.body);
        assert!(r.body.contains("\"site\":\"mystery-7\""), "{}", r.body);
        // Malformed-body errors name no site, so the key is absent.
        let bad = respond(&service, &request("POST", "/extract", "not json"));
        assert_eq!(bad.status, 400);
        assert!(!bad.body.contains("\"site\""), "{}", bad.body);
    }

    #[test]
    fn page_parse_failures_are_structured_not_fatal() {
        let service = service();
        let page = "<table class='stores'><tr><td><b>OMEGA</b></td><td>9 Elm</td></tr></table>";
        let r = respond(
            &service,
            &request(
                "POST",
                "/extract",
                &format!(r#"{{"site":"dealers","pages":["{page}",""]}}"#),
            ),
        );
        assert_eq!(r.status, 200, "empty page must not fail the request");
        assert!(r.body.contains(r#""pages":[["OMEGA"],[]]"#), "{}", r.body);
        assert!(
            r.body
                .contains(r#""errors":[null,"page produced no parseable content"]"#),
            "{}",
            r.body
        );
        // The failed page landed in the site's health accounting.
        let h = respond(&service, &request("GET", "/health/dealers", ""));
        assert!(h.body.contains("\"error_pages\":1"), "{}", h.body);
    }

    #[test]
    fn health_endpoints_report_sites_and_journal() {
        let service = service();
        // No traffic yet: the site list is empty, the per-site probe 404s.
        let idle = respond(&service, &request("GET", "/health", ""));
        assert_eq!(idle.status, 200);
        assert!(idle.body.contains("\"sites\":[]"), "{}", idle.body);
        assert_eq!(
            respond(&service, &request("GET", "/health/dealers", "")).status,
            404
        );
        // One request later both report counters.
        let page = "<table class='stores'><tr><td><b>OMEGA</b></td><td>9 Elm</td></tr></table>";
        respond(
            &service,
            &request(
                "POST",
                "/extract",
                &format!(r#"{{"site":"dealers","html":"{page}"}}"#),
            ),
        );
        let one = respond(&service, &request("GET", "/health/dealers", ""));
        assert_eq!(one.status, 200);
        assert!(one.body.contains("\"requests\":1"), "{}", one.body);
        assert!(one.body.contains("\"degraded\":false"), "{}", one.body);
        let all = respond(&service, &request("GET", "/health", ""));
        assert!(all.body.contains("\"site\":\"dealers\""), "{}", all.body);
        assert!(all.body.contains("\"journal\":[]"), "{}", all.body);
        // The wrapper listing embeds the same snapshot.
        let wrappers = respond(&service, &request("GET", "/wrappers", ""));
        assert!(wrappers.body.contains("\"health\":{"), "{}", wrappers.body);
        // Method guards on both health shapes.
        assert_eq!(
            respond(&service, &request("POST", "/health", "")).status,
            405
        );
        assert_eq!(
            respond(&service, &request("POST", "/health/dealers", "")).status,
            405
        );
    }

    #[test]
    fn wrappers_hot_swap_accepts_v3_binary_bundles() {
        let service = service();
        let mut bundle = aw_core::WrapperBundle::new();
        let wrapper = {
            let json = service.registry().get("dealers").unwrap().to_json();
            CompiledWrapper::from_json(&json).unwrap()
        };
        bundle.insert("bin-site", wrapper);
        let binary = bundle.to_binary();
        let swapped = respond(
            &service,
            &Request {
                method: "POST".into(),
                path: "/wrappers".into(),
                body: binary.clone(),
            },
        );
        assert_eq!(swapped.status, 200, "{}", swapped.body);
        assert!(swapped.body.contains("\"loaded\":1"), "{}", swapped.body);
        assert_eq!(service.registry().site_keys(), ["bin-site"]);

        // A corrupt upload is the client's fault: 400, naming the site.
        let mut corrupt = binary;
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x01;
        let bad = respond(
            &service,
            &Request {
                method: "POST".into(),
                path: "/wrappers".into(),
                body: corrupt,
            },
        );
        assert_eq!(bad.status, 400, "{}", bad.body);
        assert!(bad.body.contains("\"error\""), "{}", bad.body);
    }

    #[test]
    fn wrappers_listing_reports_residency() {
        // Fully resident: counters are zero, cap and store are null.
        let resident = respond(&service(), &request("GET", "/wrappers", ""));
        assert!(
            resident.body.contains("\"residency\":{\"resident\":1"),
            "{}",
            resident.body
        );
        assert!(
            resident.body.contains("\"store_sites\":null"),
            "{}",
            resident.body
        );

        // Lazy over a v3 store: faults and residency show up.
        let mut bundle = aw_core::WrapperBundle::new();
        for key in ["a", "b", "c"] {
            let json = service().registry().get("dealers").unwrap().to_json();
            bundle.insert(key, CompiledWrapper::from_json(&json).unwrap());
        }
        let store = aw_core::BundleStore::from_bytes(bundle.to_binary()).unwrap();
        let lazy = ExtractionService::new(Arc::new(WrapperRegistry::from_store(
            Arc::new(store),
            Some(2),
        )));
        let page = "<table class='stores'><tr><td><b>OMEGA</b></td><td>9 Elm</td></tr></table>";
        for site in ["a", "b", "c"] {
            let r = respond(
                &lazy,
                &request(
                    "POST",
                    "/extract",
                    &format!(r#"{{"site":"{site}","html":"{page}"}}"#),
                ),
            );
            assert_eq!(r.status, 200, "{}", r.body);
            assert!(r.body.contains("OMEGA"), "{}", r.body);
        }
        let listed = respond(&lazy, &request("GET", "/wrappers", ""));
        assert!(listed.body.contains("\"faults\":3"), "{}", listed.body);
        assert!(listed.body.contains("\"evictions\":1"), "{}", listed.body);
        assert!(
            listed.body.contains("\"max_resident\":2"),
            "{}",
            listed.body
        );
        assert!(listed.body.contains("\"store_sites\":3"), "{}", listed.body);
        // A site outside the store still 404s through the fault path.
        let missing = respond(
            &lazy,
            &request("POST", "/extract", r#"{"site":"zz","html":"<p>x</p>"}"#),
        );
        assert_eq!(missing.status, 404, "{}", missing.body);
    }

    #[test]
    fn non_utf8_extract_bodies_are_400() {
        let r = respond(
            &service(),
            &Request {
                method: "POST".into(),
                path: "/extract".into(),
                body: vec![0xFF, 0xFE, 0x80],
            },
        );
        assert_eq!(r.status, 400, "{}", r.body);
        assert!(r.body.contains("UTF-8"), "{}", r.body);
    }

    #[test]
    fn unknown_paths_and_methods() {
        let service = service();
        assert_eq!(respond(&service, &request("GET", "/nope", "")).status, 404);
        assert_eq!(
            respond(&service, &request("DELETE", "/extract", "")).status,
            405
        );
        assert_eq!(
            respond(&service, &request("POST", "/healthz", "")).status,
            405
        );
    }
}
