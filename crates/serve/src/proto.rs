//! Shared HTTP/1.1 framing: one parser and one encoder for both the
//! event-driven reactor and the legacy blocking loop.
//!
//! Both socket layers route through [`parse_head`] and
//! [`encode_response`], so their wire behavior (error strings, header
//! order, reason phrases) is byte-identical by construction — the
//! property the reactor-vs-blocking differential test then asserts over
//! real sockets.

use crate::Response;

/// Largest accepted header block (request line + headers).
pub(crate) const MAX_HEAD: usize = 64 * 1024;
/// Largest accepted body (a bundle or a batch of pages).
pub(crate) const MAX_BODY: usize = 64 * 1024 * 1024;

/// Everything the socket layer needs from a parsed header block.
#[derive(Clone, Debug)]
pub(crate) struct HeadInfo {
    /// Bytes the head occupies in the buffer, `\r\n\r\n` included.
    pub head_len: usize,
    /// The request method, as received.
    pub method: String,
    /// The request path, query string stripped.
    pub path: String,
    /// Declared body length (0 when absent).
    pub content_length: usize,
    /// The client sent `Expect: 100-continue` and is waiting for the
    /// interim response before uploading the body.
    pub expects_continue: bool,
    /// Whether the connection may serve another request after this one
    /// (HTTP/1.1 default yes, `Connection: close` / HTTP/1.0 no).
    pub keep_alive: bool,
}

/// Outcome of trying to parse a header block off the front of `buf`.
pub(crate) enum HeadParse {
    /// No `\r\n\r\n` yet — read more. Carries the position scanning can
    /// resume from (the terminator may straddle a read boundary).
    Incomplete { scanned: usize },
    /// A complete, well-formed head.
    Ready(HeadInfo),
    /// A protocol error: report `(status, message)` and close.
    Error(u16, String),
}

/// Finds the end of the header block (`\r\n\r\n`) at or after
/// `search_from`, so incremental callers do not rescan settled bytes.
fn find_head_end(buf: &[u8], search_from: usize) -> Option<usize> {
    let start = search_from.min(buf.len());
    buf[start..]
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|pos| start + pos)
}

/// Parses one request head from the front of `buf`. Pure: no I/O, no
/// state — both socket layers loop it over their read buffers.
pub(crate) fn parse_head(buf: &[u8], search_from: usize) -> HeadParse {
    let Some(head_end) = find_head_end(buf, search_from) else {
        if buf.len() > MAX_HEAD {
            return HeadParse::Error(400, "header block too large".into());
        }
        // Resume three bytes back: a terminator can straddle reads.
        return HeadParse::Incomplete {
            scanned: buf.len().saturating_sub(3),
        };
    };
    let Ok(head) = std::str::from_utf8(&buf[..head_end]) else {
        return HeadParse::Error(400, "request head is not UTF-8".into());
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, target, version) = (
        parts.next().unwrap_or_default(),
        parts.next().unwrap_or_default(),
        parts.next().unwrap_or_default(),
    );
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
        return HeadParse::Error(400, format!("malformed request line {request_line:?}"));
    }
    let mut content_length = 0usize;
    let mut expects_continue = false;
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            let Ok(parsed) = value.trim().parse() else {
                return HeadParse::Error(400, format!("bad Content-Length {:?}", value.trim()));
            };
            content_length = parsed;
        } else if name.eq_ignore_ascii_case("expect")
            && value.trim().eq_ignore_ascii_case("100-continue")
        {
            expects_continue = true;
        } else if name.eq_ignore_ascii_case("transfer-encoding")
            && !value.trim().eq_ignore_ascii_case("identity")
        {
            // Bodies are framed by Content-Length only; silently
            // treating a chunked request as body-less would misroute it.
            return HeadParse::Error(
                501,
                "transfer codings are not supported; send Content-Length".into(),
            );
        } else if name.eq_ignore_ascii_case("connection") {
            // Token list; `close` wins, `keep-alive` opts a 1.0 client in.
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if token.eq_ignore_ascii_case("keep-alive") && version == "HTTP/1.0" {
                    keep_alive = true;
                }
            }
        }
    }
    if content_length > MAX_BODY {
        return HeadParse::Error(413, "request body too large".into());
    }
    // Strip any query string: the protocol routes on the path alone.
    let path = target.split('?').next().unwrap_or(target).to_string();
    HeadParse::Ready(HeadInfo {
        head_len: head_end + 4,
        method: method.to_string(),
        path,
        content_length,
        expects_continue,
        keep_alive,
    })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Serializes a routed [`Response`] to wire bytes. `retry_after_secs`
/// adds the overload hint header (the backpressure 503); both loops
/// emit identical bytes for identical `(response, keep_alive)` inputs.
pub(crate) fn encode_response(
    response: &Response,
    keep_alive: bool,
    retry_after_secs: Option<u32>,
) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let retry = match retry_after_secs {
        Some(secs) => format!("Retry-After: {secs}\r\n"),
        None => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{retry}Connection: {connection}\r\n\r\n",
        response.status,
        reason(response.status),
        response.body.len(),
    );
    let mut bytes = Vec::with_capacity(head.len() + response.body.len());
    bytes.extend_from_slice(head.as_bytes());
    bytes.extend_from_slice(response.body.as_bytes());
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_detection_resumes_mid_terminator() {
        let full = b"GET / HTTP/1.1\r\n\r\nrest";
        assert_eq!(find_head_end(full, 0), Some(14));
        // Scanning may resume inside the terminator without missing it.
        assert_eq!(find_head_end(full, 13), Some(14));
        assert_eq!(find_head_end(b"partial\r\n", 0), None);
    }

    #[test]
    fn parse_head_framing_and_keep_alive() {
        let buf = b"POST /extract?x=1 HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let HeadParse::Ready(head) = parse_head(buf, 0) else {
            panic!("expected a parsed head");
        };
        assert_eq!(head.method, "POST");
        assert_eq!(head.path, "/extract");
        assert_eq!(head.content_length, 5);
        assert_eq!(head.head_len, buf.len() - 5);
        assert!(head.keep_alive, "HTTP/1.1 defaults to keep-alive");

        let close = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let HeadParse::Ready(head) = parse_head(close, 0) else {
            panic!("expected a parsed head");
        };
        assert!(!head.keep_alive);

        let v10 = b"GET / HTTP/1.0\r\n\r\n";
        let HeadParse::Ready(head) = parse_head(v10, 0) else {
            panic!("expected a parsed head");
        };
        assert!(!head.keep_alive, "HTTP/1.0 defaults to close");

        let v10_ka = b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        let HeadParse::Ready(head) = parse_head(v10_ka, 0) else {
            panic!("expected a parsed head");
        };
        assert!(head.keep_alive, "HTTP/1.0 opts in via the header");
    }

    #[test]
    fn parse_head_rejections() {
        assert!(matches!(
            parse_head(b"BOGUS\r\n\r\n", 0),
            HeadParse::Error(400, _)
        ));
        assert!(matches!(
            parse_head(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 0),
            HeadParse::Error(501, _)
        ));
        assert!(matches!(
            parse_head(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 0),
            HeadParse::Error(400, _)
        ));
        let oversized = vec![b'x'; MAX_HEAD + 1];
        assert!(matches!(
            parse_head(&oversized, 0),
            HeadParse::Error(400, _)
        ));
    }

    #[test]
    fn encode_response_framing() {
        let response = Response {
            status: 503,
            body: r#"{"error":"overloaded"}"#.into(),
        };
        let bytes = encode_response(&response, true, Some(1));
        let text = String::from_utf8(bytes).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(
            text.ends_with("\r\n\r\n{\"error\":\"overloaded\"}"),
            "{text}"
        );
    }
}
