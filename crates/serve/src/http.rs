//! The socket layer: server configuration plus the legacy blocking
//! HTTP/1.1 loop.
//!
//! [`Server`] fronts two interchangeable engines over one
//! [`ExtractionService`]:
//!
//! * the **event-driven reactor** (default, `crate::reactor`): one
//!   `poll(2)` thread multiplexing every connection with keep-alive,
//!   pipelining and backpressure;
//! * the **blocking loop** (below, [`Server::blocking`]): a fixed team
//!   of connection-per-worker threads, one request per connection,
//!   `Connection: close` — kept as the differential oracle the reactor
//!   is byte-compared against over real sockets.
//!
//! Both engines frame requests and responses through `crate::proto`,
//! so identical requests produce identical wire bytes.

use crate::proto::{encode_response, parse_head, HeadParse, MAX_BODY};
use crate::{respond, Request, Response};
use aw_core::ExtractionService;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-read/-write socket timeout in the blocking loop: a fully
/// stalled client errors out of the next I/O call.
const IO_TIMEOUT: Duration = Duration::from_secs(10);
/// Default wall-clock cap on one request's read phase (both engines): a
/// *trickling* client (one byte every few seconds keeps each read under
/// [`IO_TIMEOUT`]) is cut off with a 408 instead of pinning a worker or
/// a reactor slot indefinitely.
const REQUEST_DEADLINE: Duration = Duration::from_secs(30);
/// Default keep-alive idle timeout (reactor): a connection with no
/// request in progress is closed after this long.
const IDLE_TIMEOUT: Duration = Duration::from_secs(10);
/// Default cap on simultaneously open reactor connections (accept
/// backpressure: at the cap the listener is simply not polled, so new
/// connections wait in the kernel backlog instead of growing our state).
const MAX_CONNECTIONS: usize = 1024;
/// Default bound on dispatched-but-unanswered requests (inflight
/// backpressure: past it the reactor answers 503 + `Retry-After`
/// immediately instead of queuing without bound).
const QUEUE_DEPTH: usize = 256;
/// Accept-poll interval while idle (the listener is non-blocking so
/// blocking-mode workers can observe shutdown).
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// A configured-but-not-yet-running HTTP front end over an
/// [`ExtractionService`].
pub struct Server {
    pub(crate) listener: TcpListener,
    pub(crate) service: Arc<ExtractionService>,
    pub(crate) workers: usize,
    pub(crate) blocking: bool,
    pub(crate) max_connections: usize,
    pub(crate) queue_depth: usize,
    pub(crate) idle_timeout: Duration,
    pub(crate) read_deadline: Duration,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port). The
    /// default worker count matches the service executor's thread count.
    pub fn bind(service: Arc<ExtractionService>, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let workers = service.executor().threads();
        Ok(Server {
            listener,
            service,
            workers,
            blocking: cfg!(not(unix)),
            max_connections: MAX_CONNECTIONS,
            queue_depth: QUEUE_DEPTH,
            idle_timeout: IDLE_TIMEOUT,
            read_deadline: REQUEST_DEADLINE,
        })
    }

    /// Sets the worker count (clamped to ≥ 1). Reactor mode: the
    /// service threads draining the dispatch queue. Blocking mode: the
    /// connection workers, each owning one connection at a time. Either
    /// way, extraction inside a request still runs on the shared
    /// executor, whatever this count is.
    pub fn workers(mut self, workers: usize) -> Server {
        self.workers = workers.max(1);
        self
    }

    /// Selects the legacy blocking connection-per-worker loop instead
    /// of the event-driven reactor (`awrap serve --blocking`) — the
    /// differential oracle: same router, same framing code, so
    /// responses are byte-identical; only concurrency and connection
    /// reuse differ. Non-Unix builds always use the blocking loop (the
    /// reactor needs `poll(2)`).
    pub fn blocking(mut self, blocking: bool) -> Server {
        self.blocking = blocking || cfg!(not(unix));
        self
    }

    /// Caps simultaneously open reactor connections (≥ 1). At the cap
    /// the listener is not polled: new connections queue in the kernel
    /// accept backlog until a slot frees, instead of growing per-server
    /// state without bound.
    pub fn max_connections(mut self, max_connections: usize) -> Server {
        self.max_connections = max_connections.max(1);
        self
    }

    /// Bounds dispatched-but-unanswered requests in reactor mode. Past
    /// the bound, requests are answered `503` + `Retry-After: 1`
    /// immediately (`GET /healthz` bypasses the queue and still
    /// answers). `0` is allowed — it sheds every dispatched request,
    /// which is how the backpressure tests drive the path
    /// deterministically.
    pub fn queue_depth(mut self, queue_depth: usize) -> Server {
        self.queue_depth = queue_depth;
        self
    }

    /// Reactor keep-alive idle timeout: a connection with no request in
    /// progress closes quietly after this long.
    pub fn idle_timeout(mut self, idle_timeout: Duration) -> Server {
        self.idle_timeout = idle_timeout;
        self
    }

    /// Wall-clock cap on one request's read phase (both engines). When
    /// it fires mid-request the client gets `408 Request Timeout`, not
    /// a silent drop.
    pub fn read_deadline(mut self, read_deadline: Duration) -> Server {
        self.read_deadline = read_deadline;
        self
    }

    /// The bound address — read the actual port here after binding `:0`.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Spawns the serving threads and returns the running server's
    /// handle: the reactor plus its service workers by default, the
    /// blocking connection-worker team under [`Server::blocking`].
    pub fn start(self) -> std::io::Result<ServerHandle> {
        #[cfg(unix)]
        if !self.blocking {
            return crate::reactor::start(self);
        }
        self.start_blocking()
    }

    fn start_blocking(self) -> std::io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let read_deadline = self.read_deadline;
        let mut threads = Vec::with_capacity(self.workers);
        for i in 0..self.workers {
            let spawned = self.listener.try_clone().and_then(|listener| {
                let service = Arc::clone(&self.service);
                let stop = Arc::clone(&stop);
                std::thread::Builder::new()
                    .name(format!("aw-serve-{i}"))
                    .spawn(move || worker_loop(listener, service, stop, read_deadline))
            });
            match spawned {
                Ok(handle) => threads.push(handle),
                Err(e) => {
                    // A partial team must not leak: stop and join the
                    // workers already running (each holds a cloned
                    // listener that would otherwise keep the port bound
                    // and keep serving with no handle to stop them).
                    stop.store(true, Ordering::Relaxed);
                    for handle in threads {
                        let _ = handle.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(ServerHandle {
            addr,
            stop,
            threads,
            #[cfg(unix)]
            dispatch: None,
        })
    }
}

/// A running server: hold it to keep serving, [`ServerHandle::shutdown`]
/// to stop.
pub struct ServerHandle {
    pub(crate) addr: SocketAddr,
    pub(crate) stop: Arc<AtomicBool>,
    pub(crate) threads: Vec<JoinHandle<()>>,
    /// Reactor mode only: lets shutdown wake the poll loop and the
    /// parked service workers.
    #[cfg(unix)]
    pub(crate) dispatch: Option<Arc<crate::reactor::Dispatch>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals every thread to stop and waits for them to finish their
    /// in-flight work.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        #[cfg(unix)]
        if let Some(dispatch) = &self.dispatch {
            dispatch.interrupt();
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }

    /// Blocks until the serving threads exit (they only exit on
    /// shutdown, so this is "serve forever" for a CLI process).
    pub fn join(mut self) {
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One blocking worker's accept loop: poll the shared non-blocking
/// listener, serve each accepted connection to completion.
fn worker_loop(
    listener: TcpListener,
    service: Arc<ExtractionService>,
    stop: Arc<AtomicBool>,
    read_deadline: Duration,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // One request per connection; failures (bad framing,
                // disconnects) drop the connection, never the worker —
                // and neither does a panic inside request handling (an
                // evaluation bug must cost one connection, not silently
                // retire an accept loop until the server goes deaf).
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _ = serve_connection(stream, &service, read_deadline);
                }));
                if result.is_err() {
                    eprintln!("aw-serve: request handler panicked; connection dropped");
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            // Transient accept errors (EMFILE, resets): back off briefly.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn serve_connection(
    mut stream: TcpStream,
    service: &ExtractionService,
    read_deadline: Duration,
) -> std::io::Result<()> {
    // The listener is non-blocking for shutdown polling; on platforms
    // where accepted sockets inherit that flag (macOS/BSD, Windows —
    // not Linux) the stream must be reset to blocking or every read
    // would fail with WouldBlock before the timeouts even apply.
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let deadline = Instant::now() + read_deadline;
    let (response, body_maybe_unread) = match read_request(&mut stream, deadline) {
        Ok(request) => {
            let started = Instant::now();
            let response = respond(service, &request);
            // Full-request wall time, same clock points as the reactor:
            // request fully read → response ready to write.
            service.latency().record(started.elapsed());
            (response, false)
        }
        Err(HttpError::Status(status, message)) => (Response::error(status, message), true),
        Err(HttpError::Io(e)) => return Err(e),
    };
    stream.write_all(&encode_response(&response, false, None))?;
    stream.flush()?;
    if body_maybe_unread {
        // The client may still be uploading the body we refused (413,
        // bad framing). Closing with unread data would send a TCP RST
        // that can discard the queued error response on the client
        // side; signal end-of-response and drain what's in flight so
        // the client actually reads its error.
        let _ = stream.shutdown(std::net::Shutdown::Write);
        drain(&mut stream, deadline);
    }
    Ok(())
}

/// Reads and discards the client's remaining upload (bounded by a byte
/// cap, the socket read timeout and the request deadline) so the error
/// response is not clobbered by a reset.
fn drain(stream: &mut TcpStream, deadline: Instant) {
    let mut chunk = [0u8; 4096];
    let mut budget = MAX_BODY;
    while budget > 0 && Instant::now() < deadline {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget = budget.saturating_sub(n),
        }
    }
}

/// A framing-level failure: either an HTTP error to report to the
/// client, or an I/O error that ends the connection silently.
enum HttpError {
    Status(u16, String),
    Io(std::io::Error),
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

fn bad(status: u16, message: impl Into<String>) -> HttpError {
    HttpError::Status(status, message.into())
}

/// Reads and parses one request through the shared head parser.
/// `deadline` caps the whole read phase in wall-clock time — per-read
/// timeouts alone would let a trickling client (one byte per few
/// seconds) hold the worker indefinitely; firing it is a 408, never a
/// silent drop.
fn read_request(stream: &mut TcpStream, deadline: Instant) -> Result<Request, HttpError> {
    let overdue = || bad(408, "request read deadline exceeded");
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let mut search_from = 0usize;
    // Read until the header block parses (or is rejected).
    let head = loop {
        match parse_head(&buf, search_from) {
            HeadParse::Ready(head) => break head,
            HeadParse::Error(status, message) => return Err(HttpError::Status(status, message)),
            HeadParse::Incomplete { scanned } => {
                search_from = scanned;
                if Instant::now() >= deadline {
                    return Err(overdue());
                }
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Err(bad(400, "connection closed mid-request"));
                }
                buf.extend_from_slice(&chunk[..n]);
            }
        }
    };

    // The body: whatever followed the head in the buffer, plus the rest.
    let mut body = buf[head.head_len..].to_vec();
    // curl sends `Expect: 100-continue` for bodies over 1 KB and waits
    // up to a second for the interim response before transmitting — a
    // silent per-request stall unless we answer it.
    if head.expects_continue && body.len() < head.content_length {
        stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
        stream.flush()?;
    }
    while body.len() < head.content_length {
        if Instant::now() >= deadline {
            return Err(overdue());
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad(400, "connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(head.content_length);
    // The body stays raw bytes: `POST /wrappers` accepts v3 binary
    // bundles, and the JSON endpoints validate UTF-8 in the router.
    Ok(Request {
        method: head.method,
        path: head.path,
        body,
    })
}
